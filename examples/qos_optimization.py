"""QoS optimization: the Pareto frontier and budget sweeps (Section V-G/H).

Sweeps cost budgets over the running example's data plan and shows how the
optimizer trades model tiers for quality — the FrugalGPT-style crossover.

Run:  python examples/qos_optimization.py
"""

from repro.core import Blueprint, QoSSpec
from repro.errors import OptimizationError
from repro.hr.data import build_enterprise


def main() -> None:
    enterprise = build_enterprise(seed=7)
    blueprint = Blueprint(data_registry=enterprise.registry)
    planner = blueprint.data_planner
    query = "data scientist position in SF bay area"

    print("=" * 78)
    print("Pareto frontier over the decomposed data plan")
    print("=" * 78)
    plan = planner.plan_job_query(query, optimize=False)
    frontier = planner.optimizer.frontier(plan)
    print(f"{'cost ($)':>10}  {'latency (s)':>12}  {'quality':>8}   choices")
    for assignment in frontier[:12]:
        models = [c.model or c.source or "-" for _, c in assignment.choices]
        print(
            f"{assignment.profile.cost:>10.5f}  {assignment.profile.latency:>12.2f}  "
            f"{assignment.profile.quality:>8.3f}   {models}"
        )
    print(f"... {len(frontier)} Pareto-optimal assignments total")
    print()

    print("=" * 78)
    print("Cost-budget sweep (objective: maximize quality under the budget)")
    print("=" * 78)
    print(f"{'budget ($)':>10}  {'chosen cost':>12}  {'quality':>8}  cities model")
    for budget in (0.0005, 0.001, 0.002, 0.005, 0.01, 0.05):
        sweep_plan = planner.plan_job_query(query, optimize=False)
        try:
            assignment = planner.optimizer.optimize(
                sweep_plan, QoSSpec(max_cost=budget, objective="quality")
            )
        except OptimizationError:
            print(f"{budget:>10.4f}  {'infeasible':>12}")
            continue
        cities = assignment.choice_for("cities")
        print(
            f"{budget:>10.4f}  {assignment.profile.cost:>12.5f}  "
            f"{assignment.profile.quality:>8.3f}  {cities.model if cities else '-'}"
        )
    print()

    print("=" * 78)
    print("Execution under two budgets — projections vs actuals")
    print("=" * 78)
    for label, qos in [("cheap", QoSSpec(objective="cost")), ("best", QoSSpec(objective="quality"))]:
        run_plan = planner.plan_job_query(query, qos=qos)
        projection = planner.optimizer.project(run_plan)
        result = planner.execute(run_plan)
        print(
            f"{label}: projected cost=${projection.cost:.5f} quality={projection.quality:.3f} | "
            f"actual cost=${result.cost:.5f} quality={result.quality:.3f} "
            f"rows={len(result.final())}"
        )


if __name__ == "__main__":
    main()
