"""A second enterprise on the same blueprint: the customer-support desk.

The paper's architecture is "not specific to any industry"; this example
runs the identical planner/coordinator machinery over a support vendor's
tickets, embedded knowledge base, and product graph.

Run:  python examples/support_desk.py
"""

from repro.core.rendering import RendererRegistry
from repro.support import SupportAssistant

TICKETS = [
    "Our SearchCloud query api is failing with 429 errors in production, urgent!",
    "MatchEngine scorer timeouts under load — customers are seeing errors",
    "Minor question: how do I enable fresher exports in InsightBoard?",
]


def main() -> None:
    desk = SupportAssistant(seed=21)
    for ticket in TICKETS:
        print("=" * 74)
        print("TICKET:", ticket)
        print("=" * 74)
        outcome = desk.handle(ticket)
        print("plan:", outcome.plan_rendering)
        print(
            f"triage: product={outcome.triage.get('product')} "
            f"severity={outcome.triage.get('severity')}"
        )
        print()
        print(outcome.response)
        print()

    print("=" * 74)
    print("Open backlog by severity (a chart-rendered aggregate)")
    print("=" * 74)
    print(RendererRegistry().render(desk.backlog_summary()))
    print()
    print("session budget:", {k: round(v, 4) for k, v in desk.budget.summary().items()})


if __name__ == "__main__":
    main()
