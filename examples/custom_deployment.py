"""Deployment: containers, placement, failure, and recovery (Figure 2).

Builds a small cluster, deploys agent containers by resource profile,
injects failures, and lets the supervisor restore service.

Run:  python examples/custom_deployment.py
"""

from repro.core import (
    AgentContext,
    AgentFactory,
    Blueprint,
    Cluster,
    FunctionAgent,
    Parameter,
    ResourceProfile,
    Supervisor,
)


def main() -> None:
    blueprint = Blueprint()
    session = blueprint.create_session("prod")

    factory = AgentFactory("prod-factory")
    factory.register(
        "ENRICHER",
        lambda **kw: FunctionAgent(
            "ENRICHER",
            lambda i: {"ENRICHED": {"text": i["RAW"], "length": len(str(i["RAW"]))}},
            inputs=(Parameter("RAW", "text"),),
            outputs=(Parameter("ENRICHED", "json"),),
            listen_tags=("RAW",),
            **kw,
        ),
    )

    def context_factory() -> AgentContext:
        return blueprint.context(session)

    cluster = Cluster("prod")
    cluster.add_node(ResourceProfile(cpu=8, gpu=1, memory_gb=32))  # GPU node
    cluster.add_node(ResourceProfile(cpu=4, gpu=0, memory_gb=16))  # CPU node

    cpu_container = cluster.deploy(
        "enricher:latest", factory, context_factory, (("ENRICHER", {}),),
        profile=ResourceProfile(cpu=2, gpu=0, memory_gb=4),
    )
    print("placement:", cluster.placement())

    user = session.create_stream("user", tags=("USER",), creator="user")
    blueprint.store.publish_data(user.stream_id, "first message", tags=("RAW",), producer="user")

    print("\ninjecting failure into", cpu_container.container_id)
    cpu_container.fail()
    blueprint.store.publish_data(user.stream_id, "lost message", tags=("RAW",), producer="user")

    supervisor = Supervisor(cluster)
    restarted = supervisor.tick()
    print("supervisor restarted:", restarted)
    blueprint.store.publish_data(user.stream_id, "after recovery", tags=("RAW",), producer="user")

    output = blueprint.store.get_stream(session.stream_id("enricher:enriched"))
    print("\nprocessed payloads (note the gap during the outage):")
    for payload in output.data_payloads():
        print(" ", payload)
    print("\ncontainer restarts:", cpu_container.restarts)


if __name__ == "__main__":
    main()
