"""Scenario I: the conversational career assistant (paper Section II-A).

Shows job search with the decomposed data plan (Figure 7), skill advice
from LLM parametric knowledge, and per-request QoS budgets.

Run:  python examples/career_assistant.py
"""

from repro.core import QoSSpec
from repro.hr.apps import CareerAssistant


def main() -> None:
    assistant = CareerAssistant(seed=7)

    print("=" * 70)
    print("Job search — the running example")
    print("=" * 70)
    reply = assistant.ask("I am looking for a data scientist position in SF bay area.")
    print(reply.text)
    print()

    print("=" * 70)
    print("The data plan behind it (Figure 7)")
    print("=" * 70)
    plan = assistant.blueprint.data_planner.plan_job_query(
        "data scientist position in SF bay area", qos=QoSSpec(objective="quality")
    )
    print(plan.render())
    print()

    print("=" * 70)
    print("Follow-up + explanation (session scope, explanation module)")
    print("=" * 70)
    followup = assistant.followup("what about Oakland?")
    print(followup.text.splitlines()[0] if followup.text else "(no matches)")
    print()
    print(assistant.explain_last())
    print()

    print("=" * 70)
    print("Career advice — LLM as a data source")
    print("=" * 70)
    skills = assistant.advise_skills("data scientist", qos=QoSSpec(objective="quality"))
    print("Required skills for a data scientist:", ", ".join(skills))
    print()

    print("=" * 70)
    print("QoS: the same request under different budgets")
    print("=" * 70)
    for label, qos in [
        ("cheap   (minimize cost)", QoSSpec(objective="cost")),
        ("quality (min_quality=0.85)", QoSSpec(min_quality=0.85, objective="cost")),
        ("best    (maximize quality)", QoSSpec(objective="quality")),
    ]:
        request_plan = assistant.blueprint.data_planner.plan_job_query(
            "machine learning engineer position in SF bay area", qos=qos
        )
        profile = assistant.blueprint.data_planner.optimizer.project(request_plan)
        models = {
            op.op_id: (op.chosen.model or op.chosen.source)
            for op in request_plan.operators()
            if op.chosen is not None
        }
        print(
            f"{label}: est cost=${profile.cost:.5f} latency={profile.latency:.2f}s "
            f"quality={profile.quality:.3f}"
        )
        print(f"    operator choices: {models}")


if __name__ == "__main__":
    main()
