"""Observability: word-level streams, full traces, flow graphs, replay.

Everything that moves through the architecture is a persisted message;
this example streams a user utterance word by word, reassembles it for the
agents, inspects the trace, renders the component flow graph, and replays
an exported archive.

Run:  python examples/observability.py
"""

import json

from repro.core import Blueprint, FunctionAgent, Parameter
from repro.streams import (
    UtteranceAssembler,
    collect_text,
    export_json,
    render_component_graph,
    replay_json,
    stream_words,
)


def main() -> None:
    blueprint = Blueprint()
    session = blueprint.create_session("obs")
    store = blueprint.store

    echo = FunctionAgent(
        "ECHO",
        lambda i: {"REPLY": f"you said: {i['TEXT']}"},
        inputs=(Parameter("TEXT", "text"),),
        outputs=(Parameter("REPLY", "text"),),
        listen_tags=("UTTERANCE",),
        description="Echoes assembled utterances",
    )
    blueprint.attach(echo, session)

    chat = session.create_stream("chat", creator="user")
    utterances = session.create_stream("utterances", creator="assembler")
    assembler = UtteranceAssembler(
        on_utterance=lambda text: store.publish_data(
            utterances.stream_id, text, tags=("UTTERANCE",), producer="assembler"
        )
    )
    store.subscribe("assembler", assembler.on_message, stream_pattern=chat.stream_id)

    print("=" * 70)
    print("1. A chat turn streams word by word (Section V-A)")
    print("=" * 70)
    stream_words(
        store, chat.stream_id,
        "I am looking for a data scientist position",
        word_latency=0.05,
    )
    print("reassembled:", collect_text(store, chat.stream_id))
    reply = store.get_stream(session.stream_id("echo:reply"))
    print("agent reply:", reply.data_payloads()[-1])
    print()

    print("=" * 70)
    print("2. The trace records every word with its timestamp")
    print("=" * 70)
    for message in store.trace()[:6]:
        print(" ", message.describe())
    print(f"  ... {len(store.trace())} messages total")
    print()

    print("=" * 70)
    print("3. Component flow graph")
    print("=" * 70)
    print(render_component_graph(store))
    print()

    print("=" * 70)
    print("4. Export and replay the whole session")
    print("=" * 70)
    archive = export_json(store)
    print(f"archive size: {len(archive):,} bytes")
    replayed = replay_json(archive)
    print("replayed streams:", replayed.list_streams())
    print("replayed reassembly:", collect_text(replayed, chat.stream_id))


if __name__ == "__main__":
    main()
