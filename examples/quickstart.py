"""Quickstart: boot the blueprint, attach an agent, run the running example.

Run:  python examples/quickstart.py
"""

from repro.core import Blueprint, FunctionAgent, Parameter
from repro.hr.apps import CareerAssistant


def part_one_streams_and_agents() -> None:
    """The architecture in miniature: streams orchestrate one agent."""
    print("=" * 70)
    print("Part 1 — streams and a custom agent")
    print("=" * 70)
    blueprint = Blueprint()
    session = blueprint.create_session("quickstart")

    shouter = FunctionAgent(
        "SHOUTER",
        lambda inputs: {"SHOUTED": str(inputs["TEXT"]).upper() + "!"},
        inputs=(Parameter("TEXT", "text", "text to shout"),),
        outputs=(Parameter("SHOUTED", "text", "the text, loudly"),),
        listen_tags=("USER",),
        description="Shouts whatever the user says",
    )
    blueprint.attach(shouter, session)

    user = session.create_stream("user", tags=("USER",), creator="user")
    blueprint.store.publish_data(user.stream_id, "hello agents", tags=("USER",), producer="user")

    output = blueprint.store.get_stream(session.stream_id("shouter:shouted"))
    print("agent output:", output.data_payloads())
    print("\nfull message trace (observability — every message is persisted):")
    for message in blueprint.store.trace():
        print(" ", message.describe())


def part_two_running_example() -> None:
    """The paper's running example through the full architecture."""
    print()
    print("=" * 70)
    print('Part 2 — "I am looking for a data scientist position in SF bay area."')
    print("=" * 70)
    assistant = CareerAssistant(seed=7)
    reply = assistant.ask("I am looking for a data scientist position in SF bay area.")
    print("task plan executed:", reply.plan_rendering)
    print()
    print(reply.text)
    print()
    print("budget:", {k: round(v, 4) for k, v in reply.budget_summary.items()})


if __name__ == "__main__":
    part_one_streams_and_agents()
    part_two_running_example()
