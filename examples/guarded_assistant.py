"""A guarded pipeline: verification, moderation, and self-reflection.

Wires the paper's extension modules (Section III-A) into a live flow:
a cheap LLM lists cities, the VERIFIER filters hallucinations against the
enterprise JOBS table, the MODERATOR redacts PII from the outgoing text,
and the REFLECTOR cleans a defective draft.

Run:  python examples/guarded_assistant.py
"""

from repro.core import Blueprint, ModeratorAgent, QoSSpec, ReflectionAgent, VerifierAgent
from repro.hr.data import build_enterprise
from repro.streams import render_component_graph


def main() -> None:
    enterprise = build_enterprise(seed=7)
    blueprint = Blueprint(data_registry=enterprise.registry)
    session = blueprint.create_session("guarded")

    verifier = VerifierAgent.against_column(enterprise.database, "jobs", "city")
    moderator = ModeratorAgent()
    reflector = ReflectionAgent()
    for agent in (verifier, moderator, reflector):
        blueprint.attach(agent, session)

    print("=" * 70)
    print("1. Verification: cheap model + VERIFY beats hallucinations")
    print("=" * 70)
    plan = blueprint.data_planner.plan_job_query(
        "data scientist position in SF bay area", optimize=False, verify=True
    )
    from repro.core.plan import OperatorChoice

    plan.operator("cities").chosen = OperatorChoice(model="mega-nano")
    result = blueprint.data_planner.execute(plan)
    print("raw LLM cities:      ", result.outputs["cities"])
    print("verified against DB: ", result.outputs["verify_cities"])
    print("jobs found:          ", len(result.final()))
    print()

    print("=" * 70)
    print("2. Moderation: PII never reaches the display stream")
    print("=" * 70)
    chat = session.create_stream("chat", creator="user")
    blueprint.store.publish_data(
        chat.stream_id,
        "Candidate Ann (ann@example.com, 415-555-1234) looks strong.",
        tags=("MODERATE",),
        producer="drafter",
    )
    safe = blueprint.store.get_stream(session.stream_id("moderator:safe_text"))
    print("moderated:", safe.data_payloads()[-1])
    print()

    print("=" * 70)
    print("3. Self-reflection: defective drafts get critiqued and revised")
    print("=" * 70)
    blueprint.store.publish_data(
        chat.stream_id,
        "Dear {name}, the the results results are attached. TODO add numbers",
        tags=("REFLECT",),
        producer="drafter",
    )
    revised = blueprint.store.get_stream(session.stream_id("reflector:revised"))
    critique = blueprint.store.get_stream(session.stream_id("reflector:critique"))
    print("critique:", critique.data_payloads()[-1])
    print("revised: ", revised.data_payloads()[-1])
    print()

    print("=" * 70)
    print("4. Who talked to whom (component flow graph)")
    print("=" * 70)
    print(render_component_graph(blueprint.store))


if __name__ == "__main__":
    main()
