"""Scenario II / Section VI: the Agentic Employer case study.

Reproduces the Figure-8 conversation, the Figure-9 UI flow, and the
Figure-10 conversation flow, printing the numbered step traces.

Run:  python examples/agentic_employer.py
"""

from repro.hr.apps import AgenticEmployerApp


def main() -> None:
    app = AgenticEmployerApp(seed=7)

    print("=" * 70)
    print("Figure 9 — flow initiated from the UI (select job 1)")
    print("=" * 70)
    trace = app.blueprint.flow_trace()
    app.click_job(1)
    for step in trace.steps():
        print(" ", step.render())
    print()

    print("=" * 70)
    print("Figure 10 — flow initiated from conversation")
    print("=" * 70)
    trace.mark()
    app.say("how many applicants have python skills?")
    for step in trace.steps():
        print(" ", step.render())
    print()

    print("=" * 70)
    print("Figure 8 — the conversation view (queries, ranking, shortlist)")
    print("=" * 70)
    app.say("hello!")
    app.say("top candidates by experience")
    app.say("average salary of data scientist jobs in San Francisco")
    first_name = app.enterprise.database.query(
        "SELECT name FROM seekers WHERE id = 1"
    )[0]["name"].split()[0]
    app.say(f"add {first_name} to the shortlist")
    app.say("update my shortlist")
    print(app.render_conversation())
    print()
    print("session budget:", {k: round(v, 4) for k, v in app.budget.summary().items()})


if __name__ == "__main__":
    main()
