"""Command-line interface: drive the blueprint from a shell.

Usage:
    python -m repro describe                 # the Figure-1 inventory
    python -m repro ask "data scientist position in SF bay area"
    python -m repro plan "data scientist position in SF bay area"
    python -m repro employer --click 1 --say "how many applicants have python skills?"
    python -m repro trace --say "how many applicants have python skills?"
    python -m repro run --parallel        # wave scheduler vs serial baseline
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Sequence

from .core.qos import QoSSpec
from .hr.apps import AgenticEmployerApp, CareerAssistant


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Blueprint architecture for compound AI systems"
    )
    parser.add_argument("--seed", type=int, default=7, help="enterprise data seed")
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser("describe", help="print the architecture inventory")

    ask = commands.add_parser("ask", help="ask the career assistant")
    ask.add_argument("text", help="the request, e.g. a job-search utterance")
    ask.add_argument("--max-cost", type=float, default=None, help="QoS cost budget ($)")
    ask.add_argument("--min-quality", type=float, default=None, help="QoS quality floor")

    plan = commands.add_parser("plan", help="show the task and data plans for a request")
    plan.add_argument("text")
    plan.add_argument("--verify", action="store_true", help="inject fact verification")

    employer = commands.add_parser("employer", help="run Agentic Employer turns")
    employer.add_argument("--click", type=int, action="append", default=[],
                          help="select a job id (repeatable)")
    employer.add_argument("--say", action="append", default=[],
                          help="a conversation turn (repeatable)")

    trace = commands.add_parser(
        "trace",
        help="run an Agentic Employer conversation and dump its span tree "
             "and metrics snapshot",
    )
    trace.add_argument("--click", type=int, action="append", default=[],
                       help="select a job id (repeatable)")
    trace.add_argument("--say", action="append", default=[],
                       help="a conversation turn (repeatable; defaults to a "
                            "canonical one-click, one-question conversation)")
    trace.add_argument("--format", choices=("report", "flame", "critical", "json"),
                       default="report",
                       help="report = flamegraph + critical path + metrics "
                            "(default); json = the canonical byte-comparable "
                            "export")
    trace.add_argument("--output", default=None,
                       help="write to a file instead of stdout")

    run = commands.add_parser(
        "run",
        help="execute the fan-out demo plan under the wave scheduler and "
             "report its critical-path latency against the serial baseline",
    )
    mode = run.add_mutually_exclusive_group()
    mode.add_argument("--parallel", dest="parallel", action="store_true",
                      help="wave-parallel scheduling (default): independent "
                           "nodes overlap; latency is the critical path")
    mode.add_argument("--serial", dest="parallel", action="store_false",
                      help="serial scheduling: latency is the node sum")
    run.set_defaults(parallel=True)

    fleet = commands.add_parser(
        "fleet",
        help="run N Fig-6-style plans concurrently on one shared virtual "
             "timeline (admission control, per-model capacity, single-flight "
             "coalescing) and report makespan vs the serial baseline",
    )
    fleet.add_argument("--plans", type=int, default=8,
                       help="number of independent plans to submit")
    fleet.add_argument("--max-inflight", type=int, default=4,
                       help="plans executing concurrently; the rest queue")
    fleet.add_argument("--max-backlog", type=int, default=None,
                       help="backlog depth before submissions are rejected "
                            "(default: unbounded)")
    fleet.add_argument("--slots", type=int, default=4,
                       help="per-model concurrency slots (0 = unlimited)")
    fleet.add_argument("--no-single-flight", dest="single_flight",
                       action="store_false",
                       help="disable cross-plan coalescing of identical "
                            "in-flight LLM calls")
    fleet.add_argument("--backend", choices=("serial", "threads", "async"),
                       default="serial",
                       help="execution backend: serial (deterministic, "
                            "byte-identical traces), threads (wave nodes "
                            "and fleet rounds on real worker threads), or "
                            "async (the same concurrency as coroutines on "
                            "an asyncio event loop)")
    fleet.add_argument("--batch", action="store_true",
                       help="coalesce distinct-but-batchable LLM calls "
                            "(same model + params, different prompts) into "
                            "micro-batch windows: shared capacity slot and "
                            "amortized latency, per-call cost attribution")
    fleet.add_argument("--batch-size", type=int, default=8,
                       help="max calls per micro-batch window (with --batch)")
    fleet.add_argument("--batch-wait", type=float, default=0.25,
                       help="micro-batch window length in simulated seconds "
                            "(with --batch)")
    fleet.add_argument("--wall-scale", type=float, default=0.0,
                       help="real seconds slept per simulated LLM latency "
                            "second (models blocking I/O; lets the threads "
                            "backend show a wall-clock speedup)")

    surge = commands.add_parser(
        "surge",
        help="serve a seeded open-loop traffic surge (three QoS tiers, one "
             "2x overload window) through admission control and brownout "
             "degradation, and report per-tier completion and latency "
             "against the tier-0 SLO",
    )
    surge.add_argument("--horizon", type=float, default=60.0,
                       help="simulated seconds of offered traffic")
    surge.add_argument("--scale", type=float, default=1.0,
                       help="multiply every tenant's offered rate")
    surge.add_argument("--max-inflight", type=int, default=4,
                       help="plans executing concurrently; the rest queue")
    surge.add_argument("--naive", action="store_true",
                       help="ablation: PR-5 bounded FIFO backlog instead of "
                            "QoS admission + brownout (expected to violate "
                            "the tier-0 gates)")

    shard = commands.add_parser(
        "shard",
        help="build the sharded HR substrate, demo shard-pruned vs fan-out "
             "queries, and optionally run a seeded chaos drill (replica "
             "kills, partitions, degraded latency) proving zero acked-write "
             "loss through failover",
    )
    shard.add_argument("--seekers", type=int, default=20_000,
                       help="seeker rows/profiles to generate")
    shard.add_argument("--shards", type=int, default=8,
                       help="shards per clustered store")
    shard.add_argument("--replicas", type=int, default=3,
                       help="replicas per shard")
    shard.add_argument("--chaos", action="store_true",
                       help="run the chaos drill after the query demo")
    shard.add_argument("--kill-rate", type=float, default=0.15,
                       help="chaos: per-replica kill probability per tick")
    shard.add_argument("--ticks", type=int, default=20,
                       help="chaos: fault-injection ticks to run")
    shard.add_argument("--chaos-seed", type=int, default=11,
                       help="chaos: fault schedule seed")

    recover = commands.add_parser(
        "recover",
        help="inspect a journaled stream export for recoverable plans, or "
             "run the kill/resume crash-recovery demo",
    )
    recover.add_argument("--export", dest="export_file", default=None,
                         help="a stream export JSON file (see trace --format "
                              "json) whose write-ahead journal to analyze")
    recover.add_argument("--plan", default=None,
                         help="with --export: detail one plan's snapshot")
    recover.add_argument("--demo", action="store_true",
                         help="run a deterministic kill/resume demo: execute "
                              "a 3-node plan, kill the coordinator at a "
                              "checkpoint barrier, resume from the journal, "
                              "and compare against the uninterrupted run")
    recover.add_argument("--kill", type=int, default=3,
                         help="demo: 0-based checkpoint barrier to kill at")
    recover.add_argument("--output", default=None,
                         help="demo: also write the resumed run's stream "
                              "export JSON to a file")
    return parser


def cmd_describe(args: argparse.Namespace) -> int:
    assistant = CareerAssistant(seed=args.seed)
    print(json.dumps(assistant.blueprint.describe(), indent=2, default=str))
    return 0


def cmd_ask(args: argparse.Namespace) -> int:
    assistant = CareerAssistant(seed=args.seed)
    if args.max_cost is not None or args.min_quality is not None:
        qos = QoSSpec(
            max_cost=args.max_cost if args.max_cost is not None else float("inf"),
            min_quality=args.min_quality or 0.0,
            objective="cost",
        )
        reply = assistant.ask_with_qos(args.text, qos)
    else:
        reply = assistant.ask(args.text)
    if reply.plan_rendering:
        print(f"plan: {reply.plan_rendering}\n")
    print(reply.text)
    print(f"\nbudget: {json.dumps({k: round(v, 5) for k, v in reply.budget_summary.items()})}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    assistant = CareerAssistant(seed=args.seed)
    task_plan = assistant.blueprint.task_planner.plan(
        args.text, assistant.user_stream.stream_id
    )
    print(task_plan.render())
    print()
    data_plan = assistant.blueprint.data_planner.plan_job_query(
        args.text, verify=args.verify
    )
    print(data_plan.render())
    return 0


def cmd_employer(args: argparse.Namespace) -> int:
    app = AgenticEmployerApp(seed=args.seed)
    # Interleave in the given order: clicks first, then says, is arbitrary;
    # argparse cannot preserve global order, so run clicks then turns.
    for job_id in args.click:
        app.click_job(job_id)
    for text in args.say:
        app.say(text)
    print(app.render_conversation())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace one conversation: every turn's plan -> node -> agent -> call
    tree plus the session's metric snapshot, from one deterministic run."""
    clicks = args.click or ([1] if not args.say else [])
    says = args.say or ["how many applicants have python skills?"]
    app = AgenticEmployerApp(seed=args.seed)
    for job_id in clicks:
        app.click_job(job_id)
    for text in says:
        app.say(text)
    observability = app.observability
    if args.format == "json":
        report = app.trace_export()
    elif args.format == "flame":
        report = observability.flamegraph()
    elif args.format == "critical":
        report = observability.critical_path_report()
    else:
        report = "\n".join(
            [
                "== conversation ==",
                app.render_conversation(),
                "",
                "== span tree (flamegraph) ==",
                observability.flamegraph(),
                "",
                "== critical path ==",
                observability.critical_path_report(),
                "",
                "== metrics ==",
                observability.metrics_report(),
            ]
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"trace written to {args.output}")
    else:
        print(report)
    return 0


class _DemoWorld:
    """The crash-recovery demo's world: everything durable in one place."""

    def __init__(self, seed: int, barrier_hook=None, fanout: bool = False,
                 parallel: bool = False):
        from .clock import SimClock
        from .core.budget import Budget
        from .core.context import AgentContext
        from .core.coordinator import TaskCoordinator
        from .core.recovery import WriteAheadJournal
        from .core.session import SessionManager
        from .observability import Observability
        from .streams import StreamStore

        self.clock = SimClock()
        self.observability = Observability(self.clock)
        self.store = StreamStore(self.clock)
        self.store.observability = self.observability
        self.session = SessionManager(self.store).create("recovery-demo")
        self.budget = Budget(clock=self.clock)
        self.journal = WriteAheadJournal(
            self.store,
            session=self.session,
            barrier_hook=barrier_hook,
            metrics=self.observability.metrics,
        )
        self.seed = seed
        self.fanout = fanout
        self.parallel = parallel
        for agent in self._make_agents():
            agent.attach(self._context())
        self._coordinator_cls = TaskCoordinator
        self._context_cls = AgentContext
        self.coordinator = self.new_coordinator()

    def _context(self):
        from .core.context import AgentContext

        return AgentContext(
            store=self.store,
            session=self.session,
            clock=self.clock,
            budget=self.budget,
            observability=self.observability,
        )

    def _make_agents(self):
        from .core.agent import FunctionAgent
        from .core.params import Parameter

        budget, seed, fanout = self.budget, self.seed, self.fanout

        def stage(name, cost, latency):
            def fn(inputs):
                budget.charge(f"agent:{name}", cost=cost, latency=latency)
                bound = ",".join(str(v) for _, v in sorted(inputs.items()) if v)
                return {"OUT": f"{name}[{seed}]({bound})"}

            params = (Parameter("IN", "text"),)
            if fanout:
                # The fan-in node binds one output from every branch.
                params += (
                    Parameter("IN2", "text", required=False),
                    Parameter("IN3", "text", required=False),
                )
            return FunctionAgent(
                name, fn,
                inputs=params,
                outputs=(Parameter("OUT", "text"),),
            )

        stages = [
            stage("EXTRACT", 0.01, 0.4),
            stage("MATCH", 0.02, 0.7),
            stage("RANK", 0.01, 0.3),
        ]
        if fanout:
            stages += [stage("PROFILE", 0.01, 0.6), stage("SEARCH", 0.01, 0.5)]
        return stages

    def new_coordinator(self):
        coordinator = self._coordinator_cls(
            journal=self.journal, parallel=self.parallel
        )
        coordinator.attach(self._context())
        return coordinator

    def plan(self):
        from .core.plan import Binding, TaskPlan

        if self.fanout:
            plan = TaskPlan(
                "fanout-plan", goal="extract, then match|profile|search, then rank"
            )
            plan.add_step("s1", "EXTRACT", {"IN": Binding.const(f"query#{self.seed}")})
            plan.add_step("m1", "MATCH", {"IN": Binding.from_node("s1", "OUT")})
            plan.add_step("m2", "PROFILE", {"IN": Binding.from_node("s1", "OUT")})
            plan.add_step("m3", "SEARCH", {"IN": Binding.from_node("s1", "OUT")})
            plan.add_step(
                "s2", "RANK",
                {
                    "IN": Binding.from_node("m1", "OUT"),
                    "IN2": Binding.from_node("m2", "OUT"),
                    "IN3": Binding.from_node("m3", "OUT"),
                },
            )
            return plan
        plan = TaskPlan("demo-plan", goal="extract, match, rank")
        plan.add_step("s1", "EXTRACT", {"IN": Binding.const(f"query#{self.seed}")})
        plan.add_step("s2", "MATCH", {"IN": Binding.from_node("s1", "OUT")})
        plan.add_step("s3", "RANK", {"IN": Binding.from_node("s2", "OUT")})
        return plan


def cmd_run(args: argparse.Namespace) -> int:
    """Execute the fan-out demo plan, wave-parallel by default.

    The plan is a diamond — EXTRACT, then MATCH / PROFILE / SEARCH off the
    same output, then a RANK fan-in — so the middle wave genuinely
    overlaps and the critical path beats the serial sum.
    """
    world = _DemoWorld(args.seed, fanout=True, parallel=args.parallel)
    plan = world.plan()
    run = world.coordinator.execute_plan(plan)
    elapsed = world.clock.now()

    print(f"mode: {'parallel (wave scheduler)' if args.parallel else 'serial'}")
    print("schedule:")
    for index, wave in enumerate(plan.waves()):
        print(f"  w{index}: {', '.join(node.node_id for node in wave)}")
    print(f"status: {run.status}")
    for node_id in sorted(run.node_outputs):
        print(f"  {node_id} -> {run.node_outputs[node_id].get('OUT')}")
    print(f"simulated latency: {elapsed:.2f}s   "
          f"cost: ${world.budget.spent_cost():.4f}")
    if args.parallel:
        baseline = _DemoWorld(args.seed, fanout=True, parallel=False)
        baseline.coordinator.execute_plan(baseline.plan())
        serial = baseline.clock.now()
        print(f"serial baseline:   {serial:.2f}s   "
              f"speedup: {serial / elapsed:.2f}x")
    snapshot = world.observability.metrics.snapshot()
    scheduler_metrics = {
        name: snapshot[name]
        for name in sorted(snapshot)
        if name.startswith("scheduler.")
    }
    if scheduler_metrics:
        print("scheduler metrics:")
        for name, value in scheduler_metrics.items():
            print(f"  {name} = {value}")
    return 0 if run.status == "completed" else 1


def _fleet_plan(index: int):
    """One Fig-6-style plan: profile, then match | recommend, then rank."""
    from .core.plan import Binding, TaskPlan

    plan = TaskPlan(f"fleet-{index:02d}", goal=f"session {index} job search")
    plan.add_step(
        "profile", "PROFILER",
        {"IN": Binding.const(f"candidate #{index}: data scientist in the bay area")},
    )
    plan.add_step("match", "MATCHER", {"IN": Binding.from_node("profile", "OUT")})
    plan.add_step(
        "recommend", "RECOMMENDER", {"IN": Binding.from_node("profile", "OUT")}
    )
    plan.add_step(
        "rank", "RANKER",
        {
            "IN": Binding.from_node("match", "OUT"),
            "IN2": Binding.from_node("recommend", "OUT"),
        },
    )
    return plan


def _fleet_agents(catalog, index: int):
    """LLM-backed stages for one fleet session.

    MATCHER and RECOMMENDER issue the *same* prompt in every session, so
    overlapping plans coalesce those calls through the catalog's
    single-flight; PROFILER and RANKER are session-specific.
    """
    from .core.agent import FunctionAgent
    from .core.params import Parameter

    def llm_stage(name, model, prompt_of):
        def fn(inputs):
            response = catalog.client(model).complete(prompt_of(inputs))
            return {"OUT": response.text}

        return FunctionAgent(
            name, fn,
            inputs=(
                Parameter("IN", "text"),
                Parameter("IN2", "text", required=False),
            ),
            outputs=(Parameter("OUT", "text"),),
        )

    return [
        llm_stage(
            "PROFILER", "mega-s",
            lambda i: "TASK: EXTRACT\nFIELDS: title, location\n"
                      f"TEXT: {i['IN']}",
        ),
        llm_stage(
            "MATCHER", "mega-m",
            lambda i: "TASK: RELATED_TITLES\nTITLE: data scientist",
        ),
        llm_stage(
            "RECOMMENDER", "hr-ft",
            lambda i: "TASK: LIST_SKILLS\nTITLE: data scientist",
        ),
        llm_stage(
            "RANKER", "mega-s",
            lambda i: f"TASK: SUMMARIZE\nTEXT: {i.get('IN', '')} | "
                      f"{i.get('IN2', '')}",
        ),
    ]


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run N plans through the fleet scheduler; compare against serial."""
    from .core.fleet import FleetSubmission
    from .core.runtime import Blueprint

    if args.plans < 1:
        print("fleet: --plans must be >= 1")
        return 2

    # Serial baseline: the same plans, one Blueprint, driven one after
    # another (each still wave-parallel *within* the plan).
    serial_bp = Blueprint()
    serial_bp.catalog.wall_latency_scale = args.wall_scale
    serial_start = serial_bp.clock.now()
    serial_wall_start = time.perf_counter()
    for index in range(args.plans):
        session = serial_bp.create_session()
        for agent in _fleet_agents(serial_bp.catalog, index):
            serial_bp.attach(agent, session)
        from .core.coordinator import TaskCoordinator

        coordinator = TaskCoordinator(
            data_planner=serial_bp.data_planner, parallel=True
        )
        serial_bp.attach(coordinator, session)
        coordinator.execute_plan(_fleet_plan(index))
    serial_makespan = serial_bp.clock.now() - serial_start
    serial_wall = time.perf_counter() - serial_wall_start

    fleet_bp = Blueprint()
    fleet_bp.catalog.wall_latency_scale = args.wall_scale
    capacity = {name: args.slots for name in fleet_bp.catalog.names()} if args.slots else None
    submissions = [
        FleetSubmission(
            plan=_fleet_plan(index),
            agents=_fleet_agents(fleet_bp.catalog, index),
        )
        for index in range(args.plans)
    ]
    batching = False
    if args.batch:
        from .llm import LLMBatcher

        batching = LLMBatcher(
            max_batch_size=args.batch_size, max_batch_wait=args.batch_wait
        )
    fleet_wall_start = time.perf_counter()
    result = fleet_bp.run_fleet(
        submissions,
        max_inflight=args.max_inflight,
        max_backlog=args.max_backlog,
        single_flight=args.single_flight,
        capacity=capacity,
        batching=batching,
        backend=args.backend,
    )
    fleet_wall = time.perf_counter() - fleet_wall_start

    print(f"plans: {args.plans}   max in-flight: {args.max_inflight}   "
          f"model slots: {args.slots or 'unlimited'}   "
          f"single-flight: {'on' if args.single_flight else 'off'}   "
          f"batching: {'on' if args.batch else 'off'}   "
          f"backend: {args.backend}")
    print(f"admitted={result.admitted} queued={result.queued} "
          f"rejected={result.rejected}")
    print()
    for p in result.plans:
        if p.outcome == "rejected":
            print(f"  {p.plan_id}: rejected (backlog full)")
            continue
        print(f"  {p.plan_id}: {p.outcome}  admitted@{p.admitted_at:.2f}s  "
              f"finished@{p.finished_at:.2f}s  queue_wait={p.queue_wait:.2f}s")
    print()
    print(f"fleet makespan:   {result.makespan:.2f}s (simulated)")
    print(f"serial baseline:  {serial_makespan:.2f}s")
    if result.makespan > 0:
        print(f"speedup:          {serial_makespan / result.makespan:.2f}x")
    print(f"wall clock:       fleet {fleet_wall:.3f}s vs serial "
          f"{serial_wall:.3f}s"
          + (f"  ({serial_wall / fleet_wall:.2f}x)" if fleet_wall > 0 else ""))
    if fleet_bp.catalog.capacity is not None:
        print("capacity (peak in-flight per model, limit "
              f"{args.slots}):")
        for model in fleet_bp.catalog.capacity.models():
            peak = fleet_bp.catalog.capacity.max_concurrency(model)
            print(f"  {model}: {peak}")
        stats = fleet_bp.catalog.capacity.stats()
        print(f"  queued calls: {stats.queued}/{stats.reservations} "
              f"(total wait {stats.total_wait:.2f}s)")
    if fleet_bp.catalog.single_flight is not None:
        flights = fleet_bp.catalog.single_flight.stats()
        print(f"single-flight: {flights.joins} joins / "
              f"{flights.leaders} leaders "
              f"(hit rate {flights.hit_rate:.0%}, "
              f"saved ${flights.saved_cost:.5f} and "
              f"{flights.saved_latency:.2f}s model time)")
    if fleet_bp.catalog.batcher is not None:
        batches = fleet_bp.catalog.batcher.stats()
        print(f"batching: {batches.joins} joins / "
              f"{batches.batches} windows "
              f"(mean batch {batches.mean_batch:.2f}, "
              f"peak {batches.peak_batch}, "
              f"amortized {batches.saved_latency:.2f}s model time, "
              f"${batches.attributed_cost:.5f} attributed to joins)")
    completed = len(result.completed())
    expected = result.admitted
    return 0 if completed == expected else 1


def cmd_surge(args: argparse.Namespace) -> int:
    """Open-loop overload demo: QoS control plane vs the FIFO ablation."""
    from .core.overload.brownout import LEVEL_NAMES
    from .core.overload.demo import (
        TIER0_LATENCY_SLO,
        demo_admission,
        demo_brownout,
        demo_submission,
        demo_traffic,
        tier_summary,
    )
    from .core.runtime import Blueprint

    bp = Blueprint()
    traffic = demo_traffic(
        seed=args.seed, horizon=args.horizon, scale=args.scale
    )
    if args.naive:
        admission = None
        brownout = None
        max_backlog = 12
    else:
        admission = demo_admission()
        brownout = demo_brownout(metrics=bp.observability.metrics)
        max_backlog = None
    result = bp.run_traffic(
        traffic,
        demo_submission,
        max_inflight=args.max_inflight,
        max_backlog=max_backlog,
        admission=admission,
        brownout=brownout,
        single_flight=False,
    )

    shape = traffic.describe()
    mode = "naive-fifo (ablation)" if args.naive else "qos + brownout"
    print(f"mode: {mode}   seed: {args.seed}   "
          f"horizon: {args.horizon:.0f}s   max in-flight: {args.max_inflight}")
    print(f"tenants: {shape['tenants']} ({shape['users']:,} simulated users, "
          f"offered {shape['offered_rate']:.2f} plans/s steady)")
    for start, end, mult in shape["surge_windows"]:
        print(f"surge window: {start:.0f}s-{end:.0f}s at x{mult:.1f} offered load")
    print(f"offered: {len(result.plans)}   admitted: {result.admitted}   "
          f"queued: {result.queued}   rejected: {result.rejected}")
    print()

    summary = tier_summary(result)
    names = {0: "enterprise", 1: "standard", 2: "batch"}
    for tier, stats in summary.items():
        rejected = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(stats["rejected"].items())
        ) or "none"
        print(f"  tier {tier} ({names.get(tier, '?'):10s}): "
              f"{stats['completed']}/{stats['offered']} completed "
              f"({stats['completion']:.0%})  "
              f"p50={stats['p50_latency']:.2f}s p99={stats['p99_latency']:.2f}s  "
              f"rejected: {rejected}")
    print()

    if brownout is not None and brownout.transitions:
        print("brownout transitions (time, level, queue depth):")
        for at, old, new, depth in brownout.transitions:
            arrow = "^" if new > old else "v"
            print(f"  {at:7.2f}s  {LEVEL_NAMES[old]} -> {LEVEL_NAMES[new]} "
                  f"{arrow} (depth {depth})")
        snapshot = bp.observability.metrics.snapshot()
        for name in sorted(snapshot):
            if name.startswith("overload."):
                print(f"  {name} = {snapshot[name]}")
        print()

    tier0 = summary.get(0, {"completion": 1.0, "p99_latency": 0.0})
    completion_ok = tier0["completion"] >= 1.0
    latency_ok = tier0["p99_latency"] <= TIER0_LATENCY_SLO
    shed_tiers = {
        tier for tier, stats in summary.items() if "shed" in stats["rejected"]
    }
    shed_ok = shed_tiers <= {max(summary)} if summary else True
    print(f"tier-0 completion 1.00: {'PASS' if completion_ok else 'FAIL'} "
          f"({tier0['completion']:.2f})")
    print(f"tier-0 p99 <= {TIER0_LATENCY_SLO:.1f}s SLO: "
          f"{'PASS' if latency_ok else 'FAIL'} ({tier0['p99_latency']:.2f}s)")
    print(f"shedding confined to lowest tier: "
          f"{'PASS' if shed_ok else 'FAIL'}")
    if args.naive:
        return 0  # the ablation is expected to fail its gates
    return 0 if completion_ok and latency_ok and shed_ok else 1


def cmd_shard(args: argparse.Namespace) -> int:
    """Sharded-substrate demo: pruned queries, then an optional chaos drill."""
    from .core.resilience.chaos import ChaosController, ChaosSpec
    from .errors import ClusterUnavailableError, QueryError
    from .hr.data import build_sharded_enterprise

    t0 = time.perf_counter()
    enterprise = build_sharded_enterprise(
        seed=args.seed,
        n_seekers=args.seekers,
        n_shards=args.shards,
        n_replicas=args.replicas,
    )
    build_s = time.perf_counter() - t0
    database = enterprise.database
    profiles = enterprise.profiles
    print(f"built sharded enterprise: {args.seekers} seekers, "
          f"{args.shards} shards x {args.replicas} replicas "
          f"({build_s:.1f}s)")

    t0 = time.perf_counter()
    pruned = profiles.find({"city": "Austin"}, limit=20)
    pruned_ms = (time.perf_counter() - t0) * 1000
    stats = dict(profiles.last_find_stats)
    print(f"\npruned doc find  city=Austin: {len(pruned)} rows in "
          f"{pruned_ms:.1f}ms  "
          f"(scanned {stats['shards_scanned']}/{stats['shards_total']} "
          f"shards, {stats['docs_scanned']} docs)")

    t0 = time.perf_counter()
    fanout = profiles.find({"years_experience": {"$gte": 15}}, limit=20)
    fanout_ms = (time.perf_counter() - t0) * 1000
    stats = dict(profiles.last_find_stats)
    print(f"fan-out doc find years>=15: {len(fanout)} rows in "
          f"{fanout_ms:.1f}ms  "
          f"(scanned {stats['shards_scanned']}/{stats['shards_total']} "
          f"shards, {stats['docs_scanned']} docs)")

    result = database.execute(
        "SELECT title, COUNT(*) AS n FROM seekers WHERE city = 'Austin' "
        "GROUP BY title ORDER BY n DESC LIMIT 3"
    )
    sql_stats = dict(database.last_execute_stats)
    print(f"pruned SQL group-by: top titles {[r['title'] for r in result.rows]} "
          f"(scanned {sql_stats['shards_scanned']}/{sql_stats['shards_total']} "
          f"shards via {sql_stats['path']})")

    if not args.chaos:
        return 0

    print(f"\nchaos drill: kill-rate {args.kill_rate}, {args.ticks} ticks, "
          f"seed {args.chaos_seed}")
    cluster = enterprise.documents.cluster
    chaos = ChaosController(
        ChaosSpec(
            replica_kill_rate=args.kill_rate,
            shard_partition_rate=args.kill_rate / 2,
            replica_latency_rate=args.kill_rate,
        ),
        seed=args.chaos_seed,
    )
    acked: list[str] = []
    rejected = kills = partitions = 0
    for tick in range(args.ticks):
        struck = chaos.strike_store_cluster(cluster)
        kills += len(struck["killed"])
        partitions += len(struck["partitioned"])
        for i in range(3):
            doc_id = f"drill-{tick}-{i}"
            try:
                profiles.insert(
                    {"seeker_id": 10**9 + tick * 3 + i, "name": "Drill",
                     "title": "Chaos Engineer", "city": "Austin",
                     "years_experience": tick, "skills": ["chaos"]},
                    doc_id=doc_id,
                )
                acked.append(doc_id)
            except ClusterUnavailableError:
                rejected += 1
        cluster.tick()
    cluster.settle(ticks=80)
    survived = 0
    for doc_id in acked:
        try:
            profiles.get(doc_id)
            survived += 1
        except QueryError:
            pass
    promotions = sum(shard.promotions for shard in cluster.shards)
    print(f"  faults: {kills} replica kills, {partitions} partitions, "
          f"{promotions} failover promotions")
    print(f"  writes: {len(acked)} acked, {rejected} rejected "
          f"(quorum unavailable)")
    print(f"  acked writes surviving failover: {survived}/{len(acked)}")
    healthy = all(
        replica.status.value == "alive" and replica.applied == shard.acked
        for shard in cluster.shards for replica in shard.replicas
    )
    print(f"  cluster converged: {healthy}")
    if survived == len(acked) and healthy:
        print("  PASS: zero acked-write loss")
        return 0
    print("  FAIL: acked writes lost or cluster diverged")
    return 1


def cmd_recover(args: argparse.Namespace) -> int:
    if args.export_file is None and not args.demo:
        print("recover: pass --export FILE to analyze a journal, or --demo")
        return 2
    if args.export_file is not None:
        return _recover_analyze(args)
    return _recover_demo(args)


def _recover_analyze(args: argparse.Namespace) -> int:
    """Post-hoc journal analysis over a replayed stream export."""
    from .core.recovery import JOURNAL_TAG, RecoveryManager, WriteAheadJournal
    from .streams.persistence import replay_json

    with open(args.export_file, "r", encoding="utf-8") as handle:
        store = replay_json(handle.read())
    journal_streams = sorted(
        {m.stream_id for m in store.trace() if m.has_tag(JOURNAL_TAG)}
    )
    if not journal_streams:
        print("no write-ahead journal records in this export")
        return 1
    report: dict = {"journals": []}
    for stream_id in journal_streams:
        journal = WriteAheadJournal.over_stream(store, stream_id)
        manager = RecoveryManager(journal)
        entry = manager.describe()
        if args.plan is not None:
            entry["plan_detail"] = manager.snapshot(args.plan).describe()
        report["journals"].append(entry)
    print(json.dumps(report, indent=2, default=str))
    return 0


def _recover_demo(args: argparse.Namespace) -> int:
    """Kill/resume demo: run, kill at a barrier, resume, compare."""
    import hashlib

    from .core.recovery import RecoveryManager
    from .core.resilience import KillSwitch
    from .errors import CoordinatorKilledError
    from .streams.persistence import export_json

    baseline = _DemoWorld(args.seed)
    base_run = baseline.coordinator.execute_plan(baseline.plan())
    base_export = export_json(baseline.store)

    switch = KillSwitch(args.kill)
    world = _DemoWorld(args.seed, barrier_hook=switch)
    try:
        run = world.coordinator.execute_plan(world.plan())
    except CoordinatorKilledError:
        world.coordinator.crash()  # the process is gone; only streams survive
        world.coordinator = world.new_coordinator()
        manager = RecoveryManager(world.journal, coordinator=world.coordinator)
        runs = manager.resume_incomplete(budget=world.budget)
        run = runs[0] if runs else None
    resumed_export = export_json(world.store)
    digest = hashlib.md5(resumed_export.encode("utf-8")).hexdigest()
    base_digest = hashlib.md5(base_export.encode("utf-8")).hexdigest()

    print(f"uninterrupted run: status={base_run.status} "
          f"cost={baseline.budget.spent_cost():.4f}")
    if switch.fired:
        print(f"killed at barrier {args.kill} ({switch.fired_site}); "
              f"resumed from the journal")
    else:
        print(f"barrier {args.kill} never reached "
              f"({switch.seen} barriers total); run was uninterrupted")
    if run is not None:
        print(f"recovered run:     status={run.status} "
              f"cost={world.budget.spent_cost():.4f} "
              f"replayed_effects={run.replayed_effects}")
    print(f"export digests:    baseline={base_digest}")
    print(f"                   resumed ={digest}")
    print(f"byte-identical:    {digest == base_digest}")
    print()
    print("== recovery metrics ==")
    snapshot = world.observability.metrics.snapshot()
    shown = False
    for name in sorted(snapshot):
        if name.startswith(("recovery.", "journal.")):
            print(f"  {name} = {snapshot[name]}")
            shown = True
    if not shown:
        print("  (none — nothing was recovered)")
    recover_spans = [
        s for s in world.observability.tracer.spans()
        if s.name.startswith("recover:")
    ]
    if recover_spans:
        print()
        print("== recovery spans ==")
        for span in recover_spans:
            print(f"  {span.name} attrs={dict(span.attributes)}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(resumed_export + "\n")
        print(f"\nresumed export written to {args.output}")
    return 0 if digest == base_digest and (run is None or run.status == "completed") else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "describe": cmd_describe,
        "ask": cmd_ask,
        "plan": cmd_plan,
        "employer": cmd_employer,
        "trace": cmd_trace,
        "run": cmd_run,
        "fleet": cmd_fleet,
        "surge": cmd_surge,
        "shard": cmd_shard,
        "recover": cmd_recover,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
