"""Command-line interface: drive the blueprint from a shell.

Usage:
    python -m repro describe                 # the Figure-1 inventory
    python -m repro ask "data scientist position in SF bay area"
    python -m repro plan "data scientist position in SF bay area"
    python -m repro employer --click 1 --say "how many applicants have python skills?"
    python -m repro trace --say "how many applicants have python skills?"
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

from .core.qos import QoSSpec
from .hr.apps import AgenticEmployerApp, CareerAssistant


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Blueprint architecture for compound AI systems"
    )
    parser.add_argument("--seed", type=int, default=7, help="enterprise data seed")
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser("describe", help="print the architecture inventory")

    ask = commands.add_parser("ask", help="ask the career assistant")
    ask.add_argument("text", help="the request, e.g. a job-search utterance")
    ask.add_argument("--max-cost", type=float, default=None, help="QoS cost budget ($)")
    ask.add_argument("--min-quality", type=float, default=None, help="QoS quality floor")

    plan = commands.add_parser("plan", help="show the task and data plans for a request")
    plan.add_argument("text")
    plan.add_argument("--verify", action="store_true", help="inject fact verification")

    employer = commands.add_parser("employer", help="run Agentic Employer turns")
    employer.add_argument("--click", type=int, action="append", default=[],
                          help="select a job id (repeatable)")
    employer.add_argument("--say", action="append", default=[],
                          help="a conversation turn (repeatable)")

    trace = commands.add_parser(
        "trace",
        help="run an Agentic Employer conversation and dump its span tree "
             "and metrics snapshot",
    )
    trace.add_argument("--click", type=int, action="append", default=[],
                       help="select a job id (repeatable)")
    trace.add_argument("--say", action="append", default=[],
                       help="a conversation turn (repeatable; defaults to a "
                            "canonical one-click, one-question conversation)")
    trace.add_argument("--format", choices=("report", "flame", "critical", "json"),
                       default="report",
                       help="report = flamegraph + critical path + metrics "
                            "(default); json = the canonical byte-comparable "
                            "export")
    trace.add_argument("--output", default=None,
                       help="write to a file instead of stdout")
    return parser


def cmd_describe(args: argparse.Namespace) -> int:
    assistant = CareerAssistant(seed=args.seed)
    print(json.dumps(assistant.blueprint.describe(), indent=2, default=str))
    return 0


def cmd_ask(args: argparse.Namespace) -> int:
    assistant = CareerAssistant(seed=args.seed)
    if args.max_cost is not None or args.min_quality is not None:
        qos = QoSSpec(
            max_cost=args.max_cost if args.max_cost is not None else float("inf"),
            min_quality=args.min_quality or 0.0,
            objective="cost",
        )
        reply = assistant.ask_with_qos(args.text, qos)
    else:
        reply = assistant.ask(args.text)
    if reply.plan_rendering:
        print(f"plan: {reply.plan_rendering}\n")
    print(reply.text)
    print(f"\nbudget: {json.dumps({k: round(v, 5) for k, v in reply.budget_summary.items()})}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    assistant = CareerAssistant(seed=args.seed)
    task_plan = assistant.blueprint.task_planner.plan(
        args.text, assistant.user_stream.stream_id
    )
    print(task_plan.render())
    print()
    data_plan = assistant.blueprint.data_planner.plan_job_query(
        args.text, verify=args.verify
    )
    print(data_plan.render())
    return 0


def cmd_employer(args: argparse.Namespace) -> int:
    app = AgenticEmployerApp(seed=args.seed)
    # Interleave in the given order: clicks first, then says, is arbitrary;
    # argparse cannot preserve global order, so run clicks then turns.
    for job_id in args.click:
        app.click_job(job_id)
    for text in args.say:
        app.say(text)
    print(app.render_conversation())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace one conversation: every turn's plan -> node -> agent -> call
    tree plus the session's metric snapshot, from one deterministic run."""
    clicks = args.click or ([1] if not args.say else [])
    says = args.say or ["how many applicants have python skills?"]
    app = AgenticEmployerApp(seed=args.seed)
    for job_id in clicks:
        app.click_job(job_id)
    for text in says:
        app.say(text)
    observability = app.observability
    if args.format == "json":
        report = app.trace_export()
    elif args.format == "flame":
        report = observability.flamegraph()
    elif args.format == "critical":
        report = observability.critical_path_report()
    else:
        report = "\n".join(
            [
                "== conversation ==",
                app.render_conversation(),
                "",
                "== span tree (flamegraph) ==",
                observability.flamegraph(),
                "",
                "== critical path ==",
                observability.critical_path_report(),
                "",
                "== metrics ==",
                observability.metrics_report(),
            ]
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"trace written to {args.output}")
    else:
        print(report)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "describe": cmd_describe,
        "ask": cmd_ask,
        "plan": cmd_plan,
        "employer": cmd_employer,
        "trace": cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
