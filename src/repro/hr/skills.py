"""Skill extraction: YourJourney's task-specific "CRF model".

The paper's enterprise has "trained models ... for various tasks such as
skill extraction" (Section II); agents wrap them like any other compute.
This is a deterministic gazetteer/rule model: a vocabulary of canonical
skills with aliases, matched on token boundaries with confidence scores —
the behavioral stand-in for a sequence tagger, fully offline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..llm.knowledge import TITLE_SKILLS

#: canonical skill -> aliases (matched case-insensitively).
SKILL_ALIASES: dict[str, tuple[str, ...]] = {
    "python": ("python", "py"),
    "sql": ("sql", "structured query language"),
    "machine learning": ("machine learning", "ml"),
    "deep learning": ("deep learning", "neural networks"),
    "statistics": ("statistics", "statistical analysis", "stats"),
    "data visualization": ("data visualization", "dataviz", "tableau"),
    "experiment design": ("experiment design", "a/b testing", "ab testing"),
    "mlops": ("mlops", "ml ops"),
    "distributed systems": ("distributed systems",),
    "algorithms": ("algorithms", "data structures"),
    "system design": ("system design", "architecture design"),
    "testing": ("testing", "unit testing", "qa"),
    "git": ("git", "version control"),
    "debugging": ("debugging",),
    "spark": ("spark", "pyspark"),
    "airflow": ("airflow",),
    "data modeling": ("data modeling", "data modelling"),
    "roadmapping": ("roadmapping", "roadmap planning"),
    "stakeholder management": ("stakeholder management",),
    "analytics": ("analytics",),
    "communication": ("communication",),
}


@dataclass(frozen=True)
class SkillMention:
    """One extracted skill occurrence."""

    skill: str       # canonical name
    surface: str     # text as matched
    start: int
    end: int
    confidence: float


class SkillExtractor:
    """Gazetteer-based skill extractor with canonical normalization."""

    def __init__(self, aliases: dict[str, tuple[str, ...]] | None = None) -> None:
        self._aliases = aliases or SKILL_ALIASES
        self._patterns: list[tuple[str, str, re.Pattern[str]]] = []
        for canonical, surface_forms in self._aliases.items():
            for surface in surface_forms:
                pattern = re.compile(rf"\b{re.escape(surface)}\b", re.IGNORECASE)
                self._patterns.append((canonical, surface, pattern))
        # Longer aliases first: "machine learning" must win over "ml".
        self._patterns.sort(key=lambda entry: -len(entry[1]))

    def extract(self, text: str) -> list[SkillMention]:
        """All skill mentions, deduplicated by overlapping spans."""
        mentions: list[SkillMention] = []
        claimed: list[tuple[int, int]] = []
        for canonical, surface, pattern in self._patterns:
            for match in pattern.finditer(text):
                span = (match.start(), match.end())
                if any(s < span[1] and span[0] < e for s, e in claimed):
                    continue
                claimed.append(span)
                confidence = 0.95 if surface == canonical else 0.85
                mentions.append(
                    SkillMention(
                        skill=canonical,
                        surface=match.group(0),
                        start=span[0],
                        end=span[1],
                        confidence=confidence,
                    )
                )
        mentions.sort(key=lambda m: m.start)
        return mentions

    def skills_of(self, text: str) -> list[str]:
        """Distinct canonical skills in *text*, in order of appearance."""
        seen: list[str] = []
        for mention in self.extract(text):
            if mention.skill not in seen:
                seen.append(mention.skill)
        return seen

    def expected_skills(self, title: str) -> list[str]:
        """Core skills for a title, from the trained model's priors."""
        return list(TITLE_SKILLS.get(title.lower(), ()))
