"""Candidate clustering: YourJourney's other predictive model.

Scenario II lets employers "utilize sophisticated predictive models to
rank and cluster candidates" (Section II-B).  Ranking is the matcher;
this is the clustering side: k-means over skill-profile embeddings, with
clusters labeled by their dominant skills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..embedding import HashingEmbedder


@dataclass(frozen=True)
class Cluster:
    """One group of similar candidates."""

    label: str                      # dominant skills, e.g. "python + sql"
    members: tuple[str, ...]        # candidate names
    member_ids: tuple[Any, ...]
    size: int

    def render(self) -> str:
        names = ", ".join(self.members[:5])
        suffix = ", ..." if self.size > 5 else ""
        return f"[{self.label}] ({self.size}): {names}{suffix}"


def _skills_text(seeker: Mapping[str, Any]) -> str:
    skills = seeker.get("skills", "")
    if isinstance(skills, (list, tuple)):
        return " ".join(str(s) for s in skills)
    return str(skills).replace(",", " ")


def _skill_phrases(seeker: Mapping[str, Any]) -> list[str]:
    skills = seeker.get("skills", "")
    if isinstance(skills, (list, tuple)):
        return [str(s).strip() for s in skills if str(s).strip()]
    return [part.strip() for part in str(skills).split(",") if part.strip()]


def _dominant_skills(members: list[Mapping[str, Any]], top: int = 2) -> str:
    counts: dict[str, int] = {}
    for seeker in members:
        for skill in _skill_phrases(seeker):
            counts[skill] = counts.get(skill, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return " + ".join(skill for skill, _ in ranked[:top]) or "misc"


def cluster_seekers(
    seekers: Sequence[Mapping[str, Any]],
    k: int = 3,
    seed: int = 13,
    iterations: int = 20,
) -> list[Cluster]:
    """K-means over skill embeddings; deterministic under *seed*.

    Clusters come back largest first, each labeled with its dominant
    skills.  Fewer seekers than *k* yields one cluster per seeker.
    """
    if not seekers:
        return []
    k = min(k, len(seekers))
    embedder = HashingEmbedder(dim=64)
    matrix = np.vstack([embedder.embed(_skills_text(s)) for s in seekers])
    rng = np.random.default_rng(seed)
    centroids = matrix[rng.choice(len(seekers), size=k, replace=False)].copy()
    assignments = np.zeros(len(seekers), dtype=np.int64)
    for _ in range(iterations):
        distances = np.linalg.norm(matrix[:, None, :] - centroids[None, :, :], axis=2)
        assignments = distances.argmin(axis=1)
        for cluster_index in range(k):
            members = matrix[assignments == cluster_index]
            if len(members):
                centroids[cluster_index] = members.mean(axis=0)
    clusters = []
    for cluster_index in range(k):
        member_rows = [s for s, a in zip(seekers, assignments) if a == cluster_index]
        if not member_rows:
            continue
        clusters.append(
            Cluster(
                label=_dominant_skills(member_rows),
                members=tuple(str(s.get("name", s.get("id"))) for s in member_rows),
                member_ids=tuple(s.get("id") for s in member_rows),
                size=len(member_rows),
            )
        )
    clusters.sort(key=lambda c: (-c.size, c.label))
    return clusters
