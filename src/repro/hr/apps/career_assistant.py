"""Scenario I: the conversational career assistant (Section II-A).

Supports job seekers "in exploring companies and roles, conducting job
searches, and supporting their careers".  The running example —
"I am looking for a data scientist position in SF bay area." — flows
user stream -> TASK_PLANNER -> (PROFILER -> JOB_MATCHER -> PRESENTER)
under the TASK_COORDINATOR, with the JOB_MATCHER pulling jobs through the
data planner's decomposed Figure-7 plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...core.coordinator import TaskCoordinator
from ...core.plan.task_plan import Binding, TaskPlan
from ...core.planners.task_planner import StepSpec, TaskPlannerAgent, TaskTemplate
from ...core.qos import QoSSpec
from ...core.rendering import submit_form
from ...core.runtime import Blueprint
from ...errors import SessionError
from ..agents import ExplainerAgent, JobMatcherAgent, PresenterAgent, ProfilerAgent
from ..data import Enterprise, build_enterprise
from ..matching import JobMatcher

JOB_SEARCH_TEMPLATE = TaskTemplate(
    intent="job_search",
    keywords=("looking for", "position", "job", "find", "searching", "openings", "role"),
    steps=(
        StepSpec("build a job seeker profile from search criteria"),
        StepSpec("match the job seeker profile with available job listings"),
        StepSpec("present matched jobs to the end user"),
    ),
    description="Find and present matching jobs for a seeker",
)

SKILL_ADVICE_TEMPLATE = TaskTemplate(
    intent="skill_advice",
    keywords=("skills", "what are the required", "learn", "become", "want to be"),
    steps=(
        StepSpec("build a job seeker profile from search criteria"),
    ),
    description="Advise on skills required for a role",
)


def _detect_location(text: str) -> str | None:
    """Gazetteer lookup of a region or city mention."""
    from ...llm.knowledge import REGION_CITIES

    lowered = text.lower()
    for region in REGION_CITIES:
        if region in lowered:
            return region
    for cities in REGION_CITIES.values():
        for city in cities:
            if city.lower() in lowered:
                return city
    return None


def _detect_title(text: str) -> str | None:
    """Gazetteer lookup of a known job-title mention."""
    from ..taxonomy import base_titles

    lowered = text.lower()
    for title in base_titles():
        if title.lower() in lowered:
            return title
    return None


@dataclass
class AssistantReply:
    """One answered request."""

    text: str
    matches: list[dict[str, Any]]
    plan_rendering: str
    budget_summary: dict[str, float]


class CareerAssistant:
    """The assembled Scenario-I application."""

    def __init__(
        self,
        enterprise: Enterprise | None = None,
        qos: QoSSpec | None = None,
        seed: int = 7,
    ) -> None:
        self.enterprise = enterprise or build_enterprise(seed)
        self.blueprint = Blueprint(data_registry=self.enterprise.registry)
        self.session = self.blueprint.create_session("career")
        self.budget = self.blueprint.budget(qos)
        # SQL issued on behalf of this session lands in the same trace.
        self.enterprise.database.observability = self.blueprint.observability
        self.blueprint.task_planner.register_template(JOB_SEARCH_TEMPLATE)
        self.blueprint.task_planner.register_template(SKILL_ADVICE_TEMPLATE)
        matcher = JobMatcher(self.enterprise.taxonomy)
        self.profiler = ProfilerAgent()
        self.job_matcher = JobMatcherAgent(
            matcher, data_planner=self.blueprint.data_planner
        )
        self.presenter = PresenterAgent()
        self.explainer = ExplainerAgent()
        for agent in (self.profiler, self.job_matcher, self.presenter, self.explainer):
            self.blueprint.attach(agent, self.session, self.budget)
        self.planner_agent: TaskPlannerAgent
        self.coordinator: TaskCoordinator
        self.planner_agent, self.coordinator = (
            self.blueprint.attach_planner_and_coordinator(self.session, self.budget)
        )
        self.user_stream = self.session.create_stream("user", tags=("USER",), creator="user")

    # ------------------------------------------------------------------
    # Event-driven entry point (the architecture's own flow)
    # ------------------------------------------------------------------
    def ask(self, text: str) -> AssistantReply:
        """Publish *text* on the user stream; the planner/coordinator react."""
        marker = len(self.blueprint.store.trace())
        self.blueprint.store.publish_data(
            self.user_stream.stream_id, text, tags=("USER",), producer="user"
        )
        return self._reply_since(marker)

    # ------------------------------------------------------------------
    # Direct entry point (explicit QoS per request)
    # ------------------------------------------------------------------
    def ask_with_qos(self, text: str, qos: QoSSpec) -> AssistantReply:
        """Plan and execute under a per-request budget.

        Every attached agent charges the request budget for this call
        (their contexts are temporarily pointed at it), so the coordinator
        polices the full spend, not just its own transformations.
        """
        marker = len(self.blueprint.store.trace())
        self.blueprint.store.publish_data(
            self.user_stream.stream_id, text, tags=(), producer="user"
        )
        plan = self.blueprint.task_planner.plan(text, self.user_stream.stream_id)
        budget = self.blueprint.budget(qos)
        agents = self.blueprint.agents_in(self.session)
        previous = [(agent, agent.context.budget) for agent in agents if agent.context]
        for agent, _ in previous:
            agent.context.budget = budget
        try:
            self.coordinator.execute_plan(plan, budget=budget)
        finally:
            for agent, old_budget in previous:
                agent.context.budget = old_budget
        reply = self._reply_since(marker)
        reply.budget_summary = budget.summary()
        return reply

    def _reply_since(self, marker: int) -> AssistantReply:
        display_text = ""
        matches: list[dict[str, Any]] = []
        plan_rendering = ""
        for message in self.blueprint.store.trace()[marker:]:
            if not message.is_data:
                continue
            if message.has_tag("DISPLAY"):
                display_text = str(message.payload)
            if message.has_tag("MATCHES") and isinstance(message.payload, list):
                matches = message.payload
                self.session.scope.child("MATCHES").set("latest", matches)
            if message.has_tag("PROFILE") and isinstance(message.payload, dict):
                # Remember the profile in the session's PROFILE scope so
                # follow-up turns can refine it (Section V-E's scoping).
                self.session.scope.child("PROFILE").set("latest", message.payload)
            if message.has_tag("PLAN") and isinstance(message.payload, dict):
                nodes = message.payload.get("nodes", [])
                plan_rendering = " -> ".join(node["agent"] for node in nodes)
        return AssistantReply(
            text=display_text,
            matches=matches,
            plan_rendering=plan_rendering,
            budget_summary=self.budget.summary(),
        )

    # ------------------------------------------------------------------
    # Follow-up turns (session-scoped context, Section V-E)
    # ------------------------------------------------------------------
    def remembered_profile(self) -> dict[str, Any] | None:
        """The profile remembered in the session's PROFILE scope."""
        return self.session.scope.child("PROFILE").get("latest")

    def followup(self, text: str) -> AssistantReply:
        """Refine the previous search with a short follow-up turn.

        "what about Oakland?" reuses the remembered profile, overriding
        only what the follow-up mentions, then re-runs matching.
        """
        profile = self.remembered_profile()
        if profile is None:
            return self.ask(text)  # nothing to refine: treat as a fresh ask
        parsed = self.blueprint.data_planner.parse_request(text)
        refined = dict(profile)
        # LLM extraction with deterministic rule fallback: a small model may
        # miss a field the gazetteer clearly contains.
        title = parsed.get("title") or _detect_title(text)
        location = parsed.get("location") or _detect_location(text)
        if title:
            refined["title"] = title
        if location:
            refined["location"] = location
        criteria = f"{refined.get('title') or 'software engineer'} position"
        if refined.get("location"):
            criteria += f" in {refined['location']}"
        marker = len(self.blueprint.store.trace())
        plan = TaskPlan(f"followup-{marker}", goal=text)
        plan.add_step(
            "match", "JOB_MATCHER",
            {"PROFILE": Binding.const(refined), "CRITERIA": Binding.const(criteria)},
        )
        plan.add_step(
            "present", "PRESENTER", {"MATCHES": Binding.from_node("match", "MATCHES")}
        )
        self.coordinator.execute_plan(plan)
        self.session.scope.child("PROFILE").set("latest", refined)
        return self._reply_since(marker)

    # ------------------------------------------------------------------
    # The profile-form round trip (Section V-B's UI forms)
    # ------------------------------------------------------------------
    def latest_form(self) -> dict[str, Any] | None:
        """The most recent profile form the PROFILER emitted."""
        stream_id = self.session.stream_id("profiler:form")
        if not self.blueprint.store.has_stream(stream_id):
            return None
        payloads = self.blueprint.store.get_stream(stream_id).data_payloads()
        return payloads[-1] if payloads else None

    def confirm_profile(self, values: dict[str, Any]) -> AssistantReply:
        """Submit the profile form with user edits and re-run matching.

        The submission is published as a tagged event on the UI event
        stream; matching then runs on the confirmed profile through the
        coordinator (JOB_MATCHER -> PRESENTER).
        """
        form = self.latest_form()
        if form is None:
            raise SessionError("no profile form to confirm — ask() first")
        events = self.session.ensure_stream("ui_events", creator="user")
        marker = len(self.blueprint.store.trace())
        submission = submit_form(self.blueprint.store, events.stream_id, form, values)
        submitted = submission.payload["values"]
        profile = {
            "title": submitted.get("title"),
            "location": submitted.get("location"),
            "skills": [
                s.strip() for s in str(submitted.get("skills") or "").split(",") if s.strip()
            ],
        }
        criteria = f"{profile['title']} position"
        if profile["location"]:
            criteria += f" in {profile['location']}"
        plan = TaskPlan(f"confirmed-{submission.message_id}", goal=criteria)
        plan.add_step(
            "match", "JOB_MATCHER",
            {"PROFILE": Binding.const(profile), "CRITERIA": Binding.const(criteria)},
        )
        plan.add_step(
            "present", "PRESENTER", {"MATCHES": Binding.from_node("match", "MATCHES")}
        )
        self.coordinator.execute_plan(plan)
        return self._reply_since(marker)

    # ------------------------------------------------------------------
    # Explanations (the §III-A explanation module in the loop)
    # ------------------------------------------------------------------
    def explain_last(self) -> str:
        """Explain why the most recent matches fit the remembered profile."""
        matches = self.session.scope.child("MATCHES").get("latest")
        if not matches:
            return "Nothing to explain yet — search for jobs first."
        profile = self.remembered_profile() or {}
        plan = TaskPlan(f"explain-{len(self.blueprint.store.trace())}", goal="explain matches")
        plan.add_step(
            "explain", "EXPLAINER",
            {"MATCHES": Binding.const(matches), "PROFILE": Binding.const(profile)},
        )
        run = self.coordinator.execute_plan(plan)
        return str(run.final_outputs().get("EXPLANATIONS", ""))

    # ------------------------------------------------------------------
    # Knowledge questions ("what are the required skills?")
    # ------------------------------------------------------------------
    def advise_skills(self, title: str, qos: QoSSpec | None = None) -> list[str]:
        plan = self.blueprint.data_planner.plan_knowledge("skills", title, qos=qos)
        result = self.blueprint.data_planner.execute(plan, budget=self.budget)
        value = result.final()
        return value if isinstance(value, list) else [str(value)]
