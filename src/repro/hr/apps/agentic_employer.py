"""Scenario II / Section VI: the Agentic Employer application.

Employers "sift through applicants to their job posts" conversationally.
This assembles the case-study agent fleet — AGENTIC_EMPLOYER (AE),
INTENT_CLASSIFIER (IC), NL2Q, SQL_EXECUTOR (QE), QUERY_SUMMARIZER (QS),
SUMMARIZER (S), and the TASK_COORDINATOR (TC) — wired purely through
streams and tags, and exposes the two interaction surfaces of Figure 8:

* :meth:`click_job` — a UI event (Figure 9's flow),
* :meth:`say` — a conversation turn (Figure 10's flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...core.coordinator import TaskCoordinator
from ...core.qos import QoSSpec
from ...core.rendering import RendererRegistry
from ...core.runtime import Blueprint
from ...streams import Message
from ..agents import (
    AgenticEmployerAgent,
    ClustererAgent,
    IntentClassifierAgent,
    NL2QAgent,
    QuerySummarizerAgent,
    SQLExecutorAgent,
    SummarizerAgent,
)
from ..data import Enterprise, build_enterprise


@dataclass
class Turn:
    """One conversation turn: who said what, and what was displayed."""

    role: str  # "user" | "ui" | "system"
    content: str


class AgenticEmployerApp:
    """The assembled Section-VI case-study application."""

    def __init__(
        self,
        enterprise: Enterprise | None = None,
        qos: QoSSpec | None = None,
        seed: int = 7,
    ) -> None:
        self.enterprise = enterprise or build_enterprise(seed)
        self.blueprint = Blueprint(data_registry=self.enterprise.registry)
        self.session = self.blueprint.create_session("employer")
        self.budget = self.blueprint.budget(qos)
        database = self.enterprise.database
        # SQL issued on behalf of this conversation lands in the same trace.
        database.observability = self.blueprint.observability
        self.ae = AgenticEmployerAgent(database=database)
        # Three-sample self-consistency voting: the cheap classifier's
        # occasional misroutes (~20%) would otherwise derail whole turns.
        self.ic = IntentClassifierAgent(ensemble=3)
        self.nl2q = NL2QAgent()
        self.qe = SQLExecutorAgent(database)
        self.qs = QuerySummarizerAgent()
        self.summarizer = SummarizerAgent(database)
        self.clusterer = ClustererAgent()
        self.coordinator = TaskCoordinator(data_planner=self.blueprint.data_planner)
        for agent in (
            self.ae, self.ic, self.nl2q, self.qe, self.qs, self.summarizer,
            self.clusterer, self.coordinator,
        ):
            self.blueprint.attach(agent, self.session, self.budget)
        self.conversation_stream = self.session.create_stream(
            "conversation", tags=("CONVERSATION",), creator="user"
        )
        self.ui_stream = self.session.create_stream("ui_events", tags=("UI",), creator="user")
        self.renderers = RendererRegistry()
        self._transcript: list[Turn] = []

    # ------------------------------------------------------------------
    # Interaction surfaces
    # ------------------------------------------------------------------
    def click_job(self, job_id: int) -> str:
        """Figure 9: a UI click selecting a job id."""
        marker = len(self.blueprint.store.trace())
        self._transcript.append(Turn("ui", f"[select job {job_id}]"))
        self.blueprint.store.publish_data(
            self.ui_stream.stream_id,
            {"type": "select_job", "job_id": job_id},
            tags=("UI_EVENT",),
            producer="user",
        )
        return self._collect_display(marker)

    def say(self, text: str) -> str:
        """Figure 10: a conversation turn."""
        marker = len(self.blueprint.store.trace())
        self._transcript.append(Turn("user", text))
        self.blueprint.store.publish_data(
            self.conversation_stream.stream_id, text, tags=("USER",), producer="user"
        )
        return self._collect_display(marker)

    def _collect_display(self, marker: int) -> str:
        displays = [
            self.renderers.render(message.payload)
            for message in self.blueprint.store.trace()[marker:]
            if message.is_data and message.has_tag("DISPLAY")
        ]
        reply = "\n".join(displays) if displays else "(no response)"
        self._transcript.append(Turn("system", reply))
        return reply

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def transcript(self) -> list[Turn]:
        return list(self._transcript)

    def render_conversation(self) -> str:
        """The Figure-8 view: the conversation as readable text."""
        lines = []
        for turn in self._transcript:
            prefix = {"user": "Employer", "ui": "UI", "system": "System"}[turn.role]
            lines.append(f"{prefix}: {turn.content}")
        return "\n".join(lines)

    def messages_since(self, marker: int) -> list[Message]:
        return self.blueprint.store.trace()[marker:]

    @property
    def observability(self):
        """The conversation's tracer + metrics (`repro trace` reads this)."""
        return self.blueprint.observability

    def trace_export(self) -> str:
        """Canonical JSON span-tree + metrics artifact for this session."""
        return self.blueprint.trace_export()
