"""Assembled applications: Career Assistant (Scenario I) and Agentic
Employer (Scenario II / Section VI case study)."""

from .agentic_employer import AgenticEmployerApp, Turn
from .career_assistant import AssistantReply, CareerAssistant

__all__ = ["AgenticEmployerApp", "Turn", "AssistantReply", "CareerAssistant"]
