"""YourJourney's synthetic enterprise data.

Stands in for the proprietary "extensive resume, job posting, and
application data hosted on several databases (document, relational)"
(Section II).  Everything is generated deterministically from a seed:

* relational ``hr`` database — JOBS, COMPANIES, SEEKERS, APPLICATIONS,
* document store — PROFILES (rich seeker documents) and RESUMES,
* graph store — the title taxonomy,
* key-value store — session scratch space.

:func:`build_enterprise` assembles all of it and registers every source in
a :class:`~repro.core.registries.DataRegistry`, which is the "touch point"
the paper's architecture plugs into.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registries import DataRegistry
from ..llm.knowledge import REGION_CITIES, TITLE_SKILLS
from ..storage import (
    Collection,
    ColumnType,
    Database,
    DocumentStore,
    GraphStore,
    KeyValueStore,
    quick_table,
)
from ..storage.schema import Column, TableSchema
from .taxonomy import base_titles, build_title_taxonomy

COMPANY_NAMES = (
    "Acme Analytics", "Blue Harbor", "Cloudline", "DataForge", "Everbright",
    "Fathom Labs", "Gridworks", "Helios Systems", "Inkwell", "Juniper Tech",
    "Kestrel AI", "Lumen Works", "Meridian Soft", "Northbeam", "Orchid Cloud",
)

FIRST_NAMES = (
    "Alex", "Bailey", "Casey", "Devon", "Emery", "Finley", "Gray", "Harper",
    "Indra", "Jordan", "Kai", "Logan", "Morgan", "Noor", "Oakley", "Parker",
    "Quinn", "Riley", "Sasha", "Taylor",
)

LAST_NAMES = (
    "Adams", "Brooks", "Chen", "Diaz", "Evans", "Flores", "Garcia", "Hughes",
    "Ito", "Jones", "Kim", "Lopez", "Meyer", "Nguyen", "Okafor", "Patel",
    "Quinn", "Rivera", "Singh", "Tran",
)

OTHER_CITIES = ("New York", "Seattle", "Austin", "Chicago", "Denver")

#: Salary bands (base, spread) per title family anchor.
SALARY_BANDS = {
    "Data Scientist": (150_000, 30_000),
    "Machine Learning Engineer": (165_000, 30_000),
    "Applied Scientist": (170_000, 25_000),
    "Data Analyst": (110_000, 20_000),
    "Research Scientist": (175_000, 30_000),
    "Software Engineer": (155_000, 30_000),
    "Backend Engineer": (150_000, 25_000),
    "Frontend Engineer": (145_000, 25_000),
    "Full Stack Engineer": (150_000, 25_000),
    "Systems Engineer": (160_000, 25_000),
    "Data Engineer": (150_000, 25_000),
    "Analytics Engineer": (140_000, 20_000),
    "ETL Developer": (125_000, 20_000),
    "Product Manager": (160_000, 30_000),
    "Technical Program Manager": (155_000, 25_000),
    "Product Owner": (140_000, 20_000),
}

APPLICATION_STATUSES = ("submitted", "screened", "interviewing", "offer", "rejected")


@dataclass
class Enterprise:
    """All of YourJourney's data substrates plus the registry mapping them."""

    database: Database
    documents: DocumentStore
    taxonomy: GraphStore
    scratch: KeyValueStore
    registry: DataRegistry

    @property
    def jobs(self) -> list[dict]:
        return self.database.table("jobs").rows()

    @property
    def profiles(self) -> Collection:
        return self.documents.collection("profiles")


def _skills_for(title: str, rng: np.random.Generator) -> list[str]:
    pool = list(TITLE_SKILLS.get(title.lower(), TITLE_SKILLS["software engineer"]))
    count = int(rng.integers(3, len(pool) + 1))
    picked = list(rng.choice(pool, size=count, replace=False))
    return sorted(picked)


def generate_jobs(n: int, rng: np.random.Generator) -> list[dict]:
    """Job posting rows for the relational JOBS table."""
    titles = base_titles()
    bay_cities = list(REGION_CITIES["sf bay area"])
    cities = bay_cities + list(OTHER_CITIES)
    # Bias toward bay-area cities (YourJourney's core market).
    weights = np.array([2.0] * len(bay_cities) + [1.0] * len(OTHER_CITIES))
    weights /= weights.sum()
    jobs = []
    for job_id in range(1, n + 1):
        title = titles[int(rng.integers(len(titles)))]
        if rng.random() < 0.25:
            title = f"Senior {title}"
        base_title = title.removeprefix("Senior ").removeprefix("Staff ")
        base, spread = SALARY_BANDS.get(base_title, (130_000, 20_000))
        if title.startswith("Senior"):
            base = int(base * 1.2)
        salary = int(base + rng.normal(0, spread / 3))
        city = str(rng.choice(cities, p=weights))
        company = COMPANY_NAMES[int(rng.integers(len(COMPANY_NAMES)))]
        skills = _skills_for(base_title, rng)
        jobs.append(
            {
                "id": job_id,
                "title": title,
                "company": company,
                "city": city,
                "salary": salary,
                "remote": bool(rng.random() < 0.3),
                "posted_days_ago": int(rng.integers(0, 60)),
                "skills": ", ".join(skills),
                "description": (
                    f"{company} is hiring a {title} in {city}. "
                    f"Key skills: {', '.join(skills)}."
                ),
            }
        )
    return jobs


def generate_seekers(n: int, rng: np.random.Generator) -> list[dict]:
    """Job seeker rows (relational SEEKERS) and documents share this shape."""
    titles = base_titles()
    bay_cities = list(REGION_CITIES["sf bay area"])
    cities = bay_cities + list(OTHER_CITIES)
    seekers = []
    for seeker_id in range(1, n + 1):
        first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
        last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
        title = titles[int(rng.integers(len(titles)))]
        base_title = title
        skills = _skills_for(base_title, rng)
        years = int(rng.integers(0, 20))
        seekers.append(
            {
                "id": seeker_id,
                "name": f"{first} {last}",
                "title": title,
                "city": str(rng.choice(cities)),
                "years_experience": years,
                "skills": ", ".join(skills),
                "desired_salary": int(100_000 + years * 6_000 + rng.integers(0, 20_000)),
            }
        )
    return seekers


def generate_applications(
    jobs: list[dict], seekers: list[dict], rng: np.random.Generator, rate: float = 0.08
) -> list[dict]:
    """Application rows linking seekers to jobs."""
    applications = []
    app_id = 0
    for job in jobs:
        for seeker in seekers:
            if rng.random() >= rate:
                continue
            app_id += 1
            applications.append(
                {
                    "id": app_id,
                    "job_id": job["id"],
                    "seeker_id": seeker["id"],
                    "status": str(rng.choice(APPLICATION_STATUSES)),
                    "match_score": float(np.round(rng.uniform(0.2, 0.99), 3)),
                    "days_ago": int(rng.integers(0, 30)),
                }
            )
    return applications


def generate_seekers_fast(n: int, rng: np.random.Generator) -> list[dict]:
    """Vectorized seeker generation for cluster-scale populations.

    ``generate_seekers`` draws one ``rng.choice`` permutation per row for
    skills, which dominates runtime past ~10k rows.  This variant draws
    every column as one numpy array and picks skills as a rotated window
    of the title's pool — a different (but equally deterministic)
    distribution, so it is a separate generator rather than a silent
    change to the small-scale data the planner tests snapshot against.
    """
    titles = base_titles()
    bay_cities = list(REGION_CITIES["sf bay area"])
    cities = bay_cities + list(OTHER_CITIES)
    pools = [
        list(TITLE_SKILLS.get(t.lower(), TITLE_SKILLS["software engineer"]))
        for t in titles
    ]
    first_idx = rng.integers(0, len(FIRST_NAMES), size=n)
    last_idx = rng.integers(0, len(LAST_NAMES), size=n)
    title_idx = rng.integers(0, len(titles), size=n)
    city_idx = rng.integers(0, len(cities), size=n)
    years = rng.integers(0, 20, size=n)
    salary_extra = rng.integers(0, 20_000, size=n)
    skill_start = rng.integers(0, 64, size=n)
    skill_extra = rng.integers(0, 8, size=n)
    seekers = []
    for i in range(n):
        pool = pools[title_idx[i]]
        count = 3 + int(skill_extra[i]) % max(1, len(pool) - 2)
        start = int(skill_start[i]) % len(pool)
        window = [pool[(start + j) % len(pool)] for j in range(count)]
        y = int(years[i])
        seekers.append(
            {
                "id": i + 1,
                "name": f"{FIRST_NAMES[first_idx[i]]} {LAST_NAMES[last_idx[i]]}",
                "title": titles[title_idx[i]],
                "city": cities[city_idx[i]],
                "years_experience": y,
                "skills": ", ".join(sorted(set(window))),
                "desired_salary": int(100_000 + y * 6_000 + salary_extra[i]),
            }
        )
    return seekers


def generate_applications_fast(
    n_jobs: int, n_seekers: int, rng: np.random.Generator, per_seeker: float = 2.0
) -> list[dict]:
    """Vectorized applications: ``per_seeker`` random applications each.

    ``generate_applications`` rolls jobs x seekers coin flips — 20M rolls
    at 200 jobs x 100k seekers.  Here the application count is fixed up
    front and every column is one array draw.
    """
    n_apps = int(n_seekers * per_seeker)
    job_ids = rng.integers(1, n_jobs + 1, size=n_apps)
    seeker_ids = rng.integers(1, n_seekers + 1, size=n_apps)
    status_idx = rng.integers(0, len(APPLICATION_STATUSES), size=n_apps)
    scores = np.round(rng.uniform(0.2, 0.99, size=n_apps), 3)
    days = rng.integers(0, 30, size=n_apps)
    return [
        {
            "id": i + 1,
            "job_id": int(job_ids[i]),
            "seeker_id": int(seeker_ids[i]),
            "status": APPLICATION_STATUSES[status_idx[i]],
            "match_score": float(scores[i]),
            "days_ago": int(days[i]),
        }
        for i in range(n_apps)
    ]


def _resume_text(seeker: dict) -> str:
    return (
        f"{seeker['name']} — {seeker['title']} based in {seeker['city']} with "
        f"{seeker['years_experience']} years of experience. "
        f"Skills: {seeker['skills']}. Seeking roles around "
        f"${seeker['desired_salary']:,}."
    )


def _jobs_schema() -> TableSchema:
    return TableSchema(
        "jobs",
        (
            Column("id", ColumnType.INT, primary_key=True),
            Column("title", ColumnType.TEXT, description="job title"),
            Column("company", ColumnType.TEXT),
            Column("city", ColumnType.TEXT, description="job location city"),
            Column("salary", ColumnType.INT, description="annual salary in USD"),
            Column("remote", ColumnType.BOOL),
            Column("posted_days_ago", ColumnType.INT),
            Column("skills", ColumnType.TEXT, description="comma-separated required skills"),
            Column("description", ColumnType.TEXT),
        ),
        description="Open job postings",
    )


def _seekers_schema() -> TableSchema:
    return TableSchema(
        "seekers",
        (
            Column("id", ColumnType.INT, primary_key=True),
            Column("name", ColumnType.TEXT),
            Column("title", ColumnType.TEXT, description="current job title"),
            Column("city", ColumnType.TEXT),
            Column("years_experience", ColumnType.INT),
            Column("skills", ColumnType.TEXT, description="comma-separated skills"),
            Column("desired_salary", ColumnType.INT),
        ),
        description="Registered job seekers",
    )


def _applications_schema() -> TableSchema:
    return TableSchema(
        "applications",
        (
            Column("id", ColumnType.INT, primary_key=True),
            Column("job_id", ColumnType.INT),
            Column("seeker_id", ColumnType.INT),
            Column("status", ColumnType.TEXT),
            Column("match_score", ColumnType.FLOAT),
            Column("days_ago", ColumnType.INT),
        ),
        description="Applications of seekers to jobs",
    )


def _register_sources(
    registry: DataRegistry,
    database,
    profiles,
    resumes,
    taxonomy,
    scratch,
    embed_resumes: bool,
) -> None:
    registry.register_table(
        database, "jobs", name="JOBS",
        description="Open job postings with title, company, city, salary, and required skills",
        keywords=("jobs", "positions", "openings", "postings"),
    )
    registry.register_table(
        database, "companies", name="COMPANIES",
        description="Employer companies and their headcounts",
        keywords=("companies", "employers"),
    )
    registry.register_table(
        database, "seekers", name="SEEKERS",
        description="Registered job seekers with titles, skills, and experience",
        keywords=("seekers", "candidates", "applicants", "people"),
    )
    registry.register_table(
        database, "applications", name="APPLICATIONS",
        description="Applications linking seekers to job postings with status and match score",
        keywords=("applications", "applicants", "pipeline"),
    )
    registry.register_collection(
        profiles, name="PROFILES",
        description="Job seeker profile documents with skills and preferences",
        fields=("name", "title", "city", "skills", "years_experience"),
        keywords=("profiles", "seekers"),
    )
    registry.register_collection(
        resumes, name="RESUMES",
        description="Raw resume texts of job seekers",
        fields=("seeker_id", "text"),
        keywords=("resumes", "cv"),
        # Retrieval backbone for RAG plans; embedding every resume is
        # O(corpus), so cluster-scale builds skip it.
        embed_field="text" if embed_resumes else None,
    )
    registry.register_graph(
        taxonomy, name="TITLE_TAXONOMY",
        description="Job title taxonomy graph with related titles and seniority hierarchy",
        keywords=("titles", "taxonomy", "hierarchy", "roles"),
    )
    registry.register_keyvalue(
        scratch, name="SCRATCH", description="Session scratch key-value store"
    )
    registry.register_llm(
        "mega-xl",
        name="LLM:WORLD",
        description="General world knowledge (regions, cities, common sense) served by an LLM",
        knowledge_domains=("world knowledge", "geography", "general"),
    )


def build_enterprise(
    seed: int = 7,
    n_jobs: int = 200,
    n_seekers: int = 150,
    application_rate: float = 0.05,
) -> Enterprise:
    """Generate the full enterprise and register every source."""
    rng = np.random.default_rng(seed)
    jobs = generate_jobs(n_jobs, rng)
    seekers = generate_seekers(n_seekers, rng)
    applications = generate_applications(jobs, seekers, rng, application_rate)

    database = Database("hr", description="YourJourney HR relational database")
    jobs_table = database.create_table(_jobs_schema())
    jobs_table.insert_many(jobs)
    jobs_table.create_index("title", kind="hash")
    jobs_table.create_index("city", kind="hash")
    jobs_table.create_index("salary", kind="sorted")

    quick_table(
        database,
        "companies",
        [
            Column("name", ColumnType.TEXT, primary_key=True),
            Column("headcount", ColumnType.INT),
        ],
        [
            {"name": name, "headcount": int(rng.integers(50, 5000))}
            for name in COMPANY_NAMES
        ],
        description="Employer companies",
    )

    seekers_table = database.create_table(_seekers_schema())
    seekers_table.insert_many(seekers)
    seekers_table.create_index("title", kind="hash")

    applications_table = database.create_table(_applications_schema())
    applications_table.insert_many(applications)
    applications_table.create_index("job_id", kind="hash")
    applications_table.create_index("seeker_id", kind="hash")

    documents = DocumentStore("hr-docs", description="YourJourney document databases")
    profiles = documents.create_collection("profiles", "Job seeker profile documents")
    for seeker in seekers:
        profiles.insert({**seeker, "seeker_id": seeker["id"]}, doc_id=f"profile-{seeker['id']}")
    profiles.create_index("title")
    resumes = documents.create_collection("resumes", "Raw resume texts")
    for seeker in seekers:
        resumes.insert(
            {"seeker_id": seeker["id"], "text": _resume_text(seeker)},
            doc_id=f"resume-{seeker['id']}",
        )

    taxonomy = build_title_taxonomy()
    scratch = KeyValueStore("scratch", description="Session scratch space")

    registry = DataRegistry()
    _register_sources(
        registry, database, profiles, resumes, taxonomy, scratch, embed_resumes=True
    )
    return Enterprise(
        database=database,
        documents=documents,
        taxonomy=taxonomy,
        scratch=scratch,
        registry=registry,
    )


def build_sharded_enterprise(
    seed: int = 7,
    n_jobs: int = 200,
    n_seekers: int = 100_000,
    applications_per_seeker: float = 2.0,
    n_shards: int = 8,
    n_replicas: int = 3,
    clock=None,
    **cluster_options,
) -> Enterprise:
    """The enterprise on the sharded substrate, at cluster scale.

    Same shape as :func:`build_enterprise` but every store is replicated
    and partitioned: the relational database and document store shard by
    ``city`` (the query axis the planner prunes on), resumes and scratch
    shard by key.  Seekers and applications come from the vectorized
    generators, so 100k+ seekers load in seconds.  Resume embeddings are
    skipped past 2 000 seekers (embedding is O(corpus)).
    """
    from ..clock import SimClock
    from ..storage import (
        ClusteredDocumentStore,
        ClusteredKeyValueStore,
        ShardedDatabase,
    )

    rng = np.random.default_rng(seed)
    clock = clock or SimClock()
    jobs = generate_jobs(n_jobs, rng)
    seekers = generate_seekers_fast(n_seekers, rng)
    applications = generate_applications_fast(
        n_jobs, n_seekers, rng, applications_per_seeker
    )

    database = ShardedDatabase(
        "hr",
        n_shards=n_shards,
        n_replicas=n_replicas,
        clock=clock,
        seed=seed,
        description="YourJourney HR relational database (sharded)",
        **cluster_options,
    )
    jobs_table = database.create_table(_jobs_schema(), partition_column="city")
    jobs_table.insert_many(jobs)
    jobs_table.create_index("title", kind="hash")
    jobs_table.create_index("city", kind="hash")
    jobs_table.create_index("salary", kind="sorted")

    companies = database.create_table(
        TableSchema.build(
            "companies",
            [
                Column("name", ColumnType.TEXT, primary_key=True),
                Column("headcount", ColumnType.INT),
            ],
            description="Employer companies",
        )
    )
    companies.insert_many(
        {"name": name, "headcount": int(rng.integers(50, 5000))}
        for name in COMPANY_NAMES
    )

    seekers_table = database.create_table(_seekers_schema(), partition_column="city")
    seekers_table.insert_many(seekers)
    seekers_table.create_index("title", kind="hash")

    applications_table = database.create_table(
        _applications_schema(), partition_column="job_id"
    )
    applications_table.insert_many(applications)
    applications_table.create_index("job_id", kind="hash")
    applications_table.create_index("seeker_id", kind="hash")

    documents = ClusteredDocumentStore(
        "hr-docs",
        n_shards=n_shards,
        n_replicas=n_replicas,
        clock=clock,
        seed=seed,
        description="YourJourney document databases (sharded)",
        **cluster_options,
    )
    profiles = documents.create_collection(
        "profiles", "Job seeker profile documents", partition_field="city"
    )
    profiles.insert_many(
        ({**seeker, "seeker_id": seeker["id"]} for seeker in seekers),
        doc_ids=[f"profile-{seeker['id']}" for seeker in seekers],
    )
    profiles.create_index("title")
    resumes = documents.create_collection("resumes", "Raw resume texts")
    resumes.insert_many(
        (
            {"seeker_id": seeker["id"], "text": _resume_text(seeker)}
            for seeker in seekers
        ),
        doc_ids=[f"resume-{seeker['id']}" for seeker in seekers],
    )

    taxonomy = build_title_taxonomy()
    scratch = ClusteredKeyValueStore(
        "scratch",
        n_shards=n_shards,
        n_replicas=n_replicas,
        clock=clock,
        seed=seed,
        description="Session scratch space (sharded)",
        **cluster_options,
    )

    registry = DataRegistry()
    _register_sources(
        registry,
        database,
        profiles,
        resumes,
        taxonomy,
        scratch,
        embed_resumes=n_seekers <= 2000,
    )
    return Enterprise(
        database=database,
        documents=documents,
        taxonomy=taxonomy,
        scratch=scratch,
        registry=registry,
    )
