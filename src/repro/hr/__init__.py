"""The YourJourney HR domain: data, models, agents, and applications."""

from .clustering import Cluster, cluster_seekers
from .data import (
    Enterprise,
    build_enterprise,
    build_sharded_enterprise,
    generate_applications_fast,
    generate_seekers_fast,
)
from .matching import JobMatcher, MatchResult
from .nlq import NLQTranslator, Translation
from .skills import SkillExtractor, SkillMention
from .taxonomy import all_titles, base_titles, build_title_taxonomy

__all__ = [
    "Cluster",
    "cluster_seekers",
    "Enterprise",
    "build_enterprise",
    "build_sharded_enterprise",
    "generate_applications_fast",
    "generate_seekers_fast",
    "JobMatcher",
    "MatchResult",
    "NLQTranslator",
    "Translation",
    "SkillExtractor",
    "SkillMention",
    "all_titles",
    "base_titles",
    "build_title_taxonomy",
]
