"""The enterprise job-title taxonomy graph.

The data planner's running example needs a graph database "which contains
a title taxonomy" to expand "data scientist" into related titles
(Section V-G).  This module builds that graph: title nodes related across
families and specialized within them.
"""

from __future__ import annotations

from ..storage import GraphStore

#: family -> (canonical member titles).  The first member is the family
#: anchor; all members are mutually ``related``.
TITLE_FAMILIES: dict[str, tuple[str, ...]] = {
    "data science": (
        "Data Scientist",
        "Machine Learning Engineer",
        "Applied Scientist",
        "Data Analyst",
        "Research Scientist",
    ),
    "software": (
        "Software Engineer",
        "Backend Engineer",
        "Frontend Engineer",
        "Full Stack Engineer",
        "Systems Engineer",
    ),
    "data engineering": (
        "Data Engineer",
        "Analytics Engineer",
        "ETL Developer",
    ),
    "product": (
        "Product Manager",
        "Technical Program Manager",
        "Product Owner",
    ),
}

#: seniority prefixes generate ``specializes`` children of each base title.
SENIORITY_LEVELS = ("Senior", "Staff")


def node_id_for(title: str) -> str:
    return "title:" + title.lower().replace(" ", "_")


def build_title_taxonomy(name: str = "title_taxonomy") -> GraphStore:
    """Build the taxonomy: family anchors, related edges, seniority tree."""
    graph = GraphStore(
        name,
        description="Job title taxonomy: families of related titles and seniority specializations",
    )
    for family, titles in TITLE_FAMILIES.items():
        for title in titles:
            graph.add_node(node_id_for(title), "title", name=title, family=family)
        anchor = titles[0]
        for title in titles[1:]:
            graph.add_edge(node_id_for(anchor), node_id_for(title), "related")
    for titles in TITLE_FAMILIES.values():
        for title in titles:
            for level in SENIORITY_LEVELS:
                specialized = f"{level} {title}"
                graph.add_node(
                    node_id_for(specialized),
                    "title",
                    name=specialized,
                    family=_family_of(title),
                    seniority=level.lower(),
                )
                graph.add_edge(node_id_for(specialized), node_id_for(title), "specializes")
    return graph


def all_titles() -> list[str]:
    """Every title in the taxonomy (base + seniority variants)."""
    titles: list[str] = []
    for family_titles in TITLE_FAMILIES.values():
        for title in family_titles:
            titles.append(title)
            titles.extend(f"{level} {title}" for level in SENIORITY_LEVELS)
    return titles


def base_titles() -> list[str]:
    return [title for titles in TITLE_FAMILIES.values() for title in titles]


def _family_of(title: str) -> str:
    for family, titles in TITLE_FAMILIES.items():
        if title in titles:
            return family
    return "other"
