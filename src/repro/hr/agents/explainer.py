"""EXPLAINER: the explanation module as an agent (Section III-A).

"Explanation modules aim to provide detailed insights and enhance
transparency."  Given ranked matches and the profile they were ranked
for, the agent produces a per-match natural-language explanation via the
LLM's MATCH_EXPLAIN task, grounded in the matcher's own component scores.
"""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...llm import prompts


class ExplainerAgent(Agent):
    name = "EXPLAINER"
    description = "Explains why each matched job fits the seeker's profile"
    inputs = (
        Parameter("MATCHES", "matches", "ranked job matches"),
        Parameter("PROFILE", "profile", "the seeker profile", required=False),
    )
    outputs = (Parameter("EXPLANATIONS", "text", "one explanation per match"),)
    default_model = "hr-ft"

    def __init__(self, max_explained: int = 3, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._max_explained = max_explained

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        matches = inputs["MATCHES"] or []
        profile = inputs.get("PROFILE") or {}
        seeker_title = str(profile.get("title") or "candidate")
        seeker_skills = {
            str(s).lower() for s in (profile.get("skills") or [])
        }
        lines = []
        for match in matches[: self._max_explained]:
            job_skills = {
                part.strip().lower()
                for part in str(match.get("skills", "")).split(",")
                if part.strip()
            }
            shared = sorted(seeker_skills & job_skills) or sorted(job_skills)[:2]
            location_fit = (
                "remote-friendly" if match.get("remote")
                else f"located in {match.get('city')}"
            )
            response = self.complete(
                prompts.match_explain(
                    seeker_title, str(match.get("title")), shared, location_fit
                )
            )
            lines.append(f"- {match.get('title')} at {match.get('company')}: {response.text}")
        if not lines:
            return {"EXPLANATIONS": "No matches to explain."}
        return {"EXPLANATIONS": "\n".join(lines)}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("DISPLAY",)
