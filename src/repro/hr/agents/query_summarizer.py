"""QUERY_SUMMARIZER (QS): explains query results (Figure 10, final step).

Listens for ``ROWS`` messages and, "utilizing LLMs, explains the query
results" as display text.
"""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...llm import prompts


class QuerySummarizerAgent(Agent):
    name = "QUERY_SUMMARIZER"
    description = "Explains database query results in natural language"
    inputs = (Parameter("ROWS", "rows", "query result rows"),)
    outputs = (Parameter("SUMMARY", "text", "a natural-language explanation"),)
    listen_tags = ("ROWS",)
    gate_mode = "any"
    default_model = "mega-m"

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        rows = inputs["ROWS"] or []
        if not rows:
            return {"SUMMARY": "The query returned no results."}
        preview = rows[:10]
        response = self.complete(prompts.describe_rows(preview, intro="Query results"))
        header = f"The query returned {len(rows)} row(s)."
        return {"SUMMARY": f"{header} {response.text}"}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("DISPLAY",)
