"""SQL executor (QE): runs tagged SQL against the enterprise database.

"A message tagged SQL can trigger SQLExecutor agent to execute the query
in the message" (Section V-B) — the canonical decentralized activation.
"""

from __future__ import annotations

from typing import Any, Mapping

from ...core.agent import Agent
from ...core.params import Parameter
from ...storage import Database


class SQLExecutorAgent(Agent):
    name = "SQL_EXECUTOR"
    description = "Executes SQL queries against the HR relational database"
    inputs = (Parameter("SQL", "sql", "a SQL payload with sql text and parameters"),)
    outputs = (Parameter("ROWS", "rows", "query result rows"),)
    listen_tags = ("SQL",)
    gate_mode = "any"

    def __init__(self, database: Database, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._database = database

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        payload = inputs["SQL"]
        if isinstance(payload, Mapping):
            sql = str(payload["sql"])
            parameters = dict(payload.get("parameters", {}))
        else:
            sql = str(payload)
            parameters = {}
        result = self._database.execute(sql, parameters)
        context = self._require_context()
        context.charge(
            source=f"{self.name}/{self._database.name}",
            cost=1e-6,
            latency=0.001 + 1e-5 * max(len(result.rows), 1),
        )
        return {"ROWS": result.rows}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("ROWS",)
