"""SUMMARIZER (S): summarizes a selected job and its applicant pipeline.

In the Figure-9 flow, selecting a job id in the UI leads the coordinator
to "execute Summarizer agent with the given input", which "invokes its
plan to generate a summary".
"""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...llm import prompts
from ...storage import Database


class SummarizerAgent(Agent):
    name = "SUMMARIZER"
    description = "Summarizes a job posting and its applicant pipeline"
    inputs = (Parameter("JOB_ID", "number", "the selected job id"),)
    outputs = (Parameter("SUMMARY", "text", "a readable summary"),)
    default_model = "mega-m"

    def __init__(self, database: Database, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._database = database

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        job_id = int(inputs["JOB_ID"])
        jobs = self._database.query(
            "SELECT * FROM jobs WHERE id = :job_id", {"job_id": job_id}
        )
        if not jobs:
            return {"SUMMARY": f"No job with id {job_id}."}
        job = jobs[0]
        pipeline = self._database.query(
            "SELECT status, COUNT(*) AS n FROM applications "
            "WHERE job_id = :job_id GROUP BY status ORDER BY n DESC",
            {"job_id": job_id},
        )
        pipeline_text = ", ".join(f"{row['status']}: {row['n']}" for row in pipeline)
        source = (
            f"Job {job_id}: {job['title']} at {job['company']} in {job['city']}, "
            f"${job['salary']:,}. Required skills: {job['skills']}. "
            f"Applications by status — {pipeline_text or 'none yet'}."
        )
        response = self.complete(prompts.summarize(source))
        return {"SUMMARY": f"{source}\n{response.text}"}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("DISPLAY",)
