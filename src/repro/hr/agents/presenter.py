"""PRESENTER: renders matched jobs for the end user (Figure 6's last step)."""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter


class PresenterAgent(Agent):
    name = "PRESENTER"
    description = "Presents matched jobs to the end user as a readable list"
    inputs = (Parameter("MATCHES", "matches", "ranked job matches"),)
    outputs = (Parameter("PRESENTATION", "text", "rendered results for display"),)

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        matches = inputs["MATCHES"] or []
        if not matches:
            return {"PRESENTATION": "No matching jobs found — try broadening your criteria."}
        lines = [f"Top {len(matches)} matches for you:"]
        for rank, match in enumerate(matches, start=1):
            lines.append(
                f"{rank}. {match.get('title')} at {match.get('company')} "
                f"({match.get('city')}) — ${match.get('salary'):,} "
                f"[score {match.get('score', 0):.2f}]"
            )
        return {"PRESENTATION": "\n".join(lines)}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("DISPLAY",)
