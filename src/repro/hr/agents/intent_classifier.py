"""INTENT_CLASSIFIER (IC): routes conversation turns (Figure 10, step 2).

"An Intent Classifier agent automatically responds by emitting identified
intent into the stream."  The agent listens to user text and emits
``{"intent", "text"}`` tagged INTENT so the application driver can route.

With ``ensemble > 1`` it samples the model several times (each call's
prompt varies so the simulated model's degradation draws differ) and takes
a majority vote — the self-consistency pattern, which buys a cheap model
part of a strong model's accuracy (bench A6).
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...llm import prompts

#: Intents the Agentic Employer conversation understands.
INTENT_LABELS = ("open_query", "summarize", "list_edit", "rank", "cluster", "greeting")


class IntentClassifierAgent(Agent):
    name = "INTENT_CLASSIFIER"
    description = "Classifies the intent of user conversation turns"
    inputs = (Parameter("TEXT", "text", "a user utterance"),)
    outputs = (Parameter("INTENT", "intent", "identified intent with the original text"),)
    listen_tags = ("USER",)
    gate_mode = "any"
    default_model = "mega-s"

    def __init__(
        self,
        labels: tuple[str, ...] = INTENT_LABELS,
        ensemble: int = 1,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if ensemble < 1:
            raise ValueError(f"ensemble must be >= 1: {ensemble}")
        self._labels = labels
        self._ensemble = ensemble

    def classify(self, text: str) -> str:
        """Classify *text*, majority-voting across ensemble samples."""
        votes: Counter[str] = Counter()
        for sample in range(self._ensemble):
            # A varying suffix decorrelates the simulated model's errors,
            # as temperature sampling would for a hosted model.
            suffix = "" if sample == 0 else f"\nSAMPLE: {sample}"
            response = self.complete(prompts.classify(text, self._labels) + suffix)
            vote = str(response.structured or self._labels[0])
            votes[vote] += 1
        ranked = sorted(votes.items(), key=lambda item: (-item[1], item[0]))
        return ranked[0][0]

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        text = str(inputs["TEXT"])
        return {"INTENT": {"intent": self.classify(text), "text": text}}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("INTENT",)
