"""PROFILER: builds a job-seeker profile from criteria text (Section V-B).

"There can be an agent PROFILER that presents a user profile UI form to
collect information from the user."  The agent extracts a structured
profile (title, location, skills) from free-text criteria using the LLM
extractor plus the skill-extraction model, and also emits the declarative
UI form spec a front end would render to confirm/complete the profile.
"""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...llm import prompts
from ..skills import SkillExtractor


class ProfilerAgent(Agent):
    name = "PROFILER"
    description = (
        "Builds a job seeker profile (title, location, skills) from criteria "
        "text and presents a profile UI form to collect information"
    )
    inputs = (Parameter("CRITERIA", "text", "free-text job search criteria"),)
    outputs = (
        Parameter("PROFILE", "profile", "structured job seeker profile"),
        Parameter("FORM", "ui_form", "declarative profile form spec", required=False),
    )
    default_model = "hr-ft"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._skills = SkillExtractor()

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        criteria = str(inputs["CRITERIA"])
        response = self.complete(prompts.extract(criteria, ("title", "location")))
        extracted = response.structured if isinstance(response.structured, dict) else {}
        title = extracted.get("title")
        mentioned = self._skills.skills_of(criteria)
        expected = self._skills.expected_skills(title) if title else []
        profile = {
            "title": title,
            "location": extracted.get("location"),
            "skills": sorted(set(mentioned) | set(expected)),
            "criteria": criteria,
        }
        form = self._form_for(profile)
        return {"PROFILE": profile, "FORM": form}

    @staticmethod
    def _form_for(profile: dict[str, Any]) -> dict[str, Any]:
        """Declarative UI form spec (rendered by UI renderers, Section V-B)."""
        return {
            "type": "form",
            "title": "Confirm your profile",
            "fields": [
                {"name": "title", "label": "Desired title", "value": profile["title"]},
                {"name": "location", "label": "Location", "value": profile["location"]},
                {
                    "name": "skills",
                    "label": "Skills",
                    "value": ", ".join(profile["skills"]),
                },
            ],
            "submit_tag": "PROFILE_CONFIRMED",
        }

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("UI",) if param == "FORM" else ()
