"""JOB_MATCHER: the enterprise's predictive matching model as an agent.

Inputs mirror the paper's registry example — JOB SEEKER DATA (PROFILE),
JOBS, "and optionally CRITERIA for additional conditions"; output MATCHES
(Section V-C).  When JOBS is not supplied by the plan, the agent invokes
the **data planner** to find and query job sources — the paper's
"agents themselves invoking data planner (using APIs)" path — which is
where the decomposed Figure-7 plan runs.
"""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...core.planners.data_planner import DataPlanner
from ..matching import JobMatcher


class JobMatcherAgent(Agent):
    name = "JOB_MATCHER"
    description = (
        "Assesses match quality between a job seeker profile and jobs, "
        "ranking job postings for the seeker"
    )
    inputs = (
        Parameter("PROFILE", "profile", "job seeker data"),
        Parameter("JOBS", "jobs", "candidate job rows", required=False),
        Parameter("CRITERIA", "text", "additional conditions", required=False),
    )
    outputs = (Parameter("MATCHES", "matches", "ranked job matches"),)

    def __init__(
        self,
        matcher: JobMatcher,
        data_planner: DataPlanner | None = None,
        top_k: int = 5,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self._matcher = matcher
        self._data_planner = data_planner
        self._top_k = top_k

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        profile = inputs["PROFILE"] or {}
        jobs = inputs.get("JOBS")
        if jobs is None:
            jobs = self._fetch_jobs(profile, inputs.get("CRITERIA"))
        results = self._matcher.match(profile, jobs, top_k=self._top_k)
        matches = [
            {**result.job, "score": result.score, "reasons": list(result.reasons)}
            for result in results
        ]
        return {"MATCHES": matches}

    def _fetch_jobs(self, profile: dict[str, Any], criteria: Any) -> list[dict[str, Any]]:
        """Query job sources through the data planner (Figure 7 in action)."""
        if self._data_planner is None:
            return []
        context = self._require_context()
        query = str(criteria) if criteria else self._query_from_profile(profile)
        result = self._data_planner.run_job_query(
            query, budget=context.budget, principal=self.name
        )
        rows = result.final()
        return rows if isinstance(rows, list) else []

    @staticmethod
    def _query_from_profile(profile: dict[str, Any]) -> str:
        title = profile.get("title") or "software engineer"
        location = profile.get("location")
        if location:
            return f"{title} position in {location}"
        return f"{title} position"
