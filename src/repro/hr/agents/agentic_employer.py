"""AGENTIC_EMPLOYER (AE): the application driver (Section VI).

"The main driver of the application logic is an Agentic Employer agent,
which is the first receiver of any user interaction, whether it came in
the form of events from the UI/forms, or through text entered into the
conversation."

Two flows from the case study:

* **UI flow (Figure 9)** — a UI event selecting a job id arrives tagged
  ``UI_EVENT``; AE emits the job id into a stream and a one-node plan
  invoking SUMMARIZER, which the task coordinator unrolls.
* **Conversation flow (Figure 10)** — the intent classifier tags the turn;
  for an open-ended query AE emits the text into a new stream tagged
  ``NLQ``, and the NL2Q -> SQL_EXECUTOR -> QUERY_SUMMARIZER chain fires
  purely through stream-tag configuration.
"""

from __future__ import annotations

import re
from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...core.plan.task_plan import Binding, TaskPlan
from ...ids import IdGenerator
from ...storage import Database


class AgenticEmployerAgent(Agent):
    name = "AGENTIC_EMPLOYER"
    description = (
        "Drives the Agentic Employer application: routes UI events and "
        "conversation intents to agent workflows"
    )
    inputs = (
        Parameter("EVENT", "ui_event", "a UI event object", required=False),
        Parameter("INTENT", "intent", "a classified conversation turn", required=False),
    )
    outputs = (
        Parameter("JOB_ID", "number", "the currently selected job", required=False),
        Parameter("NLQ", "text", "a query forwarded for NL2Q", required=False),
        Parameter("PLAN", "plan", "a task plan for the coordinator", required=False),
        Parameter("RESPONSE", "text", "a direct conversational response", required=False),
    )
    listen_tags = ("UI_EVENT", "INTENT")
    tag_to_place = {"UI_EVENT": "EVENT", "INTENT": "INTENT"}
    gate_mode = "any"

    def __init__(self, database: Database | None = None, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._ids = IdGenerator()
        self._database = database

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any] | None:
        event = inputs.get("EVENT")
        intent = inputs.get("INTENT")
        if event is not None:
            self._handle_event(event)
            return None
        if intent is not None:
            self._handle_intent(intent)
            return None
        return None

    # ------------------------------------------------------------------
    # Figure 9: UI-initiated flow
    # ------------------------------------------------------------------
    def _handle_event(self, event: dict[str, Any]) -> None:
        if event.get("type") != "select_job":
            return
        job_id = int(event["job_id"])
        # Remember the selection: later turns ("cluster the applicants")
        # scope to this job.
        self._require_context().session.scope.child("SELECTED_JOB").set("id", job_id)
        # Step 2 (Figure 9): emit the job id into a stream, then a plan
        # invoking the Summarizer with that input.
        self.emit("JOB_ID", job_id, tags=("JOB_ID",))
        plan = TaskPlan(self._ids.next("ae-plan"), goal=f"summarize job {job_id}")
        plan.add_step(
            "summarize",
            "SUMMARIZER",
            {"JOB_ID": Binding.const(job_id)},
            description=f"summarize job {job_id} for the employer",
        )
        self.emit("PLAN", plan.to_payload(), tags=("PLAN",))

    # ------------------------------------------------------------------
    # Figure 10: conversation-initiated flow
    # ------------------------------------------------------------------
    def _handle_intent(self, intent: dict[str, Any]) -> None:
        kind = intent.get("intent")
        text = str(intent.get("text", ""))
        if kind in {"open_query", "rank"}:
            # Step 3 (Figure 10): emit the query into a new stream tagged
            # NLQ; NL2Q picks it up via stream-tag configuration.
            self.emit("NLQ", text, tags=("NLQ",))
            return
        if kind == "summarize":
            self.emit("NLQ", text, tags=("NLQ",))
            return
        if kind == "list_edit":
            self._handle_list_edit(text)
            return
        if kind == "cluster":
            self._handle_cluster()
            return
        if kind == "greeting":
            self.emit(
                "RESPONSE",
                "Hello! Ask me about your applicants, or select a job to see a summary.",
                tags=("DISPLAY",),
            )
            return
        self.emit(
            "RESPONSE",
            f"I am not sure how to help with that yet ({kind}).",
            tags=("DISPLAY",),
        )

    # ------------------------------------------------------------------
    # Clustering: "rank and cluster candidates" (Section II-B)
    # ------------------------------------------------------------------
    def _handle_cluster(self) -> None:
        """Plan a CLUSTERER run over the relevant candidates.

        Scoped to the selected job's applicants when a job was clicked,
        otherwise over the whole seeker pool.
        """
        if self._database is None:
            self.emit("RESPONSE", "Clustering is unavailable without the database.",
                      tags=("DISPLAY",))
            return
        selected = self._require_context().session.scope.child("SELECTED_JOB").get("id")
        if selected is not None:
            seekers = self._database.query(
                "SELECT s.id, s.name, s.title, s.skills FROM applications a "
                "JOIN seekers s ON a.seeker_id = s.id WHERE a.job_id = :job LIMIT 60",
                {"job": selected},
            )
            goal = f"cluster applicants of job {selected}"
        else:
            seekers = self._database.query(
                "SELECT id, name, title, skills FROM seekers LIMIT 60"
            )
            goal = "cluster all candidates"
        plan = TaskPlan(self._ids.next("ae-plan"), goal=goal)
        plan.add_step(
            "cluster", "CLUSTERER", {"SEEKERS": Binding.const(seekers)},
            description=goal,
        )
        self.emit("PLAN", plan.to_payload(), tags=("PLAN",))

    # ------------------------------------------------------------------
    # Interactive shortlist: "create lists interactively by add and
    # remove applicants through queries" (Section II-B)
    # ------------------------------------------------------------------
    def _shortlist(self) -> list[dict[str, Any]]:
        scope = self._require_context().session.scope.child("SHORTLIST")
        return scope.get("members", [])

    def _save_shortlist(self, members: list[dict[str, Any]]) -> None:
        scope = self._require_context().session.scope.child("SHORTLIST")
        scope.set("members", members)

    def _render_shortlist(self, members: list[dict[str, Any]]) -> str:
        if not members:
            return "Your shortlist is empty."
        lines = [f"Shortlist ({len(members)}):"]
        lines.extend(
            f"{i}. {m['name']} — {m['title']} ({m['city']})"
            for i, m in enumerate(members, start=1)
        )
        return "\n".join(lines)

    def _handle_list_edit(self, text: str) -> None:
        lowered = text.lower()
        members = list(self._shortlist())
        if match := re.search(r"\badd\s+(.+?)(?:\s+(?:to|into|onto|on)\b.*)?$", lowered):
            candidate = self._find_seeker(match.group(1))
            if candidate is None:
                reply = f"I could not find a candidate matching {match.group(1)!r}."
            elif any(m["id"] == candidate["id"] for m in members):
                reply = f"{candidate['name']} is already on the shortlist."
            else:
                members.append(candidate)
                self._save_shortlist(members)
                reply = f"Added {candidate['name']}.\n" + self._render_shortlist(members)
        elif match := re.search(r"\bremove\s+(.+?)(?:\s+(?:from|off)\b.*)?$", lowered):
            needle = match.group(1)
            remaining = [m for m in members if needle not in m["name"].lower()]
            if len(remaining) == len(members):
                reply = f"Nobody matching {needle!r} is on the shortlist."
            else:
                self._save_shortlist(remaining)
                reply = self._render_shortlist(remaining)
        else:
            reply = self._render_shortlist(members)
        self.emit("RESPONSE", reply, tags=("DISPLAY",))

    def _find_seeker(self, name_fragment: str) -> dict[str, Any] | None:
        if self._database is None:
            return None
        rows = self._database.query(
            "SELECT id, name, title, city FROM seekers "
            "WHERE name LIKE :frag ORDER BY id LIMIT 1",
            {"frag": f"%{name_fragment}%"},
        )
        return rows[0] if rows else None
