"""CLUSTERER: groups candidates by skill profile (Scenario II)."""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ..clustering import cluster_seekers


class ClustererAgent(Agent):
    name = "CLUSTERER"
    description = "Clusters candidates into skill-profile groups for employers"
    inputs = (
        Parameter("SEEKERS", "rows", "candidate rows to cluster"),
        Parameter("K", "number", "number of clusters", required=False, default=3),
    )
    outputs = (
        Parameter("CLUSTERS", "json", "the clusters with labels and members"),
        Parameter("SUMMARY", "text", "a readable clustering summary"),
    )

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        seekers = inputs["SEEKERS"] or []
        k = int(inputs.get("K") or 3)
        clusters = cluster_seekers(seekers, k=k)
        context = self._require_context()
        context.charge(
            source=f"{self.name}/kmeans",
            cost=1e-6,
            latency=0.002 + 1e-5 * len(seekers),
        )
        if not clusters:
            return {"CLUSTERS": [], "SUMMARY": "No candidates to cluster."}
        payload = [
            {
                "label": c.label,
                "size": c.size,
                "members": list(c.members),
                "member_ids": list(c.member_ids),
            }
            for c in clusters
        ]
        lines = [f"{len(clusters)} candidate groups:"]
        lines.extend(c.render() for c in clusters)
        return {"CLUSTERS": payload, "SUMMARY": "\n".join(lines)}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("DISPLAY",) if param == "SUMMARY" else ()
