"""The YourJourney agent fleet."""

from .agentic_employer import AgenticEmployerAgent
from .clusterer import ClustererAgent
from .explainer import ExplainerAgent
from .intent_classifier import INTENT_LABELS, IntentClassifierAgent
from .job_matcher import JobMatcherAgent
from .nl2q_agent import NL2QAgent
from .presenter import PresenterAgent
from .profiler import ProfilerAgent
from .query_summarizer import QuerySummarizerAgent
from .sql_executor import SQLExecutorAgent
from .summarizer import SummarizerAgent

__all__ = [
    "AgenticEmployerAgent",
    "ClustererAgent",
    "ExplainerAgent",
    "INTENT_LABELS",
    "IntentClassifierAgent",
    "JobMatcherAgent",
    "NL2QAgent",
    "PresenterAgent",
    "ProfilerAgent",
    "QuerySummarizerAgent",
    "SQLExecutorAgent",
    "SummarizerAgent",
]
