"""NL2Q: natural language to database query (Figure 10, step 3).

Listens for messages tagged ``NLQ``, identifies "a suitable database
query, in this case SQL", and emits the translation tagged ``SQL`` —
which triggers the SQL executor through stream-tag configuration alone.
"""

from __future__ import annotations

from typing import Any

from ...core.agent import Agent
from ...core.params import Parameter
from ...llm import prompts
from ..nlq import NLQTranslator


class NL2QAgent(Agent):
    name = "NL2Q"
    description = "Translates natural language questions into SQL over the HR database"
    inputs = (Parameter("QUERY", "text", "a natural-language question"),)
    outputs = (Parameter("SQL", "sql", "the translated SQL query payload"),)
    listen_tags = ("NLQ",)
    gate_mode = "any"
    default_model = "hr-ft"

    def __init__(self, translator: NLQTranslator | None = None, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._translator = translator or NLQTranslator()

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        query = str(inputs["QUERY"])
        # The production NL2Q model is an LLM; meter its usage even though
        # the reference translation here is rule-based and deterministic.
        self.complete(prompts.generate(f"Translate to SQL: {query}"))
        translation = self._translator.translate(query)
        return {"SQL": translation.as_payload()}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("SQL",)
