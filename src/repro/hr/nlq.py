"""Natural-language-to-query translation for the HR schema.

The NL2Q agent (Figure 10) turns conversational employer questions into
SQL over the ``hr`` database.  The translator is schema-aware and
rule-based — deterministic and inspectable — while the calling agent still
meters an LLM charge, mirroring a production NL2Q model's economics.

Supported shapes (examples):
    "how many applicants have python skills"      -> COUNT over seekers
    "average salary of data scientist jobs"       -> AVG over jobs
    "show applications for job 12"                -> filtered applications
    "top candidates by experience"                -> ranked seekers
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..errors import PlanningError
from ..llm.knowledge import REGION_CITIES
from .data import APPLICATION_STATUSES, OTHER_CITIES
from .skills import SkillExtractor
from .taxonomy import base_titles

_ALL_CITIES = tuple(REGION_CITIES["sf bay area"]) + OTHER_CITIES

_TABLE_HINTS = (
    ("applications", ("application", "applications", "applied")),
    ("seekers", ("applicant", "applicants", "candidate", "candidates", "seeker", "seekers", "people")),
    ("jobs", ("job", "jobs", "position", "positions", "opening", "openings", "posting", "postings", "role", "roles")),
)

_NUMBER_RE = re.compile(r"(\d[\d,]*)\s*(k)?", re.IGNORECASE)


@dataclass(frozen=True)
class Translation:
    """A translated query plus how it was derived."""

    sql: str
    parameters: dict[str, Any]
    table: str
    explanation: str

    def as_payload(self) -> dict[str, Any]:
        return {
            "sql": self.sql,
            "parameters": self.parameters,
            "table": self.table,
            "explanation": self.explanation,
        }


class NLQTranslator:
    """Rule-based NL -> SQL over the YourJourney HR schema."""

    def __init__(self) -> None:
        self._skills = SkillExtractor()

    def translate(self, text: str) -> Translation:
        lowered = text.lower()
        join = self._detect_join(lowered)
        if join is not None:
            return join
        table = self._detect_table(lowered)
        conditions: list[str] = []
        parameters: dict[str, Any] = {}
        notes: list[str] = []
        counter = 0

        def bind(value: Any) -> str:
            nonlocal counter
            name = f"p{counter}"
            counter += 1
            parameters[name] = value
            return f":{name}"

        # -- filters ----------------------------------------------------
        if table in {"jobs", "seekers"}:
            for skill in self._skills.skills_of(text):
                conditions.append(f"skills LIKE {bind('%' + skill + '%')}")
                notes.append(f"skill '{skill}'")
            city = self._detect_city(text)
            if city is not None:
                conditions.append(f"city = {bind(city)}")
                notes.append(f"city '{city}'")
            title = self._detect_title(lowered)
            if title is not None:
                conditions.append(f"title LIKE {bind('%' + title + '%')}")
                notes.append(f"title '{title}'")
            salary = self._detect_salary(lowered)
            if salary is not None:
                op, amount = salary
                column = "salary" if table == "jobs" else "desired_salary"
                conditions.append(f"{column} {op} {bind(amount)}")
                notes.append(f"salary {op} {amount}")
        if table == "jobs" and ("remote" in lowered):
            conditions.append("remote = TRUE")
            notes.append("remote only")
        if table == "applications":
            job_id = self._detect_job_id(lowered)
            if job_id is not None:
                conditions.append(f"job_id = {bind(job_id)}")
                notes.append(f"job {job_id}")
            for status in APPLICATION_STATUSES:
                if status in lowered:
                    conditions.append(f"status = {bind(status)}")
                    notes.append(f"status '{status}'")
                    break

        # -- projection / aggregation ------------------------------------
        order_clause = ""
        limit_clause = " LIMIT 20"
        if re.search(r"\bhow many\b|\bcount\b|\bnumber of\b", lowered):
            select = "SELECT COUNT(*) AS n"
            limit_clause = ""
            notes.insert(0, "count")
        elif match := re.search(r"\baverage\b|\bavg\b|\bmean\b", lowered):
            column = self._aggregate_column(lowered, table)
            select = f"SELECT AVG({column}) AS avg_{column}"
            limit_clause = ""
            notes.insert(0, f"average {column}")
            del match
        else:
            select = "SELECT *"
            if re.search(r"\btop\b|\bbest\b|\brank\b", lowered):
                order_column = {
                    "applications": "match_score",
                    "seekers": "years_experience",
                    "jobs": "salary",
                }[table]
                order_clause = f" ORDER BY {order_column} DESC"
                limit_clause = " LIMIT 10"
                notes.insert(0, f"top by {order_column}")

        sql = f"{select} FROM {table}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += order_clause + limit_clause
        explanation = f"table={table}" + (f"; {', '.join(notes)}" if notes else "")
        return Translation(sql=sql, parameters=parameters, table=table, explanation=explanation)

    # ------------------------------------------------------------------
    # Join shapes: "who applied to <job filter>" spans two tables
    # ------------------------------------------------------------------
    def _detect_join(self, lowered: str) -> Translation | None:
        """Applicants-for-jobs questions need applications ⋈ jobs (and the
        seeker names need seekers too)."""
        mentions_people = any(
            hint in lowered
            for hint in ("applicant", "candidate", "who applied", "applied to", "applicants for")
        )
        mentions_jobs = any(
            hint in lowered for hint in ("job", "position", "posting", "role")
        )
        if not (mentions_people and mentions_jobs):
            return None
        conditions: list[str] = []
        parameters: dict[str, Any] = {}
        notes: list[str] = ["join seekers-applications-jobs"]
        counter = 0

        def bind(value: Any) -> str:
            nonlocal counter
            name = f"p{counter}"
            counter += 1
            parameters[name] = value
            return f":{name}"

        title = self._detect_title(lowered)
        if title is not None:
            conditions.append(f"j.title LIKE {bind('%' + title + '%')}")
            notes.append(f"job title '{title}'")
        city = self._detect_city(lowered)
        if city is not None:
            conditions.append(f"j.city = {bind(city)}")
            notes.append(f"job city '{city}'")
        for status in APPLICATION_STATUSES:
            if status in lowered:
                conditions.append(f"a.status = {bind(status)}")
                notes.append(f"status '{status}'")
                break
        job_id = self._detect_job_id(lowered)
        if job_id is not None:
            conditions.append(f"a.job_id = {bind(job_id)}")
            notes.append(f"job {job_id}")
        if len(notes) == 1:
            return None  # no job-side constraint: the single-table path wins
        if re.search(r"\bhow many\b|\bcount\b|\bnumber of\b", lowered):
            select = "SELECT COUNT(*) AS n"
            limit = ""
            notes.insert(0, "count")
        else:
            select = "SELECT s.name, s.title, j.title AS job_title, j.company, a.status"
            limit = " LIMIT 20"
        sql = (
            f"{select} FROM applications a "
            "JOIN jobs j ON a.job_id = j.id "
            "JOIN seekers s ON a.seeker_id = s.id"
        )
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += limit
        return Translation(
            sql=sql,
            parameters=parameters,
            table="applications",
            explanation="; ".join(notes),
        )

    # ------------------------------------------------------------------
    # Detectors
    # ------------------------------------------------------------------
    @staticmethod
    def _detect_table(lowered: str) -> str:
        for table, hints in _TABLE_HINTS:
            if any(hint in lowered for hint in hints):
                return table
        raise PlanningError(f"cannot identify a target table in: {lowered!r}")

    @staticmethod
    def _detect_city(text: str) -> str | None:
        lowered = text.lower()
        for city in _ALL_CITIES:
            if city.lower() in lowered:
                return city
        return None

    @staticmethod
    def _detect_title(lowered: str) -> str | None:
        for title in base_titles():
            if title.lower() in lowered:
                return title
        return None

    @staticmethod
    def _detect_salary(lowered: str) -> tuple[str, int] | None:
        comparators = (
            (">", ("over", "above", "more than", "at least", "greater than")),
            ("<", ("under", "below", "less than", "at most")),
        )
        for op, words in comparators:
            for word in words:
                position = lowered.find(word)
                if position < 0:
                    continue
                match = _NUMBER_RE.search(lowered, position)
                if match is None:
                    continue
                amount = int(match.group(1).replace(",", ""))
                if match.group(2):
                    amount *= 1000
                return op, amount
        return None

    @staticmethod
    def _detect_job_id(lowered: str) -> int | None:
        match = re.search(r"\bjob\s+(?:id\s+)?(\d+)", lowered)
        return int(match.group(1)) if match else None

    @staticmethod
    def _aggregate_column(lowered: str, table: str) -> str:
        if "experience" in lowered:
            return "years_experience"
        if "score" in lowered:
            return "match_score"
        if table == "seekers" and "salary" in lowered:
            return "desired_salary"
        if table == "applications":
            return "match_score"
        return "salary"
