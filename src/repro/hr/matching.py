"""Job-candidate matching: YourJourney's predictive matching model.

A deterministic scoring model combining skill overlap, title proximity in
the taxonomy, and location fit — the proprietary "job matching algorithm"
that the agent registry maps as the JOB_MATCHER agent (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..storage import GraphStore
from .taxonomy import node_id_for

WEIGHT_SKILLS = 0.6
WEIGHT_TITLE = 0.25
WEIGHT_LOCATION = 0.15


@dataclass(frozen=True)
class MatchResult:
    """One scored job for a profile."""

    job: Mapping[str, Any]
    score: float
    reasons: tuple[str, ...]

    def render(self) -> str:
        job = self.job
        return (
            f"{job.get('title')} at {job.get('company')} ({job.get('city')}) — "
            f"score {self.score:.2f} [{'; '.join(self.reasons)}]"
        )


def _skill_set(value: Any) -> set[str]:
    if value is None:
        return set()
    if isinstance(value, str):
        return {part.strip().lower() for part in value.split(",") if part.strip()}
    return {str(part).strip().lower() for part in value}


class JobMatcher:
    """Scores jobs against a seeker profile."""

    def __init__(self, taxonomy: GraphStore | None = None) -> None:
        self._taxonomy = taxonomy

    # ------------------------------------------------------------------
    # Component scores
    # ------------------------------------------------------------------
    def skill_score(self, profile_skills: Any, job_skills: Any) -> float:
        seeker = _skill_set(profile_skills)
        job = _skill_set(job_skills)
        if not job:
            return 0.5  # no requirements stated: neutral
        if not seeker:
            return 0.0
        return len(seeker & job) / len(job)

    def title_score(self, profile_title: str | None, job_title: str | None) -> float:
        if not profile_title or not job_title:
            return 0.5
        base_profile = _strip_seniority(profile_title)
        base_job = _strip_seniority(job_title)
        if base_profile.lower() == base_job.lower():
            return 1.0
        if self._taxonomy is not None:
            if self._related_in_taxonomy(base_profile, base_job):
                return 0.7
        shared = set(base_profile.lower().split()) & set(base_job.lower().split())
        return 0.4 if shared else 0.1

    def _related_in_taxonomy(self, title_a: str, title_b: str) -> bool:
        graph = self._taxonomy
        node_a, node_b = node_id_for(title_a), node_id_for(title_b)
        if not (graph.has_node(node_a) and graph.has_node(node_b)):
            return False
        neighborhood = {
            node.node_id for node in graph.neighbors(node_a, "related", direction="both")
        }
        return node_b in neighborhood

    def location_score(self, profile_city: str | None, job: Mapping[str, Any]) -> float:
        if job.get("remote"):
            return 1.0
        if not profile_city or not job.get("city"):
            return 0.5
        return 1.0 if profile_city.lower() == str(job["city"]).lower() else 0.2

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, profile: Mapping[str, Any], job: Mapping[str, Any]) -> MatchResult:
        skills = self.skill_score(profile.get("skills"), job.get("skills"))
        title = self.title_score(profile.get("title"), job.get("title"))
        location = self.location_score(profile.get("city"), job)
        total = WEIGHT_SKILLS * skills + WEIGHT_TITLE * title + WEIGHT_LOCATION * location
        reasons = (
            f"skills {skills:.2f}",
            f"title {title:.2f}",
            f"location {location:.2f}",
        )
        return MatchResult(job=dict(job), score=round(total, 4), reasons=reasons)

    def match(
        self,
        profile: Mapping[str, Any],
        jobs: Iterable[Mapping[str, Any]],
        top_k: int = 5,
        min_score: float = 0.0,
    ) -> list[MatchResult]:
        """Top-*k* jobs for *profile*, best first (deterministic ties)."""
        scored = [self.score(profile, job) for job in jobs]
        scored = [result for result in scored if result.score >= min_score]
        scored.sort(key=lambda r: (-r.score, str(r.job.get("id"))))
        return scored[:top_k]


def _strip_seniority(title: str) -> str:
    stripped = title
    for prefix in ("Senior ", "Staff ", "senior ", "staff "):
        stripped = stripped.removeprefix(prefix)
    return stripped
