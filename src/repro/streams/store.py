"""The streams database: creation, publication, subscription, dispatch.

The blueprint deploys a "streams database [that] manages the flow of data
and control messages among components" (Section IV).  :class:`StreamStore`
is that database: it owns every stream, assigns message ids and timestamps,
persists the global trace, and delivers messages to subscribers.

Delivery is synchronous and depth-first: when a subscriber's callback
publishes further messages (the normal case — agents react to messages by
emitting more), those are delivered immediately before the publish returns.
This gives coordinators read-your-writes semantics over agent outputs; a
dispatch-depth guard catches accidental agent loops.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, TYPE_CHECKING

from ..clock import SimClock
from ..errors import StreamError
from ..ids import IdGenerator
from .message import Message, MessageKind, control_payload
from .stream import Stream
from .subscription import Subscription, SubscriberCallback, TagRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability import Observability


class StreamStore:
    """In-process streams database with pub/sub and full observability."""

    #: Characters that make a stream pattern a glob rather than a literal.
    _GLOB_CHARS = frozenset("*?[")

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._ids = IdGenerator()
        self._streams: dict[str, Stream] = {}
        self._subscriptions: dict[str, Subscription] = {}
        # Dispatch index: rather than testing every subscription against
        # every message (O(subscriptions) per publish), candidates come
        # from an exact-stream table (literal patterns), a tag table
        # (glob patterns with include tags — they can only match messages
        # carrying one of those tags), and a catch-all side list (glob
        # patterns with no include tags).  ``wants()`` still runs on each
        # candidate, so the index only has to be complete, not precise.
        self._exact_subs: dict[str, dict[str, Subscription]] = {}
        self._tagged_wildcards: dict[str, dict[str, Subscription]] = {}
        self._catchall_wildcards: dict[str, Subscription] = {}
        # Global insertion sequence, so merged candidates are delivered
        # in the same order a linear scan of ``_subscriptions`` would.
        self._sub_order: dict[str, int] = {}
        self._sub_counter = 0
        self._trace: list[Message] = []
        # Incremental trace indexes, appended at publish time so
        # ``trace_by_tag`` / ``trace_by_producer`` never re-scan the log.
        self._trace_by_tag: dict[str, list[Message]] = {}
        self._trace_by_producer: dict[str, list[Message]] = {}
        self._lock = threading.RLock()
        self._depth = 0
        self.max_dispatch_depth = 500
        # Plain tallies, pulled into a metrics snapshot by the collector
        # below: publishing is the hottest path in the runtime, so it
        # must not pay a registry update per message.
        self._message_counts: dict[str, int] = {}
        self._delivery_count = 0
        self._observability: "Observability | None" = None

    @property
    def observability(self) -> "Observability | None":
        """Optional metrics sink (settable; the Blueprint wires its own).

        Reports ``stream.messages`` per kind and ``stream.deliveries`` —
        the fan-out factor the A2 scaling study cares about.
        """
        return self._observability

    @observability.setter
    def observability(self, value: "Observability | None") -> None:
        if value is self._observability:
            return
        self._observability = value
        if value is not None:
            value.metrics.register_collector(self._collect_metrics)

    def _collect_metrics(self, sink) -> None:
        for kind, count in self._message_counts.items():
            sink.inc("stream.messages", float(count), kind=kind)
        if self._delivery_count:
            sink.inc("stream.deliveries", float(self._delivery_count))

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------
    def create_stream(
        self,
        stream_id: str | None = None,
        tags: Iterable[str] = (),
        creator: str = "",
    ) -> Stream:
        """Create and register a new stream.

        Raises:
            StreamError: if *stream_id* already exists.
        """
        with self._lock:
            if stream_id is None:
                stream_id = self._ids.next("stream")
            if stream_id in self._streams:
                raise StreamError(f"stream already exists: {stream_id!r}")
            stream = Stream(
                stream_id,
                tags=frozenset(tags),
                creator=creator,
                created_at=self.clock.now(),
            )
            self._streams[stream_id] = stream
            return stream

    def get_stream(self, stream_id: str) -> Stream:
        with self._lock:
            stream = self._streams.get(stream_id)
        if stream is None:
            raise StreamError(f"unknown stream: {stream_id!r}")
        return stream

    def has_stream(self, stream_id: str) -> bool:
        with self._lock:
            return stream_id in self._streams

    def ensure_stream(self, stream_id: str, creator: str = "") -> Stream:
        """Return the stream, creating it if it does not exist yet."""
        with self._lock:
            if stream_id in self._streams:
                return self._streams[stream_id]
            return self.create_stream(stream_id, creator=creator)

    def list_streams(self) -> list[str]:
        with self._lock:
            return sorted(self._streams)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        stream_id: str,
        payload: Any,
        kind: MessageKind = MessageKind.DATA,
        tags: Iterable[str] = (),
        producer: str = "",
        metadata: Mapping[str, Any] | None = None,
    ) -> Message:
        """Append a message to *stream_id* and dispatch it to subscribers."""
        stream = self.get_stream(stream_id)
        message = Message(
            message_id=self._ids.next("msg"),
            stream_id=stream_id,
            kind=kind,
            payload=payload,
            tags=frozenset(tags),
            producer=producer,
            timestamp=self.clock.now(),
            metadata=dict(metadata or {}),
        )
        self._persist(message)
        stream.append(message)
        with self._lock:
            self._trace.append(message)
            for tag in message.tags:
                self._trace_by_tag.setdefault(tag, []).append(message)
            self._trace_by_producer.setdefault(message.producer, []).append(message)
            counts = self._message_counts
            counts[kind.value] = counts.get(kind.value, 0) + 1
        self._dispatch(message)
        return message

    def _persist(self, message: Message) -> None:
        """Durability hook, called before the message touches any in-memory
        structure.  The base store is purely in-memory (no-op); the
        partitioned store overrides this to replicate the message — and by
        raising refuses the publish outright when no quorum can store it,
        leaving trace, stream, and subscribers untouched."""

    def publish_data(self, stream_id: str, payload: Any, **kwargs: Any) -> Message:
        return self.publish(stream_id, payload, kind=MessageKind.DATA, **kwargs)

    def publish_control(
        self, stream_id: str, instruction: str, producer: str = "", tags: Iterable[str] = (), **fields: Any
    ) -> Message:
        """Publish a control message carrying *instruction* and *fields*."""
        return self.publish(
            stream_id,
            control_payload(instruction, **fields),
            kind=MessageKind.CONTROL,
            tags=tags,
            producer=producer,
        )

    def close_stream(self, stream_id: str, producer: str = "") -> Message:
        """Append an end-of-stream marker, closing the stream."""
        return self.publish(stream_id, None, kind=MessageKind.EOS, producer=producer)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(
        self,
        subscriber: str,
        callback: SubscriberCallback,
        stream_pattern: str = "*",
        include_tags: Iterable[str] = (),
        exclude_tags: Iterable[str] = (),
        control_only: bool = False,
        data_only: bool = False,
    ) -> Subscription:
        """Register *callback* for matching messages; returns the subscription."""
        subscription = Subscription(
            subscription_id=self._ids.next("sub"),
            subscriber=subscriber,
            callback=callback,
            stream_pattern=stream_pattern,
            tag_rule=TagRule.of(include_tags, exclude_tags),
            control_only=control_only,
            data_only=data_only,
        )
        with self._lock:
            self._subscriptions[subscription.subscription_id] = subscription
            self._index_subscription(subscription)
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is not None:
                self._unindex_subscription(subscription)
        if subscription is not None:
            subscription.active = False

    def subscriptions(self) -> list[Subscription]:
        with self._lock:
            return list(self._subscriptions.values())

    def _index_subscription(self, subscription: Subscription) -> None:
        """File *subscription* under the index bucket(s) it can match from.

        Caller holds the lock.
        """
        sub_id = subscription.subscription_id
        self._sub_counter += 1
        self._sub_order[sub_id] = self._sub_counter
        pattern = subscription.stream_pattern
        if not self._GLOB_CHARS.intersection(pattern):
            self._exact_subs.setdefault(pattern, {})[sub_id] = subscription
        elif subscription.tag_rule.include:
            for tag in subscription.tag_rule.include:
                self._tagged_wildcards.setdefault(tag, {})[sub_id] = subscription
        else:
            self._catchall_wildcards[sub_id] = subscription

    def _unindex_subscription(self, subscription: Subscription) -> None:
        """Remove *subscription* from every index bucket.  Caller holds the lock."""
        sub_id = subscription.subscription_id
        self._sub_order.pop(sub_id, None)
        pattern = subscription.stream_pattern
        if not self._GLOB_CHARS.intersection(pattern):
            bucket = self._exact_subs.get(pattern)
            if bucket is not None:
                bucket.pop(sub_id, None)
                if not bucket:
                    del self._exact_subs[pattern]
        elif subscription.tag_rule.include:
            for tag in subscription.tag_rule.include:
                bucket = self._tagged_wildcards.get(tag)
                if bucket is not None:
                    bucket.pop(sub_id, None)
                    if not bucket:
                        del self._tagged_wildcards[tag]
        else:
            self._catchall_wildcards.pop(sub_id, None)

    def _candidates(self, message: Message) -> list[Subscription]:
        """Every subscription that *could* want the message, in insertion order.

        Caller holds the lock.  Complete by construction: a literal
        pattern only matches its own stream; a glob with include tags
        only matches messages carrying one of them; everything else is
        in the catch-all list.  May over-approximate (``wants()`` is the
        final word), never under-approximate.
        """
        exact = self._exact_subs.get(message.stream_id)
        tagged_buckets = []
        if message.tags:
            for tag in message.tags:
                tagged = self._tagged_wildcards.get(tag)
                if tagged:
                    tagged_buckets.append(tagged)
        catchall = self._catchall_wildcards
        # Single-bucket fast paths: each bucket dict is insertion-ordered
        # (ids are never re-indexed), so its values are already in
        # ``_sub_order`` order — no merge, no sort.
        if not tagged_buckets:
            if exact and not catchall:
                return list(exact.values())
            if not exact:
                return list(catchall.values())
        merged: dict[str, Subscription] = {}
        if exact:
            merged.update(exact)
        for tagged in tagged_buckets:
            merged.update(tagged)
        merged.update(catchall)
        if len(merged) > 1:
            order = self._sub_order
            return sorted(merged.values(), key=lambda s: order[s.subscription_id])
        return list(merged.values())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, message: Message) -> None:
        """Depth-first synchronous delivery.

        Messages published from inside a subscriber callback are delivered
        immediately (nested), so a coordinator that publishes an
        EXECUTE_AGENT instruction observes the agent's outputs as soon as
        the publish returns.  A depth guard catches runaway agent loops.

        Callbacks may mutate the subscription table: the candidate set is
        snapshotted under the lock before any callback runs, so a
        subscription added mid-dispatch only sees *later* messages, and
        ``active`` is re-checked per delivery so one unsubscribed (by
        itself or a peer) mid-dispatch is skipped, not called on a dead
        subscription.
        """
        with self._lock:
            self._depth += 1
            depth = self._depth
            targets = [s for s in self._candidates(message) if s.wants(message)]
        delivered = 0
        try:
            if depth > self.max_dispatch_depth:
                raise StreamError(
                    f"dispatch depth exceeded {self.max_dispatch_depth} "
                    f"(agent loop?) on stream {message.stream_id!r}"
                )
            for subscription in targets:
                if not subscription.active:
                    continue
                delivered += 1
                subscription.callback(message)
        finally:
            # One locked add per dispatch instead of one per delivery; a
            # raising callback still counts its own delivery, as before.
            with self._lock:
                self._delivery_count += delivered
                self._depth -= 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def trace(self) -> list[Message]:
        """The global, append-ordered log of every message ever published."""
        with self._lock:
            return list(self._trace)

    def trace_by_tag(self, tag: str) -> list[Message]:
        """Messages carrying *tag*, in publish order (indexed, no scan)."""
        with self._lock:
            return list(self._trace_by_tag.get(tag, ()))

    def trace_by_producer(self, producer: str) -> list[Message]:
        """Messages from *producer*, in publish order (indexed, no scan)."""
        with self._lock:
            return list(self._trace_by_producer.get(producer, ()))

    def stats(self) -> dict[str, Any]:
        """Counts for dashboards and benches."""
        with self._lock:
            messages = list(self._trace)
            n_streams = len(self._streams)
            n_subs = len(self._subscriptions)
        kinds: dict[str, int] = {}
        for message in messages:
            kinds[message.kind.value] = kinds.get(message.kind.value, 0) + 1
        return {
            "streams": n_streams,
            "subscriptions": n_subs,
            "messages": len(messages),
            "by_kind": kinds,
        }
