"""Stream persistence: export and replay of the streams database.

The blueprint's streams are durable ("represent and persist the flow [of]
data and control", Section III-B).  This module serializes a store's full
state to JSON-able records and rebuilds a store from them — replayed
stores reproduce every stream and message for post-hoc analysis without
re-triggering subscribers.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..clock import SimClock
from .message import Message, MessageKind
from .store import StreamStore


def export_store(store: StreamStore) -> dict[str, Any]:
    """All streams and messages as one JSON-able mapping."""
    streams = []
    for stream_id in store.list_streams():
        stream = store.get_stream(stream_id)
        streams.append(
            {
                "stream_id": stream.stream_id,
                "tags": sorted(stream.tags),
                "creator": stream.creator,
                "created_at": stream.created_at,
            }
        )
    messages = [
        {
            "message_id": message.message_id,
            "stream_id": message.stream_id,
            "kind": message.kind.value,
            "payload": message.payload,
            "tags": sorted(message.tags),
            "producer": message.producer,
            "timestamp": message.timestamp,
            "metadata": dict(message.metadata),
        }
        for message in store.trace()
    ]
    return {"clock": store.clock.now(), "streams": streams, "messages": messages}


def export_json(store: StreamStore) -> str:
    """The export as a JSON string (for files and logs)."""
    return json.dumps(export_store(store), default=str)


def replay_store(snapshot: Mapping[str, Any]) -> StreamStore:
    """Rebuild a store from an export.

    Messages are appended directly to their streams and the trace —
    subscribers are *not* re-triggered; a replayed store is an archive,
    not a live re-execution.
    """
    store = StreamStore(SimClock(float(snapshot.get("clock", 0.0))))
    for spec in snapshot.get("streams", []):
        stream = store.create_stream(
            spec["stream_id"], tags=spec.get("tags", ()), creator=spec.get("creator", "")
        )
        stream.created_at = spec.get("created_at", 0.0)
    for record in snapshot.get("messages", []):
        message = Message(
            message_id=record["message_id"],
            stream_id=record["stream_id"],
            kind=MessageKind(record["kind"]),
            payload=record["payload"],
            tags=frozenset(record.get("tags", ())),
            producer=record.get("producer", ""),
            timestamp=record.get("timestamp", 0.0),
            metadata=dict(record.get("metadata", {})),
        )
        store.ensure_stream(message.stream_id).append(message)
        store._trace.append(message)  # archive path: bypass live dispatch
    return store


def replay_json(text: str) -> StreamStore:
    return replay_store(json.loads(text))
