"""Streams: the blueprint's central orchestration substrate.

Public API:

* :class:`Message`, :class:`MessageKind`, :class:`Instruction` — message model.
* :class:`Stream`, :class:`StreamReader` — append-only logs and cursors.
* :class:`StreamStore` — the streams database (publish / subscribe / trace).
* :class:`TagRule`, :class:`Subscription` — selective consumption.
* :class:`FlowTrace`, :class:`FlowStep` — observability over flows.
"""

from .flowgraph import build_flow_graph, component_graph, render_component_graph
from .partitioned import PartitionedStreamStore, export_partitioned, replayed_messages
from .persistence import export_json, export_store, replay_json, replay_store
from .textstream import UtteranceAssembler, collect_text, stream_words
from .message import Instruction, Message, MessageKind, control_payload
from .monitor import FlowStep, FlowTrace
from .store import StreamStore
from .stream import Stream, StreamReader
from .subscription import Subscription, TagRule

__all__ = [
    "PartitionedStreamStore",
    "export_partitioned",
    "replayed_messages",
    "build_flow_graph",
    "component_graph",
    "render_component_graph",
    "export_json",
    "export_store",
    "replay_json",
    "replay_store",
    "UtteranceAssembler",
    "collect_text",
    "stream_words",
    "Instruction",
    "Message",
    "MessageKind",
    "control_payload",
    "FlowStep",
    "FlowTrace",
    "StreamStore",
    "Stream",
    "StreamReader",
    "Subscription",
    "TagRule",
]
