"""Flow graphs: the architecture's communication structure as a graph.

Builds a directed graph over the trace — producers, streams, and the
subscribers that consumed from them — for observability tooling (who talks
to whom over which streams).  Uses :mod:`networkx` so standard graph
analyses (reachability, centrality, cycles) apply directly.
"""

from __future__ import annotations

import networkx as nx

from .store import StreamStore


def build_flow_graph(store: StreamStore) -> "nx.DiGraph":
    """A graph with component and stream nodes from the store's history.

    Edges: ``component -> stream`` for each produced message and
    ``stream -> component`` for each subscription that matched at least
    one message on it.  Edge weights count messages.
    """
    graph = nx.DiGraph()
    messages = store.trace()
    for message in messages:
        producer = message.producer or "?"
        graph.add_node(producer, kind="component")
        graph.add_node(message.stream_id, kind="stream")
        if graph.has_edge(producer, message.stream_id):
            graph[producer][message.stream_id]["weight"] += 1
        else:
            graph.add_edge(producer, message.stream_id, weight=1)
    for subscription in store.subscriptions():
        for message in messages:
            if not subscription.wants(message):
                continue
            graph.add_node(subscription.subscriber, kind="component")
            if graph.has_edge(message.stream_id, subscription.subscriber):
                graph[message.stream_id][subscription.subscriber]["weight"] += 1
            else:
                graph.add_edge(message.stream_id, subscription.subscriber, weight=1)
    return graph


def component_graph(store: StreamStore) -> "nx.DiGraph":
    """Collapse streams away: direct component-to-component message flow."""
    full = build_flow_graph(store)
    collapsed = nx.DiGraph()
    for node, data in full.nodes(data=True):
        if data.get("kind") == "component":
            collapsed.add_node(node)
    for stream, data in full.nodes(data=True):
        if data.get("kind") != "stream":
            continue
        producers = list(full.predecessors(stream))
        consumers = list(full.successors(stream))
        for producer in producers:
            for consumer in consumers:
                if producer == consumer:
                    continue
                weight = min(
                    full[producer][stream]["weight"], full[stream][consumer]["weight"]
                )
                if collapsed.has_edge(producer, consumer):
                    collapsed[producer][consumer]["weight"] += weight
                else:
                    collapsed.add_edge(producer, consumer, weight=weight)
    return collapsed


def render_component_graph(store: StreamStore) -> str:
    """Text adjacency view of the component graph (for consoles/logs)."""
    graph = component_graph(store)
    lines = []
    for node in sorted(graph.nodes):
        targets = sorted(graph.successors(node))
        if targets:
            rendered = ", ".join(
                f"{t} (x{graph[node][t]['weight']})" for t in targets
            )
            lines.append(f"{node} -> {rendered}")
    return "\n".join(lines)
