"""Messages: the unit of data and control exchanged over streams.

The paper (Section V-A) models everything flowing between components as
messages on streams.  Two kinds exist:

* **data** messages carry payloads between components (user text, rows,
  summaries, plans, ...),
* **control** messages carry instructions (e.g. *execute the SQL agent with
  this input*), letting coordinators drive agents without point-to-point
  coupling.

Messages are immutable once created; tags enable selective consumption
(an agent may listen only to messages tagged ``SQL``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class MessageKind(enum.Enum):
    """The role a message plays on a stream."""

    DATA = "data"
    CONTROL = "control"
    EOS = "eos"  # end-of-stream marker


#: Well-known control instructions used by the coordinator and agents.
class Instruction:
    """Names of control instructions exchanged between components."""

    EXECUTE_AGENT = "EXECUTE_AGENT"
    ABORT_PLAN = "ABORT_PLAN"
    REPLAN = "REPLAN"
    ENTER_SESSION = "ENTER_SESSION"
    EXIT_SESSION = "EXIT_SESSION"
    CREATE_STREAM = "CREATE_STREAM"
    BUDGET_VIOLATION = "BUDGET_VIOLATION"


@dataclass(frozen=True)
class Message:
    """An immutable message on a stream.

    Attributes:
        message_id: unique identifier (``msg-000001``).
        stream_id: the stream this message was appended to.
        kind: data, control, or end-of-stream.
        payload: arbitrary content; for control messages a mapping with an
            ``instruction`` key.
        tags: labels enabling selective consumption (e.g. ``{"SQL"}``).
        producer: name of the component that emitted the message.
        timestamp: simulated time of emission.
        metadata: free-form annotations (session id, plan node id, ...).
    """

    message_id: str
    stream_id: str
    kind: MessageKind
    payload: Any
    tags: frozenset[str] = frozenset()
    producer: str = ""
    timestamp: float = 0.0
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def is_data(self) -> bool:
        return self.kind is MessageKind.DATA

    @property
    def is_control(self) -> bool:
        return self.kind is MessageKind.CONTROL

    @property
    def is_eos(self) -> bool:
        return self.kind is MessageKind.EOS

    def instruction(self) -> str | None:
        """Return the control instruction name, or None for data messages."""
        if self.kind is not MessageKind.CONTROL:
            return None
        if isinstance(self.payload, Mapping):
            value = self.payload.get("instruction")
            return str(value) if value is not None else None
        return None

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def describe(self) -> str:
        """One-line human-readable rendering, used by traces and examples."""
        tag_text = ",".join(sorted(self.tags)) if self.tags else "-"
        return (
            f"[{self.timestamp:8.3f}s] {self.message_id} {self.kind.value:<7} "
            f"stream={self.stream_id} tags={tag_text} producer={self.producer}"
        )


def control_payload(instruction: str, **fields: Any) -> dict[str, Any]:
    """Build the payload mapping for a control message.

    Example:
        >>> control_payload(Instruction.EXECUTE_AGENT, agent="SUMMARIZER")
        {'instruction': 'EXECUTE_AGENT', 'agent': 'SUMMARIZER'}
    """
    payload = {"instruction": instruction}
    payload.update(fields)
    return payload
