"""Subscriptions and tag rules for selective message consumption.

Agents in the blueprint can be activated *decentrally* by monitoring
designated tags within streams, "defined by inclusion and exclusion rules"
(Section V-B).  :class:`TagRule` captures those rules; :class:`Subscription`
binds a rule plus a stream filter to a subscriber callback.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .message import Message, MessageKind


@dataclass(frozen=True)
class TagRule:
    """Inclusion/exclusion rule over message tags.

    A message matches when it carries at least one included tag (or the
    include set is empty, meaning "any") and none of the excluded tags.

    Example:
        >>> rule = TagRule(include=frozenset({"SQL"}), exclude=frozenset({"DRAFT"}))
        >>> rule.matches({"SQL"})
        True
        >>> rule.matches({"SQL", "DRAFT"})
        False
        >>> TagRule().matches(set())  # empty rule matches everything
        True
    """

    include: frozenset[str] = frozenset()
    exclude: frozenset[str] = frozenset()

    def matches(self, tags: Iterable[str]) -> bool:
        exclude = self.exclude
        include = self.include
        if not exclude and not include:
            return True
        tag_set = tags if isinstance(tags, (set, frozenset)) else set(tags)
        if exclude and not tag_set.isdisjoint(exclude):
            return False
        if include:
            return not tag_set.isdisjoint(include)
        return True

    @classmethod
    def of(cls, include: Iterable[str] = (), exclude: Iterable[str] = ()) -> "TagRule":
        """Convenience constructor from any iterables."""
        return cls(include=frozenset(include), exclude=frozenset(exclude))


SubscriberCallback = Callable[[Message], None]


@dataclass
class Subscription:
    """A registered listener on the stream store.

    Attributes:
        subscription_id: unique identifier.
        subscriber: name of the listening component (for traces).
        callback: invoked once per matching message, in append order.
        stream_pattern: glob over stream ids (``session-1/*``); ``*`` = all.
        tag_rule: inclusion/exclusion rule over message tags.
        control_only / data_only: restrict by message kind.
    """

    subscription_id: str
    subscriber: str
    callback: SubscriberCallback
    stream_pattern: str = "*"
    tag_rule: TagRule = field(default_factory=TagRule)
    control_only: bool = False
    data_only: bool = False
    active: bool = True

    def __post_init__(self) -> None:
        # ``wants`` runs once per candidate per publish, so precompute the
        # filter shape: the common subscription (match-all pattern, trivial
        # tag rule) then pays attribute checks instead of fnmatch + set
        # algebra.  ``stream_pattern`` and ``tag_rule`` are fixed after
        # registration (the store never mutates them).
        self._match_all_streams = self.stream_pattern == "*"
        self._trivial_tags = not (self.tag_rule.include or self.tag_rule.exclude)

    def wants(self, message: Message) -> bool:
        """Whether this subscription should receive *message*."""
        if not self.active:
            return False
        kind = message.kind
        if self.control_only and kind is not MessageKind.CONTROL:
            return False
        if self.data_only and kind is not MessageKind.DATA:
            return False
        if not (
            self._match_all_streams
            or fnmatch.fnmatchcase(message.stream_id, self.stream_pattern)
        ):
            return False
        return self._trivial_tags or self.tag_rule.matches(message.tags)
