"""Flow tracing: turning the raw message trace into readable step sequences.

Figures 9 and 10 in the paper show numbered flows ("Step 1: user clicks ...,
Step 2: Agentic Employer emits ...").  :class:`FlowTrace` reconstructs such
sequences from the stream store's global trace so the benchmarks can print
and assert on the same steps the figures show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from .message import Message
from .store import StreamStore


@dataclass(frozen=True)
class FlowStep:
    """One numbered step in a reconstructed flow."""

    index: int
    actor: str
    action: str
    stream_id: str
    message_id: str
    timestamp: float

    def render(self) -> str:
        return f"Step {self.index}: {self.actor} {self.action} (stream={self.stream_id})"


class FlowTrace:
    """Reconstructs actor/action step sequences from a message trace."""

    def __init__(self, store: StreamStore) -> None:
        self._store = store
        self._start_index = len(store.trace())

    def mark(self) -> None:
        """Restart the window: only messages published after this are traced."""
        self._start_index = len(self._store.trace())

    def window(self) -> list[Message]:
        """Messages published since construction (or the last mark)."""
        return self._store.trace()[self._start_index :]

    def steps(
        self,
        describe: Callable[[Message], str | None] | None = None,
        producers: Iterable[str] | None = None,
    ) -> list[FlowStep]:
        """Turn the window into numbered steps.

        Args:
            describe: optional mapper from message to an action string;
                returning None drops the message from the flow.  Defaults to
                a generic description from kind/tags.
            producers: if given, only messages from these producers are kept.
        """
        wanted = set(producers) if producers is not None else None
        steps: list[FlowStep] = []
        for message in self.window():
            if wanted is not None and message.producer not in wanted:
                continue
            if describe is not None:
                action = describe(message)
                if action is None:
                    continue
            else:
                action = self._default_action(message)
            steps.append(
                FlowStep(
                    index=len(steps) + 1,
                    actor=message.producer or "?",
                    action=action,
                    stream_id=message.stream_id,
                    message_id=message.message_id,
                    timestamp=message.timestamp,
                )
            )
        return steps

    def render(self, **kwargs) -> str:
        """Multi-line rendering of the numbered flow."""
        return "\n".join(step.render() for step in self.steps(**kwargs))

    def actors(self) -> list[str]:
        """Distinct producers in window order of first appearance."""
        seen: list[str] = []
        for message in self.window():
            if message.producer and message.producer not in seen:
                seen.append(message.producer)
        return seen

    @staticmethod
    def _default_action(message: Message) -> str:
        if message.is_control:
            instruction = message.instruction() or "control"
            return f"emits control {instruction}"
        if message.is_eos:
            return "closes stream"
        tag_text = ",".join(sorted(message.tags)) if message.tags else "untagged"
        return f"emits data [{tag_text}]"
