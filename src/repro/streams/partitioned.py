"""Partitioned, replicated streams: durable publish over a store cluster.

:class:`PartitionedStreamStore` keeps the whole :class:`StreamStore`
contract — synchronous depth-first dispatch, trace indexes, metrics —
and adds a durability layer underneath it: every message record is
quorum-appended to the stream's partition (``ring.shard_for(stream_id)``
on a :class:`~repro.storage.cluster.StoreCluster`) *before* it touches
any in-memory structure.  If no quorum of replicas can store the record,
the publish raises :class:`~repro.errors.ClusterUnavailableError` and the
store is left exactly as it was: un-acked messages never reach a
subscriber, the trace, or the stream.

:func:`export_partitioned` rebuilds the global message log purely from
replica logs — the proof artifact for the zero-acked-loss property: after
any kill/partition schedule, the rebuilt log must equal the in-memory
trace of every message whose publish returned.
"""

from __future__ import annotations

from typing import Any

from ..clock import SimClock
from ..storage.cluster import StoreCluster
from .message import Message, MessageKind
from .store import StreamStore


def _apply_stream(state: list[dict[str, Any]], op: dict[str, Any]) -> Any:
    state.append(op["message"])
    return len(state)


def _message_record(message: Message) -> dict[str, Any]:
    return {
        "message_id": message.message_id,
        "stream_id": message.stream_id,
        "kind": message.kind.value,
        "payload": message.payload,
        "tags": sorted(message.tags),
        "producer": message.producer,
        "timestamp": message.timestamp,
        "metadata": dict(message.metadata),
    }


class PartitionedStreamStore(StreamStore):
    """A ``StreamStore`` whose messages are replicated before delivery."""

    def __init__(
        self,
        clock: SimClock | None = None,
        n_partitions: int = 4,
        n_replicas: int = 3,
        seed: int = 0,
        **cluster_options: Any,
    ) -> None:
        super().__init__(clock)
        self.cluster = StoreCluster(
            "streams",
            n_partitions,
            n_replicas,
            list,
            _apply_stream,
            clock=self.clock,
            seed=seed,
            **cluster_options,
        )

    def partition_for(self, stream_id: str) -> int:
        return self.cluster.shard_for(stream_id)

    def _persist(self, message: Message) -> None:
        self.cluster.append(
            message.stream_id, {"op": "publish", "message": _message_record(message)}
        )

    def tick(self, advance: float | None = None) -> None:
        self.cluster.tick(advance=advance)

    def describe_cluster(self) -> dict[str, Any]:
        return self.cluster.describe()


def _message_seq(record: dict[str, Any]) -> int:
    """Global publish order from the id (``msg-000042`` -> 42)."""
    return int(record["message_id"].rsplit("-", 1)[-1])


def export_partitioned(store: PartitionedStreamStore) -> dict[str, Any]:
    """The global message log rebuilt from replica logs alone.

    Reads each partition's quorum state (so it reflects exactly the acked
    history) and merges partitions back into publish order by message id.
    """
    records: list[dict[str, Any]] = []
    for shard_index in store.cluster.ring.all_shards():
        records.extend(store.cluster.quorum_state_of(shard_index))
    records.sort(key=_message_seq)
    return {
        "clock": store.clock.now(),
        "partitions": store.cluster.n_shards,
        "messages": records,
    }


def replayed_messages(snapshot: dict[str, Any]) -> list[Message]:
    """Materialize exported records back into :class:`Message` objects."""
    return [
        Message(
            message_id=record["message_id"],
            stream_id=record["stream_id"],
            kind=MessageKind(record["kind"]),
            payload=record["payload"],
            tags=frozenset(record["tags"]),
            producer=record["producer"],
            timestamp=record["timestamp"],
            metadata=dict(record["metadata"]),
        )
        for record in snapshot["messages"]
    ]
