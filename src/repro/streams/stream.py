"""Streams: ordered, persisted sequences of messages.

A stream is "a sequence of messages, containing data or instructions, that
can be dynamically produced, distributed, monitored, and consumed"
(Section V-A).  Streams are first-class data resources: the full message
history stays readable after consumption, which is what gives the
architecture its observability.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from ..errors import StreamClosedError
from .message import Message, MessageKind


class Stream:
    """An append-only message log with offset-based readers.

    Streams are created through a :class:`~repro.streams.store.StreamStore`,
    which owns id generation and subscriber dispatch; the stream itself only
    stores messages and its own lifecycle state.
    """

    def __init__(
        self,
        stream_id: str,
        tags: frozenset[str] = frozenset(),
        creator: str = "",
        created_at: float = 0.0,
    ) -> None:
        self.stream_id = stream_id
        self.tags = tags
        self.creator = creator
        self.created_at = created_at
        self._messages: list[Message] = []
        self._closed = False
        self._lock = threading.Lock()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._messages)

    def append(self, message: Message) -> int:
        """Append *message*; returns its offset. Raises if the stream closed."""
        with self._lock:
            if self._closed:
                raise StreamClosedError(
                    f"cannot append to closed stream {self.stream_id!r}"
                )
            self._messages.append(message)
            if message.kind is MessageKind.EOS:
                self._closed = True
            return len(self._messages) - 1

    def read(self, offset: int = 0, limit: int | None = None) -> list[Message]:
        """Messages starting at *offset* (persisted history stays readable)."""
        with self._lock:
            if limit is None:
                return list(self._messages[offset:])
            return list(self._messages[offset : offset + limit])

    def last(self) -> Message | None:
        """The most recent message, or None on an empty stream."""
        with self._lock:
            return self._messages[-1] if self._messages else None

    def messages(self) -> list[Message]:
        """A snapshot of the full history."""
        return self.read(0)

    def data_payloads(self) -> list[Any]:
        """Payloads of all data messages, in order."""
        return [m.payload for m in self.messages() if m.is_data]

    def filter(self, predicate: Callable[[Message], bool]) -> list[Message]:
        """Messages satisfying *predicate*."""
        return [m for m in self.messages() if predicate(m)]

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages())


class StreamReader:
    """A stateful cursor over a stream for polling consumers.

    Event-driven components subscribe through the store; batch components
    (tests, renderers, summarizers over history) use a reader instead:

        >>> # doctest setup omitted; usage shape:
        >>> # reader = StreamReader(stream)
        >>> # new_messages = reader.poll()
    """

    def __init__(self, stream: Stream, start_offset: int = 0) -> None:
        self._stream = stream
        self._offset = start_offset

    @property
    def offset(self) -> int:
        return self._offset

    def poll(self, limit: int | None = None) -> list[Message]:
        """Return (and consume) messages appended since the last poll."""
        batch = self._stream.read(self._offset, limit)
        self._offset += len(batch)
        return batch

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"offset must be non-negative: {offset}")
        self._offset = offset

    def exhausted(self) -> bool:
        """True when the stream is closed and fully consumed."""
        return self._stream.closed and self._offset >= len(self._stream)
