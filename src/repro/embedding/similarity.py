"""Similarity measures over embeddings and token sets."""

from __future__ import annotations

import numpy as np

from .hashing import tokenize_words


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity in [-1, 1]; zero vectors yield 0."""
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0:
        return 0.0
    return float(np.dot(a, b) / norm)


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


def jaccard(text_a: str, text_b: str) -> float:
    """Jaccard similarity of the word sets of two texts."""
    set_a = set(tokenize_words(text_a))
    set_b = set(tokenize_words(text_b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def keyword_overlap(query: str, text: str) -> float:
    """Fraction of query words present in *text* (keyword-search score)."""
    query_words = set(tokenize_words(query))
    if not query_words:
        return 0.0
    text_words = set(tokenize_words(text))
    return len(query_words & text_words) / len(query_words)
