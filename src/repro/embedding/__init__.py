"""Deterministic text embeddings (feature hashing) and similarity measures."""

from .hashing import HashingEmbedder, char_ngrams, tokenize_words
from .similarity import cosine, euclidean, jaccard, keyword_overlap

__all__ = [
    "HashingEmbedder",
    "char_ngrams",
    "tokenize_words",
    "cosine",
    "euclidean",
    "jaccard",
    "keyword_overlap",
]
