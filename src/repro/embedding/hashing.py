"""Deterministic text embeddings via feature hashing.

Registry search needs "vector-based techniques using learned representations
derived from metadata" (Section V-C).  Offline we substitute learned
embeddings with *feature-hashed* embeddings: words and character n-grams are
hashed into a fixed-dimensional vector.  The result is deterministic across
processes (md5, not Python's randomized ``hash``) and preserves lexical
similarity — texts sharing vocabulary land near each other — which is the
property the registries' semantic search exercises.
"""

from __future__ import annotations

import hashlib
import re
from typing import Iterable

import numpy as np

_WORD_RE = re.compile(r"[a-z0-9]+")


def tokenize_words(text: str) -> list[str]:
    """Lowercase word tokens of *text*."""
    return _WORD_RE.findall(text.lower())


def char_ngrams(word: str, n: int = 3) -> list[str]:
    """Character n-grams of *word*, padded with boundary markers."""
    padded = f"#{word}#"
    if len(padded) <= n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


def _bucket(feature: str, dim: int) -> tuple[int, float]:
    """Stable (index, sign) for a feature string."""
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    index = int.from_bytes(digest[:4], "little") % dim
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return index, sign


class HashingEmbedder:
    """Feature-hashing embedder over words and character trigrams.

    Example:
        >>> embedder = HashingEmbedder(dim=64)
        >>> a = embedder.embed("job matching model")
        >>> b = embedder.embed("model for matching jobs")
        >>> c = embedder.embed("database index statistics")
        >>> from repro.embedding.similarity import cosine
        >>> cosine(a, b) > cosine(a, c)
        True
    """

    def __init__(self, dim: int = 256, use_char_ngrams: bool = True) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive: {dim}")
        self.dim = dim
        self.use_char_ngrams = use_char_ngrams

    def features(self, text: str) -> list[str]:
        """The hashed feature strings for *text* (words + n-grams)."""
        words = tokenize_words(text)
        feats = [f"w:{word}" for word in words]
        if self.use_char_ngrams:
            for word in words:
                feats.extend(f"c:{gram}" for gram in char_ngrams(word))
        return feats

    def embed(self, text: str) -> np.ndarray:
        """L2-normalized embedding of *text* (zero vector for empty text)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        for feature in self.features(text):
            index, sign = _bucket(feature, self.dim)
            vector[index] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_many(self, texts: Iterable[str]) -> np.ndarray:
        """Stacked embeddings, one row per text."""
        rows = [self.embed(text) for text in texts]
        if not rows:
            return np.empty((0, self.dim))
        return np.vstack(rows)
