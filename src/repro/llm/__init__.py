"""Simulated LLM substrate: tokenizer, knowledge, models, catalog, prompts."""

from . import knowledge, prompts
from .cache import CacheStats, LLMCache
from .catalog import DEFAULT_SPECS, ModelCatalog
from .model import LLMResponse, LLMUsage, ModelSpec, SimulatedLLM, UsageTracker
from .tokenizer import count_tokens, tokenize, truncate_tokens

__all__ = [
    "knowledge",
    "prompts",
    "CacheStats",
    "DEFAULT_SPECS",
    "LLMCache",
    "ModelCatalog",
    "LLMResponse",
    "LLMUsage",
    "ModelSpec",
    "SimulatedLLM",
    "UsageTracker",
    "count_tokens",
    "tokenize",
    "truncate_tokens",
]
