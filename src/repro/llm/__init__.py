"""Simulated LLM substrate: tokenizer, knowledge, models, catalog, prompts."""

from . import knowledge, prompts
from .batching import BatchPolicy, BatchStats, LLMBatcher
from .cache import CacheStats, LLMCache
from .capacity import CapacityStats, ModelCapacity
from .catalog import DEFAULT_SPECS, ModelCatalog
from .model import LLMResponse, LLMUsage, ModelSpec, SimulatedLLM, UsageTracker
from .singleflight import FlightStats, SingleFlight
from .tokenizer import count_tokens, tokenize, truncate_tokens

__all__ = [
    "knowledge",
    "prompts",
    "BatchPolicy",
    "BatchStats",
    "CacheStats",
    "CapacityStats",
    "DEFAULT_SPECS",
    "FlightStats",
    "LLMBatcher",
    "LLMCache",
    "ModelCapacity",
    "ModelCatalog",
    "LLMResponse",
    "LLMUsage",
    "ModelSpec",
    "SimulatedLLM",
    "SingleFlight",
    "UsageTracker",
    "count_tokens",
    "tokenize",
    "truncate_tokens",
]
