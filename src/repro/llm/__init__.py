"""Simulated LLM substrate: tokenizer, knowledge, models, catalog, prompts."""

from . import knowledge, prompts
from .catalog import DEFAULT_SPECS, ModelCatalog
from .model import LLMResponse, LLMUsage, ModelSpec, SimulatedLLM, UsageTracker
from .tokenizer import count_tokens, tokenize, truncate_tokens

__all__ = [
    "knowledge",
    "prompts",
    "DEFAULT_SPECS",
    "ModelCatalog",
    "LLMResponse",
    "LLMUsage",
    "ModelSpec",
    "SimulatedLLM",
    "UsageTracker",
    "count_tokens",
    "tokenize",
    "truncate_tokens",
]
