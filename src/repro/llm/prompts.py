"""Prompt builders for the task-directive convention.

Agents and planners never concatenate prompt strings ad hoc; they build them
here, so the convention stays in one place and tests can assert on it.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def list_cities(region: str) -> str:
    return f"TASK: LIST_CITIES\nREGION: {region}"


def related_titles(title: str) -> str:
    return f"TASK: RELATED_TITLES\nTITLE: {title}"


def list_skills(title: str) -> str:
    return f"TASK: LIST_SKILLS\nTITLE: {title}"


def extract(text: str, fields: Iterable[str]) -> str:
    field_list = ", ".join(fields)
    return f"TASK: EXTRACT\nFIELDS: {field_list}\nTEXT: {text}"


def summarize(text: str) -> str:
    return f"TASK: SUMMARIZE\nTEXT: {text}"


def classify(text: str, labels: Iterable[str]) -> str:
    label_list = ", ".join(labels)
    return f"TASK: CLASSIFY\nLABELS: {label_list}\nTEXT: {text}"


def q2nl(fragment: str) -> str:
    """Turn a query fragment into a natural-language knowledge request."""
    return f"TASK: Q2NL\nFRAGMENT: {fragment}"


def generate(text: str) -> str:
    return f"TASK: GENERATE\n{text}"


def match_explain(
    seeker_title: str, job_title: str, shared_skills: Iterable[str], location_fit: str = ""
) -> str:
    """Explain a seeker-job match (the paper's explanation module)."""
    skills = ", ".join(shared_skills)
    return (
        "TASK: MATCH_EXPLAIN\n"
        f"SEEKER_TITLE: {seeker_title}\n"
        f"JOB_TITLE: {job_title}\n"
        f"SHARED_SKILLS: {skills}\n"
        f"LOCATION_FIT: {location_fit}"
    )


def describe_rows(rows: Iterable[Mapping], intro: str = "Query results") -> str:
    """Render rows into a summarization prompt (the QUERY SUMMARIZER's input)."""
    lines = [f"{intro}:"]
    for row in rows:
        rendered = ", ".join(f"{key}={value}" for key, value in row.items())
        lines.append(f"- {rendered}")
    return summarize("\n".join(lines))
