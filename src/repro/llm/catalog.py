"""The model catalog: the enterprise's available LLM endpoints.

The optimizer chooses among these by cost/latency/quality (Section V-G);
the defaults span four general tiers plus a fine-tuned HR model — cheap and
strong on HR tasks, weak on open-world knowledge — which is exactly the
trade-off the paper's enterprise setting motivates.
"""

from __future__ import annotations

import threading

from ..clock import SimClock
from ..errors import ModelNotFoundError
from .batching import LLMBatcher
from .cache import LLMCache
from .capacity import ModelCapacity
from .model import ModelSpec, SimulatedLLM, UsageTracker
from .singleflight import SingleFlight

#: Default model fleet (prices are per 1k tokens; latency in seconds).
DEFAULT_SPECS: tuple[ModelSpec, ...] = (
    ModelSpec(
        name="mega-xl",
        tier="xl",
        quality=0.98,
        cost_per_1k_input=0.030,
        cost_per_1k_output=0.060,
        latency_base=1.8,
        latency_per_token=0.020,
        context_window=32768,
    ),
    ModelSpec(
        name="mega-m",
        tier="m",
        quality=0.92,
        cost_per_1k_input=0.010,
        cost_per_1k_output=0.020,
        latency_base=0.9,
        latency_per_token=0.010,
        context_window=16384,
    ),
    ModelSpec(
        name="mega-s",
        tier="s",
        quality=0.80,
        cost_per_1k_input=0.002,
        cost_per_1k_output=0.004,
        latency_base=0.4,
        latency_per_token=0.005,
        context_window=8192,
    ),
    ModelSpec(
        name="mega-nano",
        tier="nano",
        quality=0.62,
        cost_per_1k_input=0.0005,
        cost_per_1k_output=0.0010,
        latency_base=0.15,
        latency_per_token=0.002,
        context_window=4096,
    ),
    ModelSpec(
        name="hr-ft",
        tier="ft",
        quality=0.60,
        domain="hr",
        domain_quality=0.96,
        cost_per_1k_input=0.001,
        cost_per_1k_output=0.002,
        latency_base=0.25,
        latency_per_token=0.003,
        context_window=8192,
    ),
)


class ModelCatalog:
    """Registry of model specs; hands out instrumented clients."""

    def __init__(
        self,
        specs: tuple[ModelSpec, ...] = DEFAULT_SPECS,
        clock: SimClock | None = None,
        tracker: UsageTracker | None = None,
        default_failure_rate: float = 0.0,
        cache: LLMCache | None = None,
        capacity: ModelCapacity | None = None,
        single_flight: SingleFlight | None = None,
        batcher: LLMBatcher | None = None,
    ) -> None:
        self.clock = clock
        self.tracker = tracker or UsageTracker()
        #: Transient-failure rate applied to clients when the caller does
        #: not name one — the chaos controller's LLM fault-injection knob.
        self.default_failure_rate = default_failure_rate
        #: Optional tracing/metrics sink, propagated to every client
        #: (settable after construction; the Blueprint wires its own).
        self.observability = None
        #: Optional shared result cache (opt-in; see :class:`LLMCache`).
        self.cache = cache
        #: Optional per-model concurrency limits shared by every client
        #: (opt-in; the fleet runtime wires one — see :class:`ModelCapacity`).
        self.capacity = capacity
        #: Optional cross-plan single-flight coalescing shared by every
        #: client (opt-in; see :class:`SingleFlight`).
        self.single_flight = single_flight
        #: Optional cross-plan micro-batch coalescing shared by every
        #: client (opt-in; see :class:`LLMBatcher`).
        self.batcher = batcher
        #: Real seconds slept per simulated latency second, propagated to
        #: every client (0.0 = fully simulated; the thread backend's
        #: wall-clock benchmark sets a small scale so LLM calls actually
        #: block and the pool has something to overlap).
        self.wall_latency_scale = 0.0
        self._specs: dict[str, ModelSpec] = {}
        self._clients: dict[str, SimulatedLLM] = {}
        self._lock = threading.Lock()
        for spec in specs:
            self.register(spec)

    def register(self, spec: ModelSpec) -> None:
        with self._lock:
            self._specs[spec.name] = spec
            self._clients.pop(spec.name, None)

    def spec(self, name: str) -> ModelSpec:
        with self._lock:
            spec = self._specs.get(name)
        if spec is None:
            raise ModelNotFoundError(f"no model named {name!r} in catalog")
        return spec

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def specs(self) -> list[ModelSpec]:
        with self._lock:
            return [self._specs[name] for name in sorted(self._specs)]

    def client(self, name: str, failure_rate: float | None = None) -> SimulatedLLM:
        """A (cached) client for *name*, wired to this catalog's clock/tracker.

        *failure_rate* defaults to :attr:`default_failure_rate` (normally
        zero; raised by chaos injection to simulate provider brownouts).
        """
        spec = self.spec(name)
        if failure_rate is None:
            failure_rate = self.default_failure_rate
        with self._lock:
            cached = self._clients.get(name)
            if cached is not None and cached.failure_rate == failure_rate:
                # Rewire shared plumbing on EVERY fetch, not just at
                # construction: the catalog's tracker, clock, result cache,
                # or observability sink may have been swapped since this
                # client was built, and a stale reference would silently
                # record usage into the abandoned sink.
                cached.clock = self.clock
                cached.tracker = self.tracker
                cached.cache = self.cache
                cached.capacity = self.capacity
                cached.single_flight = self.single_flight
                cached.batcher = self.batcher
                cached.observability = self.observability
                cached.wall_latency_scale = self.wall_latency_scale
                return cached
            client = SimulatedLLM(
                spec,
                clock=self.clock,
                tracker=self.tracker,
                failure_rate=failure_rate,
                observability=self.observability,
                cache=self.cache,
                capacity=self.capacity,
                single_flight=self.single_flight,
                batcher=self.batcher,
            )
            client.wall_latency_scale = self.wall_latency_scale
            self._clients[name] = client
            return client

    def cheapest(self, domain: str = "general", min_quality: float = 0.0) -> ModelSpec:
        """Cheapest model whose effective quality meets *min_quality*."""
        eligible = [
            spec for spec in self.specs() if spec.quality_for(domain) >= min_quality
        ]
        if not eligible:
            raise ModelNotFoundError(
                f"no model with quality >= {min_quality} for domain {domain!r}"
            )
        return min(eligible, key=lambda spec: spec.cost_per_1k_output)

    def best(self, domain: str = "general") -> ModelSpec:
        """Highest effective quality model for *domain*."""
        return max(self.specs(), key=lambda spec: spec.quality_for(domain))
