"""LLM result cache: identical calls pay for the model once.

Enterprise compound-AI workloads repeat themselves — the same taxonomy
expansion, the same extraction prompt over the same profile, the same
NL→SQL translation — and every repeat of a deterministic call is pure
waste.  An :class:`LLMCache` memoizes completed calls keyed on
``(model, prompt, max_output_tokens)``; a hit returns the remembered
answer with **zero** cost and latency (nothing is charged to budgets,
nothing advances the simulated clock), and the cache tallies what the
hit would have cost so benchmarks can report the savings.

Caching is strictly opt-in:

* a catalog has no cache unless one is passed in (or the Blueprint is
  built with ``llm_cache=True``), so existing traces stay byte-identical;
* a plan may set ``no_cache`` to bypass an enabled cache — chaos and
  determinism suites need every call to exercise the real model path
  (a hit skips failure injection along with everything else).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from .model import LLMResponse, LLMUsage

#: Usage stamped onto cache hits: the call consumed nothing.
_ZERO_USAGE = LLMUsage(input_tokens=0, output_tokens=0, cost=0.0, latency=0.0)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time tallies of one :class:`LLMCache`."""

    hits: int
    misses: int
    entries: int
    #: What the hits would have cost had the model actually been called.
    saved_cost: float
    saved_latency: float
    #: Tokens the hits represent but did not consume.  Hits stamp zeroed
    #: usage (nothing is charged), which makes per-model token-throughput
    #: metrics under-report the work the prompts actually stand for —
    #: these tallies carry the would-have-been token counts so traces and
    #: bench artifacts can report true throughput without touching what
    #: was charged.
    saved_input_tokens: int = 0
    saved_output_tokens: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LLMCache:
    """An LRU memo of completed LLM calls, shared across a catalog.

    Example:
        >>> from repro.llm import ModelCatalog
        >>> catalog = ModelCatalog(cache=LLMCache())
        >>> client = catalog.client("mega-s")
        >>> first = client.complete("TASK: GENERATE\\nhello")
        >>> again = client.complete("TASK: GENERATE\\nhello")
        >>> again.cached, again.usage.cost, again.text == first.text
        (True, 0.0, True)
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0: {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, int], LLMResponse] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._saved_cost = 0.0
        self._saved_latency = 0.0
        self._saved_input_tokens = 0
        self._saved_output_tokens = 0

    def get(
        self, model: str, prompt: str, max_output_tokens: int
    ) -> LLMResponse | None:
        """The memoized response, re-stamped as a free call — or None.

        A hit moves the entry to most-recently-used and credits the
        original call's cost/latency to the savings tallies.
        """
        key = (model, prompt, max_output_tokens)
        with self._lock:
            stored = self._entries.get(key)
            if stored is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._saved_cost += stored.usage.cost
            self._saved_latency += stored.usage.latency
            self._saved_input_tokens += stored.usage.input_tokens
            self._saved_output_tokens += stored.usage.output_tokens
            return replace(stored, usage=_ZERO_USAGE, cached=True)

    def put(
        self, model: str, prompt: str, max_output_tokens: int, response: LLMResponse
    ) -> None:
        """Remember *response* (with its real usage, for savings tallies)."""
        key = (model, prompt, max_output_tokens)
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                saved_cost=self._saved_cost,
                saved_latency=self._saved_latency,
                saved_input_tokens=self._saved_input_tokens,
                saved_output_tokens=self._saved_output_tokens,
            )

    def clear(self) -> None:
        """Drop all entries (tallies survive: they describe history)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
