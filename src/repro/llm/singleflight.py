"""Single-flight coalescing: overlapping identical calls share one result.

The LRU :class:`~repro.llm.cache.LLMCache` makes a *repeated* identical
call free — any time after the first completes.  Single-flight is the
cross-plan complement: when a fleet of concurrent plans issues the same
``(model, prompt, params)`` call while an earlier one is still *in
flight* on the simulated timeline, the joiner does not re-run the model.
It attaches to the in-flight call, waits out the **residual** latency
(from its own branch-local start to the leader's completion), and shares
the leader's response at zero cost.

Unlike a cache hit (zero latency, zero cost, unbounded reuse window),
a join pays real waiting time and only exists while the leader's
interval ``[start, end)`` covers the joiner's start — the interval is
half-open, so a joiner starting *exactly* at ``end`` is too late: the
call is no longer in flight and the joiner becomes a fresh leader.
Joins skip the failure roll and the leader's call index, exactly like
cache hits, so determinism suites that need every physical call use
``no_cache`` (which bypasses single-flight too).

Eviction respects in-flight intervals: the LRU bound only drops flights
whose ``end`` has already passed the recording clock (``end <= now``).
A leader whose interval still covers future joiner starts is exempt —
evicting it would silently turn would-be joins into fresh leaders and
change traces under fleet load — so the map may transiently exceed
``max_entries`` while many flights are live.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import NamedTuple

from .model import LLMResponse, LLMUsage


class _Flight(NamedTuple):
    """One recorded leader call: its interval and its response."""

    start: float
    end: float
    response: LLMResponse


@dataclass(frozen=True)
class FlightStats:
    """Point-in-time tallies of one :class:`SingleFlight`."""

    leaders: int
    joins: int
    entries: int
    #: What the joins would have cost had each re-run the model.
    saved_cost: float
    #: Modeled latency the joins did not pay (leader latency minus the
    #: residual wait each joiner actually paid).
    saved_latency: float

    @property
    def hit_rate(self) -> float:
        total = self.leaders + self.joins
        return self.joins / total if total else 0.0


class SingleFlight:
    """Coalesces timeline-overlapping identical LLM calls.

    Example — a joiner starting mid-flight pays only the residual:
        >>> from repro.llm.model import LLMResponse, LLMUsage
        >>> flight = SingleFlight()
        >>> usage = LLMUsage(10, 5, cost=0.01, latency=2.0)
        >>> leader = LLMResponse("answer", usage, model="mega-s")
        >>> flight.record("mega-s", "p", 512, start=0.0, end=2.0, response=leader)
        >>> joined, residual = flight.join("mega-s", "p", 512, now=1.5)
        >>> (joined.text, joined.coalesced, joined.usage.cost, residual)
        ('answer', True, 0.0, 0.5)
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0: {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, int], _Flight] = OrderedDict()
        self._lock = threading.Lock()
        self._leaders = 0
        self._joins = 0
        self._saved_cost = 0.0
        self._saved_latency = 0.0

    def join(
        self, model: str, prompt: str, max_output_tokens: int, now: float
    ) -> tuple[LLMResponse, float] | None:
        """Attach to an in-flight identical call, or None when none covers *now*.

        Returns the shared response (usage re-stamped: zero tokens/cost,
        latency = the residual wait) plus the residual itself, which the
        caller advances on the clock.
        """
        key = (model, prompt, max_output_tokens)
        with self._lock:
            flight = self._entries.get(key)
            if flight is None or not flight.start <= now < flight.end:
                return None
            # ``now < end`` guarantees a positive difference, but float
            # subtraction at adjacent representable instants can round to
            # 0.0 — clamp so a residual (a wait) is never negative.
            residual = max(0.0, flight.end - now)
            self._joins += 1
            self._saved_cost += flight.response.usage.cost
            self._saved_latency += max(
                0.0, flight.response.usage.latency - residual
            )
            self._entries.move_to_end(key)
            shared = replace(
                flight.response,
                usage=LLMUsage(0, 0, cost=0.0, latency=residual),
                coalesced=True,
            )
            return shared, residual

    def record(
        self,
        model: str,
        prompt: str,
        max_output_tokens: int,
        start: float,
        end: float,
        response: LLMResponse,
        now: float | None = None,
    ) -> None:
        """Record a completed leader call's interval and response.

        *now* is the recording clock instant used for eviction: flights
        still in flight at *now* (``end > now``) are never dropped by the
        LRU bound.  When omitted it defaults to this flight's own ``end``
        — the latest instant the recorder can have observed.
        """
        key = (model, prompt, max_output_tokens)
        horizon = end if now is None else now
        with self._lock:
            self._leaders += 1
            self._entries[key] = _Flight(start=start, end=end, response=response)
            self._entries.move_to_end(key)
            if len(self._entries) > self._max_entries:
                # Evict stale flights only, least-recently-used first:
                # an interval covering instants beyond ``horizon`` may
                # still receive joiners, so it survives even over budget.
                for stale_key in list(self._entries):
                    if len(self._entries) <= self._max_entries:
                        break
                    if self._entries[stale_key].end <= horizon:
                        del self._entries[stale_key]

    def stats(self) -> FlightStats:
        with self._lock:
            return FlightStats(
                leaders=self._leaders,
                joins=self._joins,
                entries=len(self._entries),
                saved_cost=self._saved_cost,
                saved_latency=self._saved_latency,
            )

    def clear(self) -> None:
        """Drop all flights (tallies survive: they describe history)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
