"""Per-model concurrency limits with deterministic queueing.

A hosted model endpoint serves a bounded number of concurrent requests;
an enterprise fleet driving many plans at once shares those slots.  A
:class:`ModelCapacity` models that shared admission control on the
simulated timeline: each completed call reserves a half-open interval
``[start, start + latency)`` against its model's slot pool, and a call
that would push the in-flight count past the model's limit is *queued* —
its start is deterministically delayed to the earliest instant a slot is
free for its whole duration.

The queueing delay is pure simulated time: the caller advances the
shared clock by the wait before paying the model latency, so budgets,
spans, and message stamps all see it, and it is surfaced as
``llm.queue_wait`` metrics and span attributes.  Because reservations
are processed in execution order (which is deterministic), two same-seed
fleet runs queue identically.

Reservation order is **not** timeline order: logically-concurrent plan
branches rebase the clock, so a later reservation may start earlier in
simulated time than one already recorded.  :meth:`reserve` therefore
checks the whole candidate window against every recorded interval — the
invariant is that no instant ever has more than ``limit`` overlapping
reservations, regardless of the order they were made in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import CapacityExceededError


@dataclass(frozen=True)
class CapacityStats:
    """Point-in-time tallies of one :class:`ModelCapacity`."""

    reservations: int
    queued: int
    total_wait: float
    max_wait: float
    #: Reservations refused because their wait exceeded ``max_queue_wait``.
    rejected: int = 0

    @property
    def queue_rate(self) -> float:
        return self.queued / self.reservations if self.reservations else 0.0


def _max_overlap(
    intervals: Iterable[tuple[float, float]], lo: float, hi: float
) -> int:
    """Peak number of *intervals* simultaneously active within ``[lo, hi)``."""
    if hi <= lo:
        # Empty window: count intervals covering the instant ``lo``.
        return sum(1 for s, e in intervals if s <= lo < e)
    events: list[tuple[float, int]] = []
    for s, e in intervals:
        s2, e2 = max(s, lo), min(e, hi)
        if s2 < e2:
            events.append((s2, 1))
            events.append((e2, -1))
    # Ties sort -1 first: an interval ending at t frees its slot before
    # one starting at t takes it (half-open interval semantics).
    events.sort()
    current = peak = 0
    for _, delta in events:
        current += delta
        if current > peak:
            peak = current
    return peak


class ModelCapacity:
    """Slot-limited admission control over simulated call intervals.

    Example — two slots, three unit calls wanting to start together:
        >>> capacity = ModelCapacity({"mega-s": 2})
        >>> [capacity.reserve("mega-s", 0.0, 1.0) for _ in range(3)]
        [0.0, 0.0, 1.0]
    """

    def __init__(
        self,
        slots: Mapping[str, int] | None = None,
        default_slots: int | None = None,
        max_queue_wait: float | None = None,
    ) -> None:
        for model, limit in (slots or {}).items():
            if limit <= 0:
                raise ValueError(f"capacity for {model!r} must be > 0: {limit}")
        if default_slots is not None and default_slots <= 0:
            raise ValueError(f"default_slots must be > 0: {default_slots}")
        if max_queue_wait is not None and max_queue_wait < 0:
            raise ValueError(f"max_queue_wait must be >= 0: {max_queue_wait}")
        self._slots = dict(slots or {})
        self._default_slots = default_slots
        #: Queue-depth bound in simulated seconds: a reservation whose
        #: deterministic wait would exceed this raises
        #: :class:`~repro.errors.CapacityExceededError` instead of
        #: queueing (None = queue unboundedly, the pre-overload default).
        self.max_queue_wait = max_queue_wait
        self._intervals: dict[str, list[tuple[float, float]]] = {}
        self._lock = threading.Lock()
        self._reservations = 0
        self._queued = 0
        self._total_wait = 0.0
        self._max_wait = 0.0
        self._rejected = 0

    def limit_for(self, model: str) -> int | None:
        """The model's slot count, or None when unlimited."""
        return self._slots.get(model, self._default_slots)

    # ------------------------------------------------------------------
    # Reservation
    # ------------------------------------------------------------------
    def reserve(self, model: str, start: float, duration: float) -> float:
        """Reserve a slot interval; returns the (possibly delayed) start.

        The interval ``[actual_start, actual_start + duration)`` is
        recorded against *model* even when the model is unlimited, so
        :meth:`max_concurrency` can report *observed* concurrency either
        way.  ``actual_start - start`` is the deterministic queue wait.
        """
        with self._lock:
            intervals = self._intervals.setdefault(model, [])
            limit = self.limit_for(model)
            actual = start
            if limit is not None and intervals:
                # Candidate starts: the desired time plus every recorded
                # interval end after it (a slot can only free at an end).
                candidates = sorted(
                    {start} | {e for _, e in intervals if e > start}
                )
                for t in candidates:
                    if _max_overlap(intervals, t, t + duration) < limit:
                        actual = t
                        break
            wait = actual - start
            if self.max_queue_wait is not None and wait > self.max_queue_wait:
                # Refuse rather than queue: nothing is recorded, so the
                # slot the caller would have waited for stays claimable
                # by whoever retries first (deterministically, since
                # reservation order is execution order).
                self._rejected += 1
                raise CapacityExceededError(
                    f"model {model!r} queue wait {wait:.3f}s exceeds "
                    f"max_queue_wait {self.max_queue_wait:.3f}s"
                )
            intervals.append((actual, actual + duration))
            self._reservations += 1
            if wait > 0:
                self._queued += 1
                self._total_wait += wait
                if wait > self._max_wait:
                    self._max_wait = wait
            return actual

    # ------------------------------------------------------------------
    # Inspection (benchmarks verify limits were honored)
    # ------------------------------------------------------------------
    def intervals(self, model: str) -> list[tuple[float, float]]:
        with self._lock:
            return list(self._intervals.get(model, ()))

    def models(self) -> list[str]:
        with self._lock:
            return sorted(self._intervals)

    def max_concurrency(self, model: str) -> int:
        """Peak observed in-flight calls for *model* across the ledger."""
        with self._lock:
            intervals = list(self._intervals.get(model, ()))
        if not intervals:
            return 0
        lo = min(s for s, _ in intervals)
        hi = max(e for _, e in intervals)
        return _max_overlap(intervals, lo, hi if hi > lo else lo + 1.0)

    def stats(self) -> CapacityStats:
        with self._lock:
            return CapacityStats(
                reservations=self._reservations,
                queued=self._queued,
                total_wait=self._total_wait,
                max_wait=self._max_wait,
                rejected=self._rejected,
            )

    def clear(self) -> None:
        """Drop the interval ledger (tallies survive: they are history)."""
        with self._lock:
            self._intervals.clear()
