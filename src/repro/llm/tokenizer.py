"""A small deterministic tokenizer for token accounting.

Pricing, context-window checks, and latency models all need token counts.
We tokenize on words and punctuation — close enough in spirit to BPE for
cost accounting purposes, and fully deterministic.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+|[^\sA-Za-z0-9]")


def tokenize(text: str) -> list[str]:
    """Word/punctuation tokens of *text*."""
    return _TOKEN_RE.findall(text)


def count_tokens(text: str) -> int:
    """Number of tokens in *text*."""
    return len(tokenize(text))


def truncate_tokens(text: str, max_tokens: int) -> str:
    """Keep at most *max_tokens* tokens of *text* (joined by spaces)."""
    if max_tokens <= 0:
        return ""
    tokens = tokenize(text)
    if len(tokens) <= max_tokens:
        return text
    return " ".join(tokens[:max_tokens])
