"""The simulated LLM's parametric world knowledge.

The paper's data planner treats the LLM as a *data source* for knowledge
that proprietary databases lack — the running example needs "cities in the
SF bay area" (no database has a region column) and related job titles.
This module is that parametric knowledge: curated, deterministic facts the
simulated models draw on, with per-model quality controlling how faithfully
they are reproduced.
"""

from __future__ import annotations

from typing import Mapping

#: Region name -> cities.  The running example hinges on "SF bay area".
REGION_CITIES: Mapping[str, tuple[str, ...]] = {
    "sf bay area": (
        "San Francisco",
        "Oakland",
        "San Jose",
        "Berkeley",
        "Palo Alto",
        "Mountain View",
        "Sunnyvale",
        "Santa Clara",
        "Fremont",
        "Redwood City",
    ),
    "new york metro": (
        "New York",
        "Brooklyn",
        "Jersey City",
        "Newark",
        "White Plains",
    ),
    "seattle area": ("Seattle", "Bellevue", "Redmond", "Kirkland"),
    "austin area": ("Austin", "Round Rock", "Cedar Park"),
}

#: Canonical title -> related titles (the LLM's view; the graph taxonomy in
#: repro.hr.taxonomy is the enterprise's authoritative version).
RELATED_TITLES: Mapping[str, tuple[str, ...]] = {
    "data scientist": (
        "Data Scientist",
        "Machine Learning Engineer",
        "Applied Scientist",
        "Data Analyst",
        "Research Scientist",
    ),
    "software engineer": (
        "Software Engineer",
        "Backend Engineer",
        "Frontend Engineer",
        "Full Stack Engineer",
        "Systems Engineer",
    ),
    "product manager": (
        "Product Manager",
        "Technical Program Manager",
        "Product Owner",
    ),
    "data engineer": (
        "Data Engineer",
        "Analytics Engineer",
        "ETL Developer",
    ),
}

#: Title -> core skills (used for career-advice style questions).
TITLE_SKILLS: Mapping[str, tuple[str, ...]] = {
    "data scientist": (
        "python",
        "statistics",
        "machine learning",
        "sql",
        "data visualization",
        "experiment design",
    ),
    "machine learning engineer": (
        "python",
        "deep learning",
        "mlops",
        "distributed systems",
        "sql",
    ),
    "software engineer": (
        "algorithms",
        "system design",
        "testing",
        "git",
        "debugging",
    ),
    "data engineer": (
        "sql",
        "spark",
        "airflow",
        "data modeling",
        "python",
    ),
    "product manager": (
        "roadmapping",
        "stakeholder management",
        "analytics",
        "communication",
    ),
}

#: Plausible-but-wrong answers injected by low-quality models.  Keeping the
#: noise pool explicit makes degradation deterministic and testable.
NOISE_CITIES: tuple[str, ...] = ("Los Angeles", "Sacramento", "Portland", "San Diego")
NOISE_TITLES: tuple[str, ...] = ("Sales Engineer", "Recruiter", "Office Manager")
NOISE_SKILLS: tuple[str, ...] = ("cooking", "juggling", "astrology")


def lookup_region(region: str) -> tuple[str, ...] | None:
    """Cities for *region*, matched case-insensitively and fuzzily."""
    normalized = region.strip().lower()
    if normalized in REGION_CITIES:
        return REGION_CITIES[normalized]
    for known, cities in REGION_CITIES.items():
        if known in normalized or normalized in known:
            return cities
    return None


def lookup_related_titles(title: str) -> tuple[str, ...] | None:
    normalized = title.strip().lower()
    if normalized in RELATED_TITLES:
        return RELATED_TITLES[normalized]
    for known, titles in RELATED_TITLES.items():
        if known in normalized or normalized in known:
            return titles
    return None


def lookup_skills(title: str) -> tuple[str, ...] | None:
    normalized = title.strip().lower()
    if normalized in TITLE_SKILLS:
        return TITLE_SKILLS[normalized]
    for known, skills in TITLE_SKILLS.items():
        if known in normalized or normalized in known:
            return skills
    return None
