"""The simulated LLM.

A :class:`SimulatedLLM` stands in for a hosted model API.  It exercises the
identical code paths an API-backed deployment would — prompts in, text out,
token-metered cost, modeled latency, context-window limits, failures — while
staying deterministic and offline.

Prompts follow a simple *task directive* convention (see
:mod:`repro.llm.prompts`): a ``TASK:`` line selects a capability, further
``KEY: value`` lines parameterize it, and the remainder is free text.  This
mirrors how production systems prompt models into structured behaviors, and
gives the knowledge-backed tasks (list cities, related titles, extraction,
NL→SQL) answers that the planners and benchmarks can score.

Model *quality* in [0, 1] controls answer fidelity: list-valued answers keep
each item with probability ``quality`` and may gain a plausible-but-wrong
item (a hallucination) with probability ``1 - quality``.  Degradation is
seeded from (model name, prompt), so a given model answers a given prompt
identically every time.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence, TYPE_CHECKING

import numpy as np

from ..clock import SimClock
from ..errors import ContextWindowExceededError, LLMError
from . import knowledge
from .tokenizer import count_tokens

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability import Observability
    from .batching import LLMBatcher
    from .cache import LLMCache
    from .capacity import ModelCapacity
    from .singleflight import SingleFlight


@dataclass(frozen=True)
class ModelSpec:
    """Capabilities and economics of one model in the catalog.

    Attributes:
        name: catalog identifier (``mega-xl``).
        tier: coarse size class (``xl``/``m``/``s``/``nano``/``ft``).
        quality: general-task answer fidelity in [0, 1].
        domain: ``general`` or a specialty (``hr``); fine-tuned models get
            ``domain_quality`` on their specialty's tasks instead of
            ``quality``.
        domain_quality: fidelity on the specialty domain's tasks.
        cost_per_1k_input / cost_per_1k_output: dollars per 1000 tokens.
        latency_base / latency_per_token: seconds per call / per token.
        context_window: maximum prompt tokens accepted.
    """

    name: str
    tier: str
    quality: float
    cost_per_1k_input: float
    cost_per_1k_output: float
    latency_base: float
    latency_per_token: float
    context_window: int = 8192
    domain: str = "general"
    domain_quality: float | None = None

    def quality_for(self, domain: str) -> float:
        """Effective quality when answering a task in *domain*."""
        if self.domain != "general" and domain == self.domain:
            return self.domain_quality if self.domain_quality is not None else self.quality
        return self.quality

    def cost_of(self, input_tokens: int, output_tokens: int) -> float:
        return (
            input_tokens * self.cost_per_1k_input
            + output_tokens * self.cost_per_1k_output
        ) / 1000.0

    def latency_of(self, input_tokens: int, output_tokens: int) -> float:
        return self.latency_base + (input_tokens + output_tokens) * self.latency_per_token


@dataclass(frozen=True)
class LLMUsage:
    """Metered resources for one call."""

    input_tokens: int
    output_tokens: int
    cost: float
    latency: float


@dataclass(frozen=True)
class LLMResponse:
    """A completed model call."""

    text: str
    usage: LLMUsage
    model: str
    structured: Any = None  # parsed form for task-directive answers
    domain: str = "general"  # knowledge domain the task drew on
    cached: bool = False  # served from an LLMCache (usage is zeroed)
    coalesced: bool = False  # joined an in-flight call (usage = residual wait)
    batched: bool = False  # rode a micro-batch window (own cost, residual wait)

    def items(self) -> list[Any]:
        """Structured answer as a list (empty when not list-valued)."""
        if isinstance(self.structured, list):
            return list(self.structured)
        return []


@dataclass
class UsageTracker:
    """Accumulates usage across calls (per model and total)."""

    calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    cost: float = 0.0
    latency: float = 0.0
    per_model: dict[str, dict[str, float]] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, model: str, usage: LLMUsage) -> None:
        # Read-modify-write tallies; clients on pool threads record
        # concurrently under the thread backend.
        with self._lock:
            self.calls += 1
            self.input_tokens += usage.input_tokens
            self.output_tokens += usage.output_tokens
            self.cost += usage.cost
            self.latency += usage.latency
            bucket = self.per_model.setdefault(
                model, {"calls": 0, "cost": 0.0, "latency": 0.0, "tokens": 0}
            )
            bucket["calls"] += 1
            bucket["cost"] += usage.cost
            bucket["latency"] += usage.latency
            bucket["tokens"] += usage.input_tokens + usage.output_tokens


class _BoundTallies:
    """One observability binding's worth of LLM counter tallies.

    The pre-bound-counter idea taken one step further: instead of nine
    ``model=name`` bound counters (one locked dict add each), the client
    keeps plain slotted floats and the registry pulls them at snapshot
    time through :meth:`collect`.  Grouped events (a physical call bumps
    calls/tokens/cost together) take ONE lock acquisition.  Rebinding a
    client to a new observability sink freezes the old object — the
    client only bumps its current binding — so a swapped-in registry
    sees only post-swap events, exactly as push counters behaved.
    """

    __slots__ = (
        "lock", "model", "calls", "tokens", "cost", "failures",
        "cache_hits", "cache_misses", "coalesced", "batch_joins",
        "batch_windows",
    )

    def __init__(self, model: str) -> None:
        self.lock = threading.Lock()
        self.model = model
        self.calls = 0.0
        self.tokens = 0.0
        self.cost = 0.0
        self.failures = 0.0
        self.cache_hits = 0.0
        self.cache_misses = 0.0
        self.coalesced = 0.0
        self.batch_joins = 0.0
        self.batch_windows = 0.0

    def collect(self, sink: Any) -> None:
        model = self.model
        if self.calls:
            sink.inc("llm.calls", self.calls, model=model)
        # tokens/cost series exist exactly when a physical call or batch
        # join charged them — even at zero value (a free model still
        # created the counter key under the push scheme).
        if self.calls or self.batch_joins:
            sink.inc("llm.tokens", self.tokens, model=model)
            sink.inc("llm.cost", self.cost, model=model)
        if self.failures:
            sink.inc("llm.failures", self.failures, model=model)
        if self.cache_hits:
            sink.inc("llm.cache.hits", self.cache_hits, model=model)
        if self.cache_misses:
            sink.inc("llm.cache.misses", self.cache_misses, model=model)
        if self.coalesced:
            sink.inc("llm.coalesced", self.coalesced, model=model)
        if self.batch_joins:
            sink.inc("llm.batch.joins", self.batch_joins, model=model)
        if self.batch_windows:
            sink.inc("llm.batch.windows", self.batch_windows, model=model)


_DIRECTIVE_RE = re.compile(r"^([A-Z_]+):\s*(.*)$")

#: Tasks whose fidelity depends on HR domain knowledge (a fine-tuned HR
#: model answers these at its domain quality).
_HR_TASKS = {"RELATED_TITLES", "LIST_SKILLS", "EXTRACT", "NL2SQL", "MATCH_EXPLAIN"}


class SimulatedLLM:
    """A deterministic stand-in for a hosted LLM endpoint."""

    def __init__(
        self,
        spec: ModelSpec,
        clock: SimClock | None = None,
        tracker: UsageTracker | None = None,
        failure_rate: float = 0.0,
        seed: int = 0,
        observability: "Observability | None" = None,
        cache: "LLMCache | None" = None,
        capacity: "ModelCapacity | None" = None,
        single_flight: "SingleFlight | None" = None,
        batcher: "LLMBatcher | None" = None,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise LLMError(f"failure_rate must be in [0, 1]: {failure_rate}")
        self.spec = spec
        self.clock = clock
        self.tracker = tracker
        self.failure_rate = failure_rate
        #: Optional tracing/metrics sink; each call opens an ``llm`` span
        #: and records ``llm.calls``/``llm.tokens``/``llm.cost`` metrics.
        self.observability = observability
        #: Optional result cache (normally the catalog's, shared by every
        #: client).  Hits bypass the model entirely: no clock advance, no
        #: tracker record, no failure roll, zero cost/latency.
        self.cache = cache
        #: Optional per-model slot limits (normally the catalog's, shared
        #: by every client).  Needs a clock: queue waits are simulated time.
        self.capacity = capacity
        #: Optional cross-plan coalescing of timeline-overlapping identical
        #: calls (normally the catalog's).  Needs a clock too.
        self.single_flight = single_flight
        #: Optional cross-plan micro-batching of *distinct-but-batchable*
        #: calls — same model + params, different prompts — into shared
        #: windows (normally the catalog's).  Needs a clock too.
        self.batcher = batcher
        self._seed = seed
        self._call_index = 0
        self._call_lock = threading.Lock()
        #: Real seconds slept per simulated latency second (default 0:
        #: fully simulated time).  The thread backend's benchmarks set a
        #: small scale so calls genuinely block — an I/O-bound stand-in
        #: the pool can overlap (``time.sleep`` releases the GIL).
        self.wall_latency_scale = 0.0
        # Per-thread: concurrent callers must not read each other's waits.
        self._queue_wait_tls = threading.local()
        # Instrument handles, bound lazily per observability instance so
        # each call pays dict increments instead of registry lookups
        # (``observability`` is often assigned after construction).
        self._span_name = f"llm:{spec.name}"
        self._bound_obs: "Observability | None" = None
        self._t: _BoundTallies | None = None
        self._h_latency = self._h_queue_wait = None

    @property
    def _last_queue_wait(self) -> float:
        return getattr(self._queue_wait_tls, "value", 0.0)

    @_last_queue_wait.setter
    def _last_queue_wait(self, value: float) -> None:
        self._queue_wait_tls.value = value

    def _bind_instruments(self, obs: "Observability") -> None:
        metrics = obs.metrics
        if metrics.enabled:
            # Fresh tallies per binding: if observability is later swapped,
            # the old registry keeps this (frozen) object and the new one
            # gets its own — post-swap events land only on the new sink.
            tallies = _BoundTallies(self.spec.name)
            metrics.register_collector(tallies.collect)
            self._t = tallies
            self._h_latency = metrics.histogram("llm.latency")
            self._h_queue_wait = metrics.histogram("llm.queue_wait")
        else:
            self._t = None
            self._h_latency = self._h_queue_wait = None
        self._bound_obs = obs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def complete(
        self, prompt: str, max_output_tokens: int = 512, no_cache: bool = False
    ) -> LLMResponse:
        """Run one completion; raises on simulated transient failures.

        With a :attr:`cache` attached (and *no_cache* unset), a repeated
        ``(model, prompt, max_output_tokens)`` call returns the memoized
        response at zero cost and latency.  A hit is a pure short-circuit:
        it skips the failure roll and does not consume a call index, so
        enabling the cache changes which physical calls happen — runs that
        must be call-for-call deterministic pass ``no_cache`` (plans do
        this via ``plan.no_cache``).
        """
        cache = self.cache if not no_cache else None
        hit = (
            cache.get(self.spec.name, prompt, max_output_tokens)
            if cache is not None
            else None
        )
        obs = self.observability
        if obs is None:
            if hit is not None:
                return hit
            joined = self._try_join(prompt, max_output_tokens, no_cache)
            if joined is not None:
                return joined
            batched = self._try_batch(prompt, max_output_tokens, no_cache)
            if batched is not None:
                return batched
            response = self._complete(prompt, max_output_tokens)
            if cache is not None:
                cache.put(self.spec.name, prompt, max_output_tokens, response)
            return response
        if obs is not self._bound_obs:
            self._bind_instruments(obs)
        tallies = self._t
        with obs.span(self._span_name, kind="llm", model=self.spec.name) as span:
            if hit is not None:
                span.set_attribute("cached", True)
                if tallies is not None:
                    with tallies.lock:
                        tallies.cache_hits += 1
                return hit
            if cache is not None and tallies is not None:
                with tallies.lock:
                    tallies.cache_misses += 1
            joined = self._try_join(prompt, max_output_tokens, no_cache)
            if joined is not None:
                span.set_attribute("coalesced", True)
                span.set_attribute("residual_wait", joined.usage.latency)
                if tallies is not None:
                    with tallies.lock:
                        tallies.coalesced += 1
                return joined
            batched = self._try_batch(prompt, max_output_tokens, no_cache)
            if batched is not None:
                usage = batched.usage
                span.set_attribute("batched", True)
                span.set_attribute("batch_residual", usage.latency)
                span.set_attribute("input_tokens", usage.input_tokens)
                span.set_attribute("output_tokens", usage.output_tokens)
                span.set_attribute("cost", usage.cost)
                if tallies is not None:
                    # A join is not a physical call (``llm.calls`` counts
                    # model invocations), but its tokens and cost ARE
                    # charged to the caller — per-call attribution.
                    with tallies.lock:
                        tallies.batch_joins += 1
                        tallies.tokens += usage.input_tokens + usage.output_tokens
                        tallies.cost += usage.cost
                return batched
            try:
                response = self._complete(prompt, max_output_tokens)
            except LLMError:
                if tallies is not None:
                    with tallies.lock:
                        tallies.failures += 1
                raise
            if cache is not None:
                cache.put(self.spec.name, prompt, max_output_tokens, response)
            usage = response.usage
            span.set_attribute("input_tokens", usage.input_tokens)
            span.set_attribute("output_tokens", usage.output_tokens)
            span.set_attribute("cost", usage.cost)
            if self._last_queue_wait > 0:
                span.set_attribute("queue_wait", self._last_queue_wait)
            if tallies is not None:
                with tallies.lock:
                    tallies.calls += 1
                    tallies.tokens += usage.input_tokens + usage.output_tokens
                    tallies.cost += usage.cost
                self._h_latency.observe(usage.latency)
                if self._last_queue_wait > 0:
                    self._h_queue_wait.observe(self._last_queue_wait)
            return response

    def _try_join(
        self, prompt: str, max_output_tokens: int, no_cache: bool
    ) -> LLMResponse | None:
        """Attach to an in-flight identical call, paying only the residual.

        Coalescing is a timeline concept: it needs a clock to know *when*
        this call starts, and ``no_cache`` bypasses it just like the cache
        (determinism suites need every physical call to happen).
        """
        if no_cache or self.single_flight is None or self.clock is None:
            return None
        joined = self.single_flight.join(
            self.spec.name, prompt, max_output_tokens, self.clock.now()
        )
        if joined is None:
            return None
        response, residual = joined
        if residual > 0:
            self.clock.advance(residual)
        return response

    def _try_batch(
        self, prompt: str, max_output_tokens: int, no_cache: bool
    ) -> LLMResponse | None:
        """Ride an open micro-batch window, paying only the residual wait.

        Unlike a single-flight join the prompt here is *different* from
        the window leader's, so the joiner computes its own answer and is
        charged its own token cost — only latency and the capacity slot
        are amortized (the batch already holds one).  No failure roll, no
        call index, no capacity reservation: the physical invocation is
        the leader's.  ``no_cache`` bypasses batching like the other
        coalescing rungs.
        """
        if no_cache or self.batcher is None or self.clock is None:
            return None
        input_tokens = count_tokens(prompt)
        if input_tokens > self.spec.context_window:
            # Fall through to the physical path so the proper
            # ContextWindowExceededError is raised without having
            # consumed one of the batch's member slots.
            return None
        now = self.clock.now()
        exec_end = self.batcher.join(self.spec.name, max_output_tokens, now)
        if exec_end is None:
            return None
        text, structured, domain = self._answer(prompt)
        output_tokens = min(count_tokens(text), max_output_tokens)
        solo_latency = self.spec.latency_of(input_tokens, output_tokens)
        residual = max(0.0, exec_end - now)
        usage = LLMUsage(
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            cost=self.spec.cost_of(input_tokens, output_tokens),
            latency=residual,
        )
        self._last_queue_wait = 0.0
        if residual > 0:
            self.clock.advance(residual)
        if self.wall_latency_scale > 0:
            time.sleep(residual * self.wall_latency_scale)
        if self.tracker is not None:
            self.tracker.record(self.spec.name, usage)
        self.batcher.credit(solo_latency - residual, usage.cost)
        return LLMResponse(
            text=text,
            usage=usage,
            model=self.spec.name,
            structured=structured,
            domain=domain,
            batched=True,
        )

    def _complete(self, prompt: str, max_output_tokens: int = 512) -> LLMResponse:
        input_tokens = count_tokens(prompt)
        if input_tokens > self.spec.context_window:
            raise ContextWindowExceededError(
                f"prompt of {input_tokens} tokens exceeds context window "
                f"{self.spec.context_window} of {self.spec.name}"
            )
        with self._call_lock:
            self._call_index += 1
            call_index = self._call_index
        if self.failure_rate > 0:
            failure_roll = self._rng(prompt, salt=f"fail-{call_index}").random()
            if failure_roll < self.failure_rate:
                raise LLMError(
                    f"simulated transient failure from {self.spec.name} "
                    f"(call {call_index})"
                )
        text, structured, domain = self._answer(prompt)
        output_tokens = min(count_tokens(text), max_output_tokens)
        usage = LLMUsage(
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            cost=self.spec.cost_of(input_tokens, output_tokens),
            latency=self.spec.latency_of(input_tokens, output_tokens),
        )
        self._last_queue_wait = 0.0
        start = self.clock.now() if self.clock is not None else 0.0
        if self.capacity is not None and self.clock is not None:
            actual = self.capacity.reserve(self.spec.name, start, usage.latency)
            self._last_queue_wait = actual - start
            if self._last_queue_wait > 0:
                self.clock.advance(self._last_queue_wait)
            start = actual
        if self.clock is not None:
            self.clock.advance(usage.latency)
        if self.wall_latency_scale > 0:
            # Block for real: the simulated latency becomes actual wall
            # time, which is what makes the thread backend's overlap
            # measurable (and the serial backend's lack of it).
            time.sleep(usage.latency * self.wall_latency_scale)
        if self.tracker is not None:
            self.tracker.record(self.spec.name, usage)
        response = LLMResponse(
            text=text,
            usage=usage,
            model=self.spec.name,
            structured=structured,
            domain=domain,
        )
        if self.single_flight is not None and self.clock is not None:
            self.single_flight.record(
                self.spec.name,
                prompt,
                max_output_tokens,
                start,
                start + usage.latency,
                response,
                now=self.clock.now(),
            )
        if self.batcher is not None and self.clock is not None:
            # This physical call anchors a micro-batch window: later
            # batchable calls whose simulated starts fall inside it ride
            # along instead of reserving their own capacity slot.
            self.batcher.open(
                self.spec.name, max_output_tokens, start, start + usage.latency
            )
            tallies = self._t
            if tallies is not None:
                with tallies.lock:
                    tallies.batch_windows += 1
        return response

    # ------------------------------------------------------------------
    # Task routing
    # ------------------------------------------------------------------
    def _answer(self, prompt: str) -> tuple[str, Any, str]:
        directives, body = _parse_directives(prompt)
        task = directives.get("TASK", "").upper()
        domain = self.spec.domain if task in _HR_TASKS else "general"
        if task == "LIST_CITIES":
            return self._list_cities(directives, prompt)
        if task == "RELATED_TITLES":
            return self._related_titles(directives, prompt)
        if task == "LIST_SKILLS":
            return self._list_skills(directives, prompt)
        if task == "EXTRACT":
            return self._extract(directives, body, prompt)
        if task == "SUMMARIZE":
            return self._summarize(directives, body)
        if task == "CLASSIFY":
            return self._classify(directives, body, prompt)
        if task == "Q2NL":
            return self._q2nl(directives, body)
        if task == "MATCH_EXPLAIN":
            return self._match_explain(directives)
        if task == "GENERATE":
            return self._generate(body or prompt)
        return self._generate(prompt)

    # -- knowledge-backed list tasks -----------------------------------
    def _list_cities(self, directives: dict[str, str], prompt: str) -> tuple[str, Any, str]:
        region = directives.get("REGION", "")
        cities = knowledge.lookup_region(region)
        quality = self.spec.quality_for("general")
        if cities is None:
            return f"I do not know the cities of {region!r}.", [], "general"
        answer = self._degrade_list(list(cities), knowledge.NOISE_CITIES, quality, prompt)
        return ", ".join(answer), answer, "general"

    def _related_titles(self, directives: dict[str, str], prompt: str) -> tuple[str, Any, str]:
        title = directives.get("TITLE", "")
        titles = knowledge.lookup_related_titles(title)
        quality = self.spec.quality_for("hr")
        if titles is None:
            fallback = [title.title()] if title else []
            return ", ".join(fallback), fallback, "hr"
        answer = self._degrade_list(list(titles), knowledge.NOISE_TITLES, quality, prompt)
        return ", ".join(answer), answer, "hr"

    def _list_skills(self, directives: dict[str, str], prompt: str) -> tuple[str, Any, str]:
        title = directives.get("TITLE", "")
        skills = knowledge.lookup_skills(title)
        quality = self.spec.quality_for("hr")
        if skills is None:
            return f"I do not know the core skills for {title!r}.", [], "hr"
        answer = self._degrade_list(list(skills), knowledge.NOISE_SKILLS, quality, prompt)
        return ", ".join(answer), answer, "hr"

    # -- text tasks -----------------------------------------------------
    def _extract(
        self, directives: dict[str, str], body: str, prompt: str
    ) -> tuple[str, Any, str]:
        fields = [f.strip().lower() for f in directives.get("FIELDS", "").split(",") if f.strip()]
        text = directives.get("TEXT", body)
        quality = self.spec.quality_for("hr")
        extracted: dict[str, Any] = {}
        lowered = text.lower()
        if "title" in fields or not fields:
            extracted["title"] = _find_title(lowered)
        if "location" in fields or not fields:
            extracted["location"] = _find_location(lowered)
        if "skills" in fields:
            extracted["skills"] = _find_skills(lowered)
        # Low-quality models miss secondary fields deterministically.
        rng = self._rng(prompt, salt="extract")
        for key in list(extracted):
            if extracted[key] and rng.random() > quality and key != "title":
                extracted[key] = None
        return json.dumps(extracted), extracted, "hr"

    def _summarize(self, directives: dict[str, str], body: str) -> tuple[str, Any, str]:
        # Multiline TEXT spans the directive line plus the remaining body.
        text = "\n".join(part for part in (directives.get("TEXT", ""), body) if part)
        quality = self.spec.quality_for("general")
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if len(lines) > 1:
            # Extractive over items: keep the head of each line so every
            # summarized row/document contributes content.
            per_line = max(4, int(4 + 8 * quality))
            kept_lines = lines[: max(2, int(len(lines) * max(quality, 0.3)))]
            snippets = []
            for line in kept_lines:
                words = line.split()
                snippet = " ".join(words[:per_line])
                if len(words) > per_line:
                    snippet += " ..."
                snippets.append(snippet)
            summary = " | ".join(snippets)
        else:
            words = text.split()
            keep = max(5, int(len(words) * min(0.3, 0.1 + 0.2 * quality)))
            summary = " ".join(words[:keep])
            if len(words) > keep:
                summary += " ..."
        return f"Summary: {summary}", summary, "general"

    def _classify(
        self, directives: dict[str, str], body: str, prompt: str
    ) -> tuple[str, Any, str]:
        labels = [l.strip() for l in directives.get("LABELS", "").split(",") if l.strip()]
        text = directives.get("TEXT", body).lower()
        if not labels:
            raise LLMError("CLASSIFY task requires a LABELS directive")
        chosen = _heuristic_label(text, labels)
        quality = self.spec.quality_for("general")
        rng = self._rng(prompt, salt="classify")
        if rng.random() > quality and len(labels) > 1:
            wrong = [label for label in labels if label != chosen]
            chosen = wrong[int(rng.integers(len(wrong)))]
        return chosen, chosen, "general"

    def _q2nl(self, directives: dict[str, str], body: str) -> tuple[str, Any, str]:
        fragment = directives.get("FRAGMENT", body)
        text = f"List the {fragment.strip()}."
        return text, text, "general"

    def _match_explain(self, directives: dict[str, str]) -> tuple[str, Any, str]:
        """Explain why a job matches a seeker (the explanation module)."""
        seeker_title = directives.get("SEEKER_TITLE", "the seeker's background")
        job_title = directives.get("JOB_TITLE", "this role")
        shared = [s.strip() for s in directives.get("SHARED_SKILLS", "").split(",") if s.strip()]
        location = directives.get("LOCATION_FIT", "")
        parts = [f"{job_title} fits a {seeker_title} profile"]
        if shared:
            quality = self.spec.quality_for("hr")
            keep = max(1, int(round(len(shared) * quality)))
            parts.append(f"shares the key skills {', '.join(shared[:keep])}")
        if location:
            parts.append(location)
        text = "; ".join(parts) + "."
        return text, text, "hr"

    def _generate(self, prompt: str) -> tuple[str, Any, str]:
        words = prompt.split()
        opener = " ".join(words[:12])
        text = (
            f"Considering your request ({opener} ...), here is a concise, "
            f"helpful response produced by {self.spec.name}."
        )
        return text, None, "general"

    # ------------------------------------------------------------------
    # Degradation machinery
    # ------------------------------------------------------------------
    def _rng(self, prompt: str, salt: str = "") -> np.random.Generator:
        digest = hashlib.md5(
            f"{self.spec.name}|{self._seed}|{salt}|{prompt}".encode("utf-8")
        ).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def _degrade_list(
        self,
        truth: list[str],
        noise_pool: Sequence[str],
        quality: float,
        prompt: str,
    ) -> list[str]:
        """Drop items with probability 1-quality; maybe add one noise item."""
        rng = self._rng(prompt, salt="list")
        kept = [item for item in truth if rng.random() <= quality]
        if not kept and truth:
            kept = [truth[0]]  # even weak models recall the most salient fact
        if noise_pool and rng.random() > quality:
            kept.append(noise_pool[int(rng.integers(len(noise_pool)))])
        return kept


# ----------------------------------------------------------------------
# Prompt/extraction helpers
# ----------------------------------------------------------------------
def _parse_directives(prompt: str) -> tuple[dict[str, str], str]:
    """Split ``KEY: value`` directive lines from the free-text body."""
    directives: dict[str, str] = {}
    body_lines: list[str] = []
    for line in prompt.splitlines():
        match = _DIRECTIVE_RE.match(line.strip())
        if match and match.group(1).isupper():
            directives[match.group(1)] = match.group(2).strip()
        else:
            body_lines.append(line)
    return directives, "\n".join(body_lines).strip()


def _find_title(text: str) -> str | None:
    for canonical in knowledge.RELATED_TITLES:
        if canonical in text:
            return canonical.title()
    for canonical, variants in knowledge.RELATED_TITLES.items():
        for variant in variants:
            if variant.lower() in text:
                return canonical.title()
    return None


def _find_location(text: str) -> str | None:
    for region, cities in knowledge.REGION_CITIES.items():
        if region in text:
            return region
        for city in cities:
            if city.lower() in text:
                return city
    return None


def _find_skills(text: str) -> list[str]:
    found = []
    for skills in knowledge.TITLE_SKILLS.values():
        for skill in skills:
            if skill in text and skill not in found:
                found.append(skill)
    return found


def _heuristic_label(text: str, labels: list[str]) -> str:
    """Keyword routing used by the intent classifier."""
    rules = {
        "summarize": ("summarize", "summary", "overview", "tl;dr"),
        "list_edit": ("add ", "remove ", "create a list", "shortlist"),
        "rank": ("rank", "top candidates", "best candidates", "order by fit"),
        "cluster": ("cluster", "group the candidates", "segment the"),
        "open_query": ("how many", "which", "what", "who", "show", "find", "average", "count"),
        "greeting": ("hello", "hi ", "hey"),
    }
    for label in labels:
        for keyword in rules.get(label, ()):
            if keyword in text:
                return label
    return labels[0]
