"""Cross-plan LLM call batching: distinct prompts, one model invocation.

Production inference stacks squeeze throughput out of shared model
endpoints by *batching*: requests that arrive within a short window are
executed as one forward pass, so a fleet of concurrent agent plans pays
roughly one call's latency — and one concurrency slot — for many calls.
:class:`LLMBatcher` models that lever on the simulated timeline.

It is the third member of the reuse ladder, each rung trading
generality for savings:

* :class:`~repro.llm.cache.LLMCache` — *identical* call, any time after
  the first completed: zero cost, zero latency, unbounded reuse window.
* :class:`~repro.llm.singleflight.SingleFlight` — *identical* call
  overlapping the leader's in-flight interval: zero cost, residual
  latency, shared response.
* :class:`LLMBatcher` — **distinct-but-batchable** call (same model,
  same params, *different prompt*) landing inside an open micro-batch
  window: the call still computes its own answer and is charged its own
  token cost (**per-call cost attribution**), but it rides the batch's
  single capacity slot and pays only the **residual** of the shared
  batch execution instead of a full solo latency (**amortized
  latency**).

Mechanics on the simulated clock: every physical call opens a batch
window at its (post-queueing) start ``t`` covering
``[t, t + max_batch_wait)`` and executing until ``t + latency``.  A
later call to the same ``(model, max_output_tokens)`` whose own start
falls inside the window — and before the batch execution completes, and
while the batch has spare ``max_batch_size`` room — joins instead of
invoking the model: no capacity reservation, no failure roll, latency =
``exec_end - now``.  Windows may be deterministically jittered from a
seed (``jitter``) so co-located fleets do not flush in lockstep.

Like the cache and single-flight, batching is strictly opt-in
(``Blueprint.run_fleet(batching=...)`` / ``--batch``), and plans that
need call-for-call determinism bypass it via ``no_cache`` exactly as
they bypass the other two rungs.  Under the serial backend batch
membership is a pure function of the submission list; concurrent
backends may interleave joins differently run to run (the same caveat
single-flight carries), while each join's accounting stays individually
consistent.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class BatchPolicy:
    """Per-model batching knobs.

    ``max_batch_size`` counts *members* (leader included); a window with
    a full complement stops accepting joins.  ``max_batch_wait`` is the
    window length in simulated seconds — how long after the leader's
    start a batchable call may still ride along (never past the batch's
    own completion).
    """

    max_batch_size: int = 8
    max_batch_wait: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1: {self.max_batch_size}"
            )
        if self.max_batch_wait < 0:
            raise ValueError(
                f"max_batch_wait must be >= 0: {self.max_batch_wait}"
            )


@dataclass(frozen=True)
class BatchStats:
    """Point-in-time tallies of one :class:`LLMBatcher`."""

    #: Windows opened (every physical call opens one).
    batches: int
    #: Calls that rode an open window instead of invoking the model.
    joins: int
    #: Live windows currently tracked.
    entries: int
    #: Modeled latency the joins did not pay (solo latency minus the
    #: residual each join actually waited).
    saved_latency: float
    #: Token cost attributed to joins — *paid*, not saved: batching
    #: amortizes latency and capacity slots, never the bill.
    attributed_cost: float
    #: Largest batch observed (1 = no call ever joined).
    peak_batch: int = 1

    @property
    def join_rate(self) -> float:
        total = self.batches + self.joins
        return self.joins / total if total else 0.0

    @property
    def mean_batch(self) -> float:
        return (self.batches + self.joins) / self.batches if self.batches else 0.0


class _Batch:
    """One open micro-batch window."""

    __slots__ = ("start", "window_end", "exec_end", "size")

    def __init__(self, start: float, window_end: float, exec_end: float) -> None:
        self.start = start
        self.window_end = window_end
        self.exec_end = exec_end
        self.size = 1  # the leader


class LLMBatcher:
    """Coalesces batchable LLM calls into shared micro-batch windows.

    Example — a distinct prompt landing inside the window pays only the
    residual of the shared execution:
        >>> batcher = LLMBatcher(max_batch_wait=0.5)
        >>> batcher.open("mega-s", 512, start=0.0, exec_end=2.0)
        >>> batcher.join("mega-s", 512, now=0.25)  # a *different* prompt
        2.0
        >>> batcher.join("mega-s", 512, now=0.75) is None  # window closed
        True
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_batch_wait: float = 0.25,
        per_model: Mapping[str, BatchPolicy] | None = None,
        jitter: float = 0.0,
        seed: int = 0,
        max_entries: int = 512,
    ) -> None:
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {jitter}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0: {max_entries}")
        self._default = BatchPolicy(max_batch_size, max_batch_wait)
        self._per_model = dict(per_model or {})
        #: Fractional window-length jitter: each opened window's wait is
        #: scaled by ``1 + jitter * (u - 0.5)`` with ``u`` drawn
        #: deterministically from ``md5(seed | model | window-ordinal)``,
        #: so same-seed runs flush identically while distinct seeds
        #: de-synchronize their flush instants.
        self._jitter = jitter
        self._seed = seed
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple[str, int], _Batch] = OrderedDict()
        self._lock = threading.Lock()
        self._batches = 0
        self._joins = 0
        self._saved_latency = 0.0
        self._attributed_cost = 0.0
        self._peak_batch = 0

    def policy_for(self, model: str) -> BatchPolicy:
        """The effective policy for *model* (per-model override or default)."""
        return self._per_model.get(model, self._default)

    # ------------------------------------------------------------------
    # Window lifecycle
    # ------------------------------------------------------------------
    def open(
        self, model: str, max_output_tokens: int, start: float, exec_end: float
    ) -> None:
        """Open a micro-batch window for a physical call's invocation.

        The window accepts joins over ``[start, start + wait)`` (wait
        possibly jittered, and never past *exec_end* — a completed batch
        cannot admit members).  Opening replaces any previous window for
        the same ``(model, max_output_tokens)`` key: the newest physical
        call is the one a later arrival could physically share a forward
        pass with.
        """
        policy = self.policy_for(model)
        with self._lock:
            self._batches += 1
            wait = policy.max_batch_wait
            if self._jitter > 0.0:
                digest = hashlib.md5(
                    f"{self._seed}|{model}|{self._batches}".encode("utf-8")
                ).digest()
                u = int.from_bytes(digest[:8], "little") / 2**64
                wait *= 1.0 + self._jitter * (u - 0.5)
            window_end = min(start + wait, exec_end)
            key = (model, max_output_tokens)
            self._entries[key] = _Batch(start, window_end, exec_end)
            self._entries.move_to_end(key)
            if self._peak_batch < 1:
                self._peak_batch = 1
            self._evict(now=start)

    def join(self, model: str, max_output_tokens: int, now: float) -> float | None:
        """Ride the open window covering *now*; returns the batch's
        completion instant (the joiner's modeled finish), or None.

        Window semantics are half-open like single-flight's: a call
        starting exactly at ``window_end`` (or at ``exec_end``) does not
        join.  A successful join consumes one of the batch's
        ``max_batch_size`` member slots.
        """
        key = (model, max_output_tokens)
        policy = self.policy_for(model)
        with self._lock:
            batch = self._entries.get(key)
            if batch is None:
                return None
            if not batch.start <= now < batch.window_end:
                return None
            if now >= batch.exec_end or batch.size >= policy.max_batch_size:
                return None
            batch.size += 1
            self._joins += 1
            if batch.size > self._peak_batch:
                self._peak_batch = batch.size
            self._entries.move_to_end(key)
            return batch.exec_end

    def credit(self, saved_latency: float, cost: float) -> None:
        """Tally one join's amortization (called by the joining client)."""
        with self._lock:
            self._saved_latency += max(0.0, saved_latency)
            self._attributed_cost += cost

    def _evict(self, now: float) -> None:
        """Drop least-recently-used windows, in-flight ones exempt.

        Mirrors the single-flight eviction fix: a window whose
        execution has not completed by *now* may still cover later
        joiners' starts, so only windows with ``exec_end <= now`` are
        evictable and the map may transiently exceed ``max_entries``
        while many batches are live.
        """
        if len(self._entries) <= self._max_entries:
            return
        for key in list(self._entries):
            if len(self._entries) <= self._max_entries:
                break
            if self._entries[key].exec_end <= now:
                del self._entries[key]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def stats(self) -> BatchStats:
        with self._lock:
            return BatchStats(
                batches=self._batches,
                joins=self._joins,
                entries=len(self._entries),
                saved_latency=self._saved_latency,
                attributed_cost=self._attributed_cost,
                peak_batch=self._peak_batch,
            )

    def clear(self) -> None:
        """Drop all windows (tallies survive: they describe history)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
