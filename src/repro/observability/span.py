"""Structured tracing: spans over the plan -> node -> agent -> call tree.

A span is one timed unit of work.  The coordinator opens a ``plan`` span,
each DAG node opens a ``node`` span under it, the driven agent opens an
``agent`` span under that, and LLM completions / storage queries open leaf
spans — so one case-study conversation dumps as a single tree whose shape
*is* the execution.

Spans are stamped from the shared :class:`~repro.clock.SimClock` and get
sequential ids, so traces of a seeded run are deterministic and replay
byte-for-byte — the same property the resilience subsystem guarantees for
stream exports, extended to the instrumentation itself.

Parenting is implicit: each thread keeps a stack of open spans, and a new
span attaches under whatever is open on *its* thread (worker-pool agents
start fresh roots rather than guessing a cross-thread parent).

Everything here sits on the runtime's hottest paths, so the structure is
a *lazy ledger*: the tracer appends compact slotted records (the
:class:`Span` handles themselves — callers hold list identity into the
ledger), span names are interned, attribute dicts are allocated only for
spans that carry attributes, and the parent/children index plus the
materialized span view are built once per ledger generation and cached
until the ledger grows.  Spans act as their own context managers (no
wrapper allocation) and ids stay integers until export renders them as
``sp00042``.
"""

from __future__ import annotations

import itertools
import math
import sys
import threading
from typing import Any

from ..clock import SimClock


def sanitize_value(value: Any) -> Any:
    """Make one attribute JSON-safe and finite.

    Non-finite floats become their string names (``"inf"``/``"nan"``) so
    exports never carry tokens a strict JSON parser rejects; containers
    are sanitized recursively; everything non-primitive is stringified.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, dict):
        return {str(k): sanitize_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_value(v) for v in value]
    return str(value)


def render_span_id(span_id: int | None) -> str | None:
    """The external form of a span id (``sp00042``)."""
    return None if span_id is None else f"sp{span_id:05d}"


class _ThreadState:
    """A thread's innermost open span, plus the tracer's clock.

    Open spans form a linked chain through ``Span._prev`` rather than an
    explicit stack: opening a span is one pointer swap, closing it swaps
    back.  Carrying the clock (and its pre-bound ``now`` method) here
    lets ``Span.__exit__`` stamp the end time without a back-reference
    to the tracer.
    """

    __slots__ = ("current", "clock", "now")

    def __init__(self) -> None:
        self.current: Span | None = None


class Span:
    """One timed, attributed unit of work in the trace tree.

    A span is its own context manager: ``__exit__`` stamps the end time,
    records an in-flight exception as the span's error (and lets it
    propagate), and pops the tracer's thread-local stack.
    """

    __slots__ = (
        "span_id", "name", "kind", "parent_id", "start", "end",
        "error", "_attrs", "_state", "_prev",
    )

    def __init__(
        self,
        span_id: int = 0,
        name: str = "",
        kind: str = "internal",  # plan | node | agent | llm | storage | internal
        parent_id: int | None = None,
        start: float = 0.0,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.kind = kind
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.error: str | None = None
        self._attrs: dict[str, Any] | None = attributes if attributes else None
        self._state: _ThreadState | None = None
        self._prev: Span | None = None

    @property
    def status(self) -> str:
        """``"error"`` once an error is recorded, else ``"ok"``."""
        return "ok" if self.error is None else "error"

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def span_ref(self) -> str:
        """The exported id string, e.g. ``sp00042``."""
        return f"sp{self.span_id:05d}"

    @property
    def attributes(self) -> dict[str, Any]:
        """The span's attribute dict, allocated on first touch.

        Most spans never carry attributes, so the ledger record holds
        ``None`` until someone actually reads or writes one.
        """
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        return attrs

    def set_attribute(self, key: str, value: Any) -> None:
        # Values are stored raw; ``to_dict`` sanitizes at the export
        # boundary (sanitize_value is idempotent, so eager callers that
        # pre-sanitize stay byte-identical).
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        attrs[key] = value

    def set_error(self, error: str) -> None:
        self.error = error

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        state = self._state
        if state is not None:
            # ``state.now`` is the clock's bound ``now`` (not ``_now``):
            # under the thread backend the closing thread may sit inside
            # a clock branch overlay, and the end stamp must be
            # branch-local time.
            self.end = state.now()
            if state.current is self:
                state.current = self._prev
            else:  # out-of-order close: also drop everything opened above
                walk = state.current
                while walk is not None and walk is not self:
                    walk = walk._prev
                if walk is self:
                    state.current = self._prev
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_ref}, name={self.name!r}, kind={self.kind!r}, "
            f"status={self.status!r}, duration={self.duration:.3f})"
        )

    def to_dict(self) -> dict[str, Any]:
        # Attributes are stored raw (the hot path cannot afford a
        # sanitizing loop per span); the export boundary is where the
        # no-``Infinity``/``NaN`` guarantee holds.
        attrs = self._attrs
        return {
            "span_id": self.span_ref,
            "name": self.name,
            "kind": self.kind,
            "parent_id": render_span_id(self.parent_id),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": (
                {} if attrs is None else {k: sanitize_value(v) for k, v in attrs.items()}
            ),
        }


class NoopSpan(Span):
    """The shared do-nothing span yielded while tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_error(self, error: str) -> None:
        pass

    def __exit__(self, *exc_info: Any) -> bool:
        return False


#: Shared singleton: a disabled tracing site costs one attribute check
#: and no allocation.
NOOP_SPAN = NoopSpan(name="noop")


class _SpanScope:
    """Re-enters a suspended span for one scope (see :meth:`Tracer.use`)."""

    __slots__ = ("_tracer", "_span", "_saved", "_saved_prev", "_noop")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._noop = not tracer.enabled or span is NOOP_SPAN

    def __enter__(self) -> Span:
        if self._noop:
            return self._span
        state = self._tracer._state()
        self._saved = state.current
        self._saved_prev = self._span._prev
        self._span._prev = self._saved
        state.current = self._span
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._noop:
            return False
        state = self._tracer._state()
        # The span may have been closed inside the scope (its final
        # step): Span.__exit__ already popped it, so only restore when
        # it is still on the chain.
        walk = state.current
        while walk is not None and walk is not self._span:
            walk = walk._prev
        if walk is self._span:
            state.current = self._saved
        if self._span.end is None:
            self._span._prev = self._saved_prev
        return False


class _AdoptScope:
    """Makes a span current on *another* thread (see :meth:`Tracer.adopt`).

    Unlike :class:`_SpanScope` it never touches ``span._prev``: the span
    stays owned by (and chained on) its opening thread, while the adopting
    worker only points its own thread-local ``current`` at it so children
    opened there parent correctly.  Several workers may adopt the same
    span concurrently.
    """

    __slots__ = ("_tracer", "_span", "_saved", "_noop")

    def __init__(self, tracer: "Tracer", span: "Span | None") -> None:
        self._tracer = tracer
        self._span = span
        self._noop = not tracer.enabled or span is None or span is NOOP_SPAN

    def __enter__(self) -> "Span | None":
        if self._noop:
            return self._span
        state = self._tracer._state()
        self._saved = state.current
        state.current = self._span
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._noop:
            return False
        state = self._tracer._state()
        if state.current is self._span:
            state.current = self._saved
        return False


class Tracer:
    """Creates, nests, and retains spans over a simulated clock.

    Example:
        >>> clock = SimClock()
        >>> tracer = Tracer(clock)
        >>> with tracer.span("plan", kind="plan") as outer:
        ...     _ = clock.advance(1.0)
        ...     with tracer.span("node", kind="node") as inner:
        ...         _ = clock.advance(0.5)
        >>> inner.parent_id == outer.span_id
        True
        >>> (outer.duration, inner.duration)
        (1.5, 0.5)
    """

    def __init__(self, clock: SimClock | None = None, enabled: bool = True) -> None:
        self.clock = clock or SimClock()
        self.enabled = enabled
        self._spans: list[Span] = []
        # itertools.count and list.append are atomic under the GIL, so
        # span creation needs no lock of its own.
        self._ids = itertools.count()
        self._active = threading.local()
        # Generation-cached views: rebuilt only when the ledger has
        # grown since the last materialization (spans are append-only
        # and parent ids are fixed at creation, so length is the
        # generation counter).
        self._view: list[Span] = []
        self._view_len = 0
        self._roots_view: list[Span] = []
        self._children_view: dict[int, list[Span]] = {}

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def _state(self) -> _ThreadState:
        state = getattr(self._active, "state", None)
        if state is None:
            state = self._active.state = _ThreadState()
            state.clock = self.clock
            state.now = self.clock.now
        return state

    def start_span(
        self,
        name: str,
        kind: str = "internal",
        parent_id: int | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a span under the current thread's innermost open span.

        The returned span is a context manager; ``with tracer.span(...)``
        is the usual way to close it again.  When the tracer is disabled
        the shared no-op span is returned (callers can still call
        ``set_attribute`` on it, which discards) and nothing is recorded.

        The body builds the span field-by-field rather than through
        ``Span.__init__``, and attribute kwargs are stored raw (exports
        sanitize): this runs for every traced unit of work, and every
        extra call frame is measurable against the <5% overhead budget.
        """
        if not self.enabled:
            return NOOP_SPAN
        state = getattr(self._active, "state", None)
        if state is None:
            state = self._active.state = _ThreadState()
            state.clock = self.clock
            state.now = self.clock.now
        parent = state.current
        if parent_id is None and parent is not None:
            parent_id = parent.span_id
        span = Span.__new__(Span)
        span.span_id = next(self._ids)
        # Names repeat heavily (one per node per plan), so interning
        # dedups the ledger's string storage and makes find()/export
        # comparisons pointer checks.
        span.name = sys.intern(name)
        span.kind = kind
        span.parent_id = parent_id
        span.start = state.now()
        span.end = None
        span.error = None
        span._attrs = attributes if attributes else None
        span._state = state
        span._prev = parent
        state.current = span
        self._spans.append(span)
        return span

    #: ``span`` is the context-manager spelling; both names open a span.
    span = start_span

    def end_span(self, span: Span) -> None:
        """Close *span* explicitly (the context-manager exit does this)."""
        span.__exit__(None, None, None)

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        return self._state().current

    def suspend(self, span: Span) -> None:
        """Detach *span* from the open-span chain without closing it.

        The fleet runtime opens one plan span per admitted plan but
        interleaves their execution: a suspended span stays open (no end
        stamp) while other plans' spans take the stack, and re-enters via
        :meth:`use` for each of its execution steps.  Anything opened
        above *span* is detached with it (there should be nothing).
        """
        if not self.enabled or span is NOOP_SPAN:
            return
        state = self._state()
        walk = state.current
        while walk is not None and walk is not span:
            walk = walk._prev
        if walk is span:
            state.current = span._prev

    def use(self, span: Span) -> "_SpanScope":
        """Context manager making a suspended *span* current again.

        New spans opened inside the scope parent under *span*; on exit
        the previous chain is restored.  Closing *span* inside the scope
        (its final step) is safe — ``Span.__exit__`` already handles
        popping, and the scope detects it.
        """
        return _SpanScope(self, span)

    def adopt(self, span: "Span | None") -> "_AdoptScope":
        """Context manager parenting new spans under *span* cross-thread.

        The explicit span-context transfer for pool workers: the active
        chain is thread-local, so a span opened on a worker thread would
        otherwise silently lose its parent.  The backend captures the
        parent span on the scheduling thread and each worker adopts it —
        spans it opens nest under *span* without mutating the parent's
        own (concurrently shared) chain links.  ``adopt(None)`` is a
        no-op scope, so callers need not special-case rootless work.
        """
        return _AdoptScope(self, span)

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------
    def _materialize(self) -> list[Span]:
        """The cached span view, rebuilt only when the ledger has grown.

        One pass builds the creation-order snapshot, the root list, and
        the parent -> children index together, so exports and renderers
        (flamegraph, critical path) walk the tree in O(n) instead of
        scanning the full ledger per parent.
        """
        spans = self._spans
        if len(spans) != self._view_len:
            snapshot = list(spans)
            roots: list[Span] = []
            children: dict[int, list[Span]] = {}
            for s in snapshot:
                pid = s.parent_id
                if pid is None:
                    roots.append(s)
                else:
                    bucket = children.get(pid)
                    if bucket is None:
                        children[pid] = [s]
                    else:
                        bucket.append(s)
            self._roots_view = roots
            self._children_view = children
            self._view = snapshot
            self._view_len = len(snapshot)
        return self._view

    def spans(self) -> list[Span]:
        """Every span ever started, in creation order.

        The returned list is the cached materialized view — treat it as
        read-only (it is shared between callers until the ledger grows).
        """
        return self._materialize()

    def roots(self) -> list[Span]:
        self._materialize()
        return list(self._roots_view)

    def children(self, span_id: int) -> list[Span]:
        self._materialize()
        bucket = self._children_view.get(span_id)
        return list(bucket) if bucket else []

    def find(self, name: str | None = None, kind: str | None = None) -> list[Span]:
        """Spans matching a name and/or kind filter."""
        return [
            s
            for s in self._spans
            if (name is None or s.name == name) and (kind is None or s.kind == kind)
        ]

    def reset(self) -> None:
        """Forget every span (tests and fresh benchmark phases)."""
        self._spans = []
        self._ids = itertools.count()
        self._active = threading.local()
        self._view = []
        self._view_len = 0
        self._roots_view = []
        self._children_view = {}
