"""Observability: plan-level tracing and metrics for the blueprint.

The measurement substrate the ROADMAP's performance work builds on: a
structured :class:`Tracer` (spans with parent/child links over
plan -> node -> agent -> LLM-call / storage-query, stamped from the
:class:`~repro.clock.SimClock` so traces are deterministic and
replayable) and a :class:`MetricsRegistry` (counters, gauges, histograms
with exact p50/p95/p99).

:class:`Observability` bundles one tracer + one registry, which is the
handle the runtime threads through agent contexts, the model catalog,
the stream store, and databases.  Disable it wholesale with
``Observability(enabled=False)`` — every instrumentation site then
short-circuits, which is what the overhead benchmark measures against.
"""

from __future__ import annotations

from typing import Any

from ..clock import SimClock
from .export import (
    critical_path,
    export_trace,
    export_trace_json,
    render_critical_path,
    render_flamegraph,
    render_metrics,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .span import Span, Tracer


class Observability:
    """One tracer and one metrics registry sharing a clock.

    Example:
        >>> obs = Observability()
        >>> with obs.tracer.span("plan", kind="plan"):
        ...     obs.metrics.inc("plan.started")
        >>> obs.metrics.snapshot()["plan.started"]
        1.0
    """

    def __init__(self, clock: SimClock | None = None, enabled: bool = True) -> None:
        self.clock = clock or SimClock()
        self.enabled = enabled
        self.tracer = Tracer(self.clock, enabled=enabled)
        self.metrics = MetricsRegistry(enabled=enabled)

    # Convenience passthroughs so instrumented layers hold one handle.
    def span(self, name: str, kind: str = "internal", **attributes: Any):
        return self.tracer.span(name, kind=kind, **attributes)

    def export(self) -> dict[str, Any]:
        return export_trace(self.tracer, self.metrics)

    def export_json(self) -> str:
        return export_trace_json(self.tracer, self.metrics)

    def flamegraph(self) -> str:
        return render_flamegraph(self.tracer)

    def critical_path_report(self) -> str:
        return render_critical_path(self.tracer)

    def metrics_report(self) -> str:
        return render_metrics(self.metrics)

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "critical_path",
    "export_trace",
    "export_trace_json",
    "render_critical_path",
    "render_flamegraph",
    "render_metrics",
]
