"""The metrics registry: counters, gauges, and histograms.

"You cannot optimize what you cannot measure": the blueprint's QoS loop
(Section V-H) records charges, but scaling decisions need *aggregates* —
how many tokens each model burned, how often breakers tripped, where the
p99 latency lives.  A :class:`MetricsRegistry` collects those aggregates
from every instrumented layer (coordinator, agents, budget, resilience,
LLM clients, streams, storage) into one deterministic snapshot.

Determinism rules:

* values are only ever derived from the :class:`~repro.clock.SimClock`
  and the (seeded) workload, never from wall time or global randomness;
* snapshots are sorted by metric name and label so two identical runs
  serialize byte-for-byte;
* non-finite observations (``inf``/``nan`` — e.g. the remaining headroom
  of an unconstrained budget) are **dropped**, not recorded, and tallied
  under the ``observability.dropped_nonfinite`` counter so silently-bad
  instrumentation stays visible.  Exports therefore never contain
  ``Infinity`` or ``NaN`` tokens.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Mapping

#: Counter bumped (on the same registry) whenever a non-finite value is
#: offered to any instrument.
DROPPED_METRIC = "observability.dropped_nonfinite"


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    # Fast paths: instrument calls pass labels as kwargs, so keys are
    # already strings, and one label is by far the common case.
    if not labels:
        return ()
    if len(labels) == 1:
        [(k, v)] = labels.items()
        return ((k, v if type(v) is str else str(v)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_key(name: str, **labels: Any) -> str:
    """The flattened ``name{k=v,...}`` form a snapshot uses for *name*."""
    return f"{name}{_render_labels(_label_key(labels))}"


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[tuple[tuple[str, str], ...], float] = {}
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {value}")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            items = sorted(self._values.items())
        return {f"{self.name}{_render_labels(key)}": value for key, value in items}

    def bind(self, **labels: Any) -> "BoundCounter":
        """A pre-resolved handle for hot paths: the label key is computed
        once at bind time, so each increment is just a locked dict add."""
        return BoundCounter(self, _label_key(labels))


class BoundCounter:
    """A counter pinned to one label set (see :meth:`Counter.bind`).

    Skips the validity checks of the registry entry points — callers
    increment by event counts they control, not by measured values.
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: tuple[tuple[str, str], ...]) -> None:
        self._counter = counter
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        counter = self._counter
        with counter._lock:
            counter._values[self._key] = counter._values.get(self._key, 0.0) + value


class Gauge:
    """A point-in-time value (last write wins), optionally labeled."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[tuple[tuple[str, str], ...], float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float | None:
        with self._lock:
            return self._values.get(_label_key(labels))

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            items = sorted(self._values.items())
        return {f"{self.name}{_render_labels(key)}": value for key, value in items}


def _nearest_rank(p: float, n: int) -> int:
    """1-based nearest-rank index: ``ceil(p/100 * n)``, clamped to [1, n].

    Computed as ``ceil(p * n / 100 - eps)`` because the naive float product
    can land epsilon *above* an exact integer and ceil one rank too high —
    e.g. ``99.9 / 100 * 1000`` is 999.0000000000001, so p99.9 of 1000
    observations would wrongly pick rank 1000 instead of 999.
    """
    return min(n, max(1, math.ceil(p * n / 100.0 - 1e-9)))


class Histogram:
    """A distribution with exact nearest-rank percentiles.

    Observations are kept in full (runs are bounded and simulated), which
    makes p50/p95/p99 exact and deterministic rather than bucketed
    approximations.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._observations: list[float] = []
        self._lock = threading.Lock()
        # Cached sorted copy, valid while the observation count is
        # unchanged.  Observations are append-only, so the length *is*
        # the dirty flag: ``observe`` never touches the cache fields and
        # stays a single lock-free append.
        self._sorted: list[float] = []
        self._sorted_len = 0

    def observe(self, value: float) -> None:
        # list.append is atomic under the GIL; readers copy under the lock.
        self._observations.append(float(value))

    def __len__(self) -> int:
        with self._lock:
            return len(self._observations)

    def _ordered(self) -> list[float]:
        """The sorted observations, re-sorted only after new data.

        Callers must treat the result as read-only: repeated percentile
        pulls (metrics collectors, bench gates) share one sorted buffer
        until the next observation lands.
        """
        with self._lock:
            observations = self._observations
            if len(observations) != self._sorted_len:
                snapshot = list(observations)
                self._sorted = sorted(snapshot)
                self._sorted_len = len(snapshot)
            return self._sorted

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile of everything observed (None if empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        ordered = self._ordered()
        if not ordered:
            return None
        return ordered[_nearest_rank(p, len(ordered)) - 1]

    def summary(self) -> dict[str, float]:
        """count/sum/min/max plus the p50/p95/p99 the scaling studies use."""
        ordered = self._ordered()
        if not ordered:
            return {"count": 0}

        def rank(p: float) -> float:
            return ordered[_nearest_rank(p, len(ordered)) - 1]

        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": rank(50.0),
            "p95": rank(95.0),
            "p99": rank(99.0),
        }

    def snapshot(self) -> dict[str, float]:
        return {f"{self.name}.{k}": v for k, v in sorted(self.summary().items())}


class CollectorSink:
    """One snapshot's worth of *pulled* series (see ``register_collector``).

    Counter-style series from different collectors sum on key collision;
    gauge-style series are last-write-wins.  Non-finite values are
    silently skipped — a collector reporting the headroom of an
    unconstrained budget is normal, not an instrumentation bug.
    """

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if math.isfinite(value):
            key = render_key(name, **labels)
            self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if math.isfinite(value):
            self.gauges[render_key(name, **labels)] = float(value)


class MetricsRegistry:
    """Lazily-created named instruments behind one deterministic snapshot.

    High-frequency sources (the stream store, budgets) do not push an
    update per event — they register a *collector* that is pulled once
    per snapshot, keeping the hot path at a plain attribute increment.

    Example:
        >>> metrics = MetricsRegistry()
        >>> metrics.inc("llm.calls")
        >>> metrics.observe("llm.latency", 0.25)
        >>> metrics.snapshot()["llm.calls"]
        1.0
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Callable[[CollectorSink], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def bound_counter(self, name: str, **labels: Any) -> "BoundCounter | None":
        """A pre-bound counter handle, or None when the registry is
        disabled — instrumented layers bind once at attach time and pay
        one dict add per event."""
        if not self.enabled:
            return None
        return self.counter(name).bind(**labels)

    def bound_histogram(self, name: str) -> "Histogram | None":
        """The histogram itself, or None when the registry is disabled.

        The histogram counterpart of :meth:`bound_counter`: hot paths
        resolve the instrument once at wiring time and then call
        ``observe`` directly — no per-observation registry dict lookup,
        no ``enabled`` re-check.  Callers own the finiteness of what
        they observe (event counts and simulated durations, not measured
        values), which is why this skips the :meth:`observe` guards.
        """
        if not self.enabled:
            return None
        return self.histogram(name)

    # ------------------------------------------------------------------
    # Recording conveniences (the instrumented layers call these)
    # ------------------------------------------------------------------
    # Each gates on enabled, drops non-finite values (tallying them under
    # DROPPED_METRIC), and dodges the creation lock once the instrument
    # exists — a plain dict read is safe under the GIL.
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if not self.enabled:
            return
        if not math.isfinite(value):
            self.counter(DROPPED_METRIC).inc(1.0, metric=name)
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self.counter(name)
        counter.inc(value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        if not math.isfinite(value):
            self.counter(DROPPED_METRIC).inc(1.0, metric=name)
            return
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self.gauge(name)
        gauge.set(value, **labels)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        if not math.isfinite(value):
            self.counter(DROPPED_METRIC).inc(1.0, metric=name)
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self.histogram(name)
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Collectors (pull-based sources)
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[CollectorSink], None]) -> None:
        """Pull *collector* at every snapshot.

        The hot-path alternative to pushing one ``inc`` per event: the
        source keeps plain tallies and reports them all when asked.
        """
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Every instrument flattened to ``name{labels}`` -> value, sorted."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            collectors = list(self._collectors)
        merged: dict[str, float] = {}
        for instrument in (*counters, *gauges, *histograms):
            merged.update(instrument.snapshot())
        if self.enabled and collectors:
            sink = CollectorSink()
            for collect in collectors:
                collect(sink)
            for key, value in sink.counters.items():
                merged[key] = merged.get(key, 0.0) + value
            merged.update(sink.gauges)
        return dict(sorted(merged.items()))

    def reset(self) -> None:
        """Drop every instrument (tests and fresh benchmark phases).

        Registered collectors are kept: they are wiring, not state — the
        sources they pull from keep their own tallies.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
