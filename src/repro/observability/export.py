"""Trace exporters: JSON for machines, flamegraph/critical-path for eyes.

The JSON export is the canonical artifact — sorted keys, no non-finite
tokens (``json.dumps(..., allow_nan=False)`` enforces it), deterministic
for seeded runs, so "same seed => byte-identical trace" can be asserted
on the serialized string itself.

The text views answer the two questions an operator asks of a plan trace:

* **flamegraph** — where did the time go, hierarchically?
* **critical path** — which single chain of spans bounds the latency?
"""

from __future__ import annotations

import json
from typing import Any, TYPE_CHECKING

from .span import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry


def export_trace(
    tracer: Tracer, metrics: "MetricsRegistry | None" = None
) -> dict[str, Any]:
    """Spans (creation order) plus an optional metric snapshot."""
    payload: dict[str, Any] = {
        "clock": tracer.clock.now(),
        "spans": [span.to_dict() for span in tracer.spans()],
    }
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    return payload


def export_trace_json(
    tracer: Tracer, metrics: "MetricsRegistry | None" = None
) -> str:
    """The canonical byte-comparable artifact of one traced run."""
    return json.dumps(
        export_trace(tracer, metrics), sort_keys=True, allow_nan=False, default=str
    )


# ----------------------------------------------------------------------
# Text views
# ----------------------------------------------------------------------
def _span_line(span: Span, depth: int, total: float) -> str:
    share = f" {span.duration / total * 100.0:5.1f}%" if total > 0 else ""
    flag = " !" + (span.error or "error") if span.status == "error" else ""
    return (
        f"{'  ' * depth}{span.name} [{span.kind}] "
        f"{span.duration:.3f}s{share}{flag}"
    )


def render_flamegraph(tracer: Tracer) -> str:
    """The span tree as indented text, each line with duration and share.

    "Share" is the span's duration relative to the summed root durations,
    which for nested simulated time reads like a flamegraph's width.
    """
    roots = tracer.roots()
    total = sum(root.duration for root in roots)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        lines.append(_span_line(span, depth, total))
        for child in tracer.children(span.span_id):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def critical_path(tracer: Tracer, root: Span | None = None) -> list[Span]:
    """The chain of spans that bounds the trace's end-to-end latency.

    From the (longest) root, repeatedly descend into the child whose end
    time is latest — under synchronous depth-first execution that child is
    the one the parent was waiting on when it closed.
    """
    if root is None:
        roots = tracer.roots()
        if not roots:
            return []
        root = max(roots, key=lambda s: (s.duration, s.span_id))
    path = [root]
    node = root
    while True:
        children = tracer.children(node.span_id)
        if not children:
            return path
        node = max(children, key=lambda s: (s.end or s.start, s.span_id))
        path.append(node)


def render_critical_path(tracer: Tracer) -> str:
    """The critical path as text with per-hop self/total times."""
    path = critical_path(tracer)
    if not path:
        return "(no spans recorded)"
    total = path[0].duration
    lines = [f"critical path ({total:.3f}s end-to-end):"]
    for depth, span in enumerate(path):
        child_time = sum(c.duration for c in tracer.children(span.span_id))
        self_time = max(0.0, span.duration - child_time)
        share = f" {span.duration / total * 100.0:5.1f}%" if total > 0 else ""
        lines.append(
            f"{'  ' * depth}-> {span.name} [{span.kind}] "
            f"total={span.duration:.3f}s self={self_time:.3f}s{share}"
        )
    return "\n".join(lines)


def render_metrics(metrics: "MetricsRegistry") -> str:
    """The snapshot as aligned ``name value`` lines (CLI and artifacts)."""
    snapshot = metrics.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    return "\n".join(
        f"{name.ljust(width)}  {value:g}" for name, value in snapshot.items()
    )
