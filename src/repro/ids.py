"""Deterministic identifier generation.

The architecture persists every message, stream, plan, and agent activation;
stable, readable identifiers make traces reproducible across runs (given the
same sequence of operations) and easy to assert on in tests.

Identifiers look like ``msg-000042`` — a short prefix naming the entity kind
plus a zero-padded per-kind counter. :class:`IdGenerator` instances are
independent, so separate runtimes never share counters.

Counters number ids in *arrival order*, which is deterministic only while
execution is single-threaded.  Under the concurrent backend two plans race
for ``msg-000042``, so worker tasks run inside an :func:`id_scope`: while a
scope named for the plan/node is active on the calling thread, every
generator numbers that owner's ids from the owner's own counter
(``msg-pp.m1-000003``) — the same thread interleaving no longer changes
which id any message gets.  Serial execution never enters a scope and is
byte-identical to the unscoped scheme.
"""

from __future__ import annotations

import itertools
import threading

#: The calling thread's active id-scope owner (None outside any scope).
#: Module-level so one scope covers every generator the task touches
#: (stream store, session manager, planners) without threading a handle
#: through each of them.
_SCOPE = threading.local()


class _IdScope:
    """Context manager installing an owner on the calling thread."""

    __slots__ = ("_owner", "_saved")

    def __init__(self, owner: str) -> None:
        self._owner = owner

    def __enter__(self) -> "_IdScope":
        self._saved = getattr(_SCOPE, "owner", None)
        _SCOPE.owner = self._owner
        return self

    def __exit__(self, *exc_info: object) -> bool:
        _SCOPE.owner = self._saved
        return False


def id_scope(owner: str) -> _IdScope:
    """Scope id sequences to *owner* (e.g. ``"plan.node"``) on this thread."""
    return _IdScope(owner)


def current_id_scope() -> str | None:
    """The calling thread's active id-scope owner, if any."""
    return getattr(_SCOPE, "owner", None)


class IdGenerator:
    """Thread-safe per-kind counter-based id factory.

    Example:
        >>> ids = IdGenerator()
        >>> ids.next("msg")
        'msg-000001'
        >>> ids.next("msg")
        'msg-000002'
        >>> ids.next("stream")
        'stream-000001'
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def next(self, kind: str) -> str:
        """Return the next identifier for *kind*.

        Inside an :func:`id_scope`, the sequence and the rendered id are
        both owner-qualified, so concurrent owners can never collide nor
        steal each other's sequence numbers.
        """
        owner = getattr(_SCOPE, "owner", None)
        with self._lock:
            key = kind if owner is None else f"{owner}\x00{kind}"
            counter = self._counters.get(key)
            if counter is None:
                counter = itertools.count(1)
                self._counters[key] = counter
            if owner is None:
                return f"{kind}-{next(counter):06d}"
            return f"{kind}-{owner}-{next(counter):06d}"

    def reset(self) -> None:
        """Forget all counters (fresh numbering for a new run)."""
        with self._lock:
            self._counters.clear()


_GLOBAL = IdGenerator()


def new_id(kind: str) -> str:
    """Return a fresh identifier from the process-global generator."""
    return _GLOBAL.next(kind)


def reset_global_ids() -> None:
    """Reset the process-global generator (used by tests for determinism)."""
    _GLOBAL.reset()
