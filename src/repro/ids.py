"""Deterministic identifier generation.

The architecture persists every message, stream, plan, and agent activation;
stable, readable identifiers make traces reproducible across runs (given the
same sequence of operations) and easy to assert on in tests.

Identifiers look like ``msg-000042`` — a short prefix naming the entity kind
plus a zero-padded per-kind counter. :class:`IdGenerator` instances are
independent, so separate runtimes never share counters.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe per-kind counter-based id factory.

    Example:
        >>> ids = IdGenerator()
        >>> ids.next("msg")
        'msg-000001'
        >>> ids.next("msg")
        'msg-000002'
        >>> ids.next("stream")
        'stream-000001'
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def next(self, kind: str) -> str:
        """Return the next identifier for *kind*."""
        with self._lock:
            counter = self._counters.get(kind)
            if counter is None:
                counter = itertools.count(1)
                self._counters[kind] = counter
            return f"{kind}-{next(counter):06d}"

    def reset(self) -> None:
        """Forget all counters (fresh numbering for a new run)."""
        with self._lock:
            self._counters.clear()


_GLOBAL = IdGenerator()


def new_id(kind: str) -> str:
    """Return a fresh identifier from the process-global generator."""
    return _GLOBAL.next(kind)


def reset_global_ids() -> None:
    """Reset the process-global generator (used by tests for determinism)."""
    _GLOBAL.reset()
