"""Exception hierarchy for the blueprint architecture.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at application boundaries while the
subclasses keep failure modes distinguishable in tests and logs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library.

    Attributes:
        transient: whether the failure is plausibly recoverable by retrying
            (network blips, model overload).  Retry policies consult this
            classification; fatal errors (schema violations, missing models,
            oversized prompts) fail fast instead of burning the budget.
    """

    transient: bool = False


class StreamError(ReproError):
    """A stream operation failed (unknown stream, closed stream, ...)."""


class StreamClosedError(StreamError):
    """A message was appended to, or read from, a closed stream."""


class StorageError(ReproError):
    """Base class for storage-substrate failures."""


class SchemaError(StorageError):
    """A schema definition or a row violating a schema was encountered."""


class SQLError(StorageError):
    """SQL text could not be lexed, parsed, planned, or executed."""


class QueryError(StorageError):
    """A document/graph/vector query was malformed or unanswerable."""


class ClusterUnavailableError(StorageError):
    """A sharded store could not assemble a quorum for an operation.

    Transient by design: replicas restart and partitions heal on later
    cluster ticks, so retrying after ticks usually succeeds.  Writes that
    raise this were **not** acknowledged — the zero-acked-loss invariant
    only covers writes that returned normally.
    """

    transient = True


class TransientError(ReproError):
    """A recoverable failure: retrying may succeed (the chaos harness and
    flaky agents raise this to signal 'try again')."""

    transient = True


class LLMError(ReproError):
    """The (simulated) language-model substrate failed.

    Plain LLM failures model provider-side blips (overload, 5xx) and are
    classified transient; structural subclasses below override that.
    """

    transient = True


class CapacityExceededError(LLMError):
    """A model's slot queue is too deep: the call was refused, not queued.

    Raised by :class:`~repro.llm.ModelCapacity` when a reservation's
    deterministic queue wait would exceed the configured
    ``max_queue_wait`` — the simulated analogue of a 429 with
    ``Retry-After``.  Transient by design: the retry policy backs the
    caller off and the reservation is attempted again once pressure
    drains.
    """


class ModelNotFoundError(LLMError):
    """A model name was not present in the model catalog."""

    transient = False


class ContextWindowExceededError(LLMError):
    """A prompt exceeded the model's context window."""

    transient = False


class RegistryError(ReproError):
    """A registry operation failed (duplicate or missing entries, ...)."""


class AccessDeniedError(RegistryError):
    """A principal requested a data source its ACL does not allow."""


class AgentError(ReproError):
    """An agent failed while processing input."""


class PlanError(ReproError):
    """A task or data plan was structurally invalid (cycles, dangling refs)."""


class PlanningError(ReproError):
    """A planner could not produce a plan for the given request."""


class BudgetExceededError(ReproError):
    """Execution exceeded the QoS budget and was aborted.

    Attributes:
        dimension: which QoS dimension was violated (``cost``, ``latency``,
            or ``quality``).
    """

    def __init__(self, message: str, dimension: str = "cost") -> None:
        super().__init__(message)
        self.dimension = dimension


class CoordinationError(ReproError):
    """The task coordinator could not make progress on a plan."""


class DeadlineExceededError(ReproError):
    """A plan node's modeled latency exceeded its deadline slice."""


class CircuitOpenError(ReproError):
    """A call was short-circuited because the target's breaker is open.

    Transient by design: the breaker will probe again after its recovery
    timeout, so the caller may retry later (or route to a fallback now).
    """

    transient = True


class OptimizationError(ReproError):
    """The optimizer found no plan satisfying the QoS constraints."""


class DeploymentError(ReproError):
    """A simulated container/cluster operation failed."""


class SessionError(ReproError):
    """A session operation failed (closed session, unknown agent, ...)."""


class CoordinatorKilledError(BaseException):
    """Simulated hard process death (SIGKILL) of the coordinator.

    Deliberately *not* a :class:`ReproError` — not even an
    :class:`Exception` — so that no ``except Exception`` handler anywhere
    in the runtime (agent processors, retry policies, dispatch loops) can
    absorb it.  It unwinds the whole synchronous call stack exactly as a
    real process death would, leaving behind only the durable state: the
    stream store (including the write-ahead journal), the clock, and the
    id sequence.  Only crash-recovery harnesses — the chaos benchmarks,
    the kill/resume property suite, and supervisors — catch it.
    """
