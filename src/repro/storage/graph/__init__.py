"""Graph storage: a directed property graph with traversal helpers."""

from .graph import Edge, GraphStore, Node

__all__ = ["Edge", "GraphStore", "Node"]
