"""Property graph store.

Backs taxonomies and knowledge structures the data planner needs — in the
paper's running example, the job-title taxonomy that expands "data
scientist" into related titles.  Nodes and edges carry labels and free-form
properties; traversal helpers cover the query shapes the planners issue.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ...errors import QueryError, StorageError


@dataclass(frozen=True)
class Node:
    node_id: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)


@dataclass(frozen=True)
class Edge:
    source: str
    target: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)


class GraphStore:
    """A directed property graph with label- and property-based lookups."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._nodes: dict[str, Node] = {}
        self._out: dict[str, list[Edge]] = {}
        self._in: dict[str, list[Edge]] = {}
        self._by_label: dict[str, set[str]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, label: str, **properties: Any) -> Node:
        with self._lock:
            if node_id in self._nodes:
                raise StorageError(f"duplicate node id: {node_id!r}")
            node = Node(node_id, label, dict(properties))
            self._nodes[node_id] = node
            self._out.setdefault(node_id, [])
            self._in.setdefault(node_id, [])
            self._by_label.setdefault(label, set()).add(node_id)
            return node

    def add_edge(self, source: str, target: str, label: str, **properties: Any) -> Edge:
        with self._lock:
            for node_id in (source, target):
                if node_id not in self._nodes:
                    raise StorageError(f"unknown node: {node_id!r}")
            edge = Edge(source, target, label, dict(properties))
            self._out[source].append(edge)
            self._in[target].append(edge)
            return edge

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        with self._lock:
            node = self._nodes.get(node_id)
        if node is None:
            raise QueryError(f"unknown node: {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        with self._lock:
            return node_id in self._nodes

    def nodes(self, label: str | None = None) -> list[Node]:
        with self._lock:
            if label is None:
                return list(self._nodes.values())
            return [self._nodes[i] for i in sorted(self._by_label.get(label, ()))]

    def find_nodes(
        self, label: str | None = None, predicate: Callable[[Node], bool] | None = None, **props: Any
    ) -> list[Node]:
        """Nodes matching label, exact properties, and an optional predicate."""
        found = []
        for node in self.nodes(label):
            if any(node.get(key) != value for key, value in props.items()):
                continue
            if predicate is not None and not predicate(node):
                continue
            found.append(node)
        return found

    def node_count(self) -> int:
        with self._lock:
            return len(self._nodes)

    def edge_count(self) -> int:
        with self._lock:
            return sum(len(edges) for edges in self._out.values())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def out_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        self.node(node_id)
        with self._lock:
            edges = list(self._out.get(node_id, ()))
        return [e for e in edges if label is None or e.label == label]

    def in_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        self.node(node_id)
        with self._lock:
            edges = list(self._in.get(node_id, ()))
        return [e for e in edges if label is None or e.label == label]

    def neighbors(
        self, node_id: str, edge_label: str | None = None, direction: str = "out"
    ) -> list[Node]:
        """Adjacent nodes (directions: out, in, both)."""
        if direction not in {"out", "in", "both"}:
            raise QueryError(f"unknown direction: {direction!r}")
        ids: list[str] = []
        if direction in {"out", "both"}:
            ids.extend(edge.target for edge in self.out_edges(node_id, edge_label))
        if direction in {"in", "both"}:
            ids.extend(edge.source for edge in self.in_edges(node_id, edge_label))
        seen: set[str] = set()
        unique = []
        for neighbor_id in ids:
            if neighbor_id not in seen:
                seen.add(neighbor_id)
                unique.append(self.node(neighbor_id))
        return unique

    def traverse(
        self,
        start: str,
        edge_label: str | None = None,
        direction: str = "out",
        max_depth: int | None = None,
    ) -> list[Node]:
        """BFS from *start* (excluded) following matching edges."""
        self.node(start)
        visited = {start}
        frontier = deque([(start, 0)])
        result: list[Node] = []
        while frontier:
            current, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for neighbor in self.neighbors(current, edge_label, direction):
                if neighbor.node_id in visited:
                    continue
                visited.add(neighbor.node_id)
                result.append(neighbor)
                frontier.append((neighbor.node_id, depth + 1))
        return result

    def shortest_path(self, source: str, target: str) -> list[str] | None:
        """Node ids along a shortest directed path, or None when unreachable."""
        self.node(source)
        self.node(target)
        if source == target:
            return [source]
        parents: dict[str, str] = {}
        visited = {source}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for edge in self.out_edges(current):
                if edge.target in visited:
                    continue
                visited.add(edge.target)
                parents[edge.target] = current
                if edge.target == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                frontier.append(edge.target)
        return None

    def subgraph_ids(self, start: str, edge_label: str | None = None) -> set[str]:
        """Ids reachable from *start* (including it) along matching edges."""
        return {start} | {n.node_id for n in self.traverse(start, edge_label)}

    def describe(self) -> dict[str, Any]:
        with self._lock:
            labels = {label: len(ids) for label, ids in sorted(self._by_label.items())}
        return {
            "graph": self.name,
            "description": self.description,
            "nodes": self.node_count(),
            "edges": self.edge_count(),
            "labels": labels,
        }
