"""Key-value store with namespaces and simulated-time TTLs.

Sessions and budgets persist scratch state here; the data registry lists it
as one of the enterprise data modalities.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from ...clock import SimClock
from ...errors import StorageError


class KeyValueStore:
    """Namespaced KV store; entries may expire on the simulated clock."""

    def __init__(self, name: str, clock: SimClock | None = None, description: str = "") -> None:
        self.name = name
        self.description = description
        self._clock = clock or SimClock()
        self._data: dict[str, dict[str, Any]] = {}
        self._expiry: dict[tuple[str, str], float] = {}
        self._lock = threading.RLock()

    def put(self, namespace: str, key: str, value: Any, ttl: float | None = None) -> None:
        """Store *value*; with *ttl*, it expires after that many sim-seconds."""
        with self._lock:
            self._data.setdefault(namespace, {})[key] = value
            if ttl is not None:
                if ttl <= 0:
                    raise StorageError(f"ttl must be positive: {ttl}")
                self._expiry[(namespace, key)] = self._clock.now() + ttl
            else:
                self._expiry.pop((namespace, key), None)

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        with self._lock:
            if self._expired(namespace, key):
                self._evict(namespace, key)
                return default
            return self._data.get(namespace, {}).get(key, default)

    def contains(self, namespace: str, key: str) -> bool:
        sentinel = object()
        return self.get(namespace, key, sentinel) is not sentinel

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            bucket = self._data.get(namespace)
            if bucket is None or key not in bucket:
                return False
            self._evict(namespace, key)
            return True

    def keys(self, namespace: str) -> list[str]:
        with self._lock:
            bucket = self._data.get(namespace, {})
            expired = [k for k in bucket if self._expired(namespace, k)]
            for key in expired:
                self._evict(namespace, key)
            return sorted(bucket)

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        with self._lock:
            sentinel = object()
            pairs = [
                (key, self.get(namespace, key, sentinel))
                for key in self.keys(namespace)
            ]
        for key, value in pairs:
            if value is not sentinel:
                yield key, value

    def namespaces(self) -> list[str]:
        with self._lock:
            return sorted(
                ns
                for ns in list(self._data)
                if any(
                    not self._expired(ns, key) for key in self._data.get(ns, {})
                )
            )

    def clear(self, namespace: str) -> int:
        with self._lock:
            live = len(self.keys(namespace))
            bucket = self._data.pop(namespace, {})
            for key in bucket:
                self._expiry.pop((namespace, key), None)
            return live

    def describe(self) -> dict[str, Any]:
        return {
            "store": self.name,
            "description": self.description,
            "namespaces": {ns: len(self.keys(ns)) for ns in self.namespaces()},
        }

    def _expired(self, namespace: str, key: str) -> bool:
        deadline = self._expiry.get((namespace, key))
        return deadline is not None and self._clock.now() >= deadline

    def _evict(self, namespace: str, key: str) -> None:
        self._data.get(namespace, {}).pop(key, None)
        self._expiry.pop((namespace, key), None)
