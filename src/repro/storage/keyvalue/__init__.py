"""Key-value storage with namespaces and TTLs."""

from .store import KeyValueStore

__all__ = ["KeyValueStore"]
