"""Typed schemas shared by the storage substrates.

The relational engine, the data registry, and the data planner all reason
about schemas: column names, types, and keys.  Keeping one schema model here
lets registry metadata describe any source uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Column types supported by the relational engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def validate(self, value: Any) -> Any:
        """Coerce/check *value* against this type; None is always allowed
        at this level (nullability is checked by the column)."""
        if value is None:
            return None
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected text, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise SchemaError(f"expected bool, got {value!r}")
            return value
        raise SchemaError(f"unknown column type: {self}")

    @classmethod
    def parse(cls, name: str) -> "ColumnType":
        """Parse a SQL type name (INT/INTEGER, FLOAT/REAL/DOUBLE, TEXT/VARCHAR, BOOL)."""
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INT,
            "INTEGER": cls.INT,
            "BIGINT": cls.INT,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOL": cls.BOOL,
            "BOOLEAN": cls.BOOL,
        }
        if normalized not in aliases:
            raise SchemaError(f"unknown SQL type: {name!r}")
        return aliases[normalized]


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType
    nullable: bool = True
    primary_key: bool = False
    description: str = ""

    def validate(self, value: Any) -> Any:
        if value is None:
            if not self.nullable or self.primary_key:
                raise SchemaError(f"column {self.name!r} may not be NULL")
            return None
        return self.type.validate(value)


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns describing a relation."""

    name: str
    columns: tuple[Column, ...]
    description: str = ""

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema {self.name!r}")
        if not self.columns:
            raise SchemaError(f"schema {self.name!r} has no columns")

    @classmethod
    def build(
        cls, name: str, columns: Iterable[tuple[str, ColumnType] | Column], description: str = ""
    ) -> "TableSchema":
        """Build from ``Column`` objects or ``(name, type)`` pairs."""
        built: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                built.append(spec)
            else:
                col_name, col_type = spec
                built.append(Column(col_name, col_type))
        return cls(name=name, columns=tuple(built), description=description)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def primary_key(self) -> Column | None:
        for col in self.columns:
            if col.primary_key:
                return col
        return None

    def validate_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate and normalize a row dict against the schema.

        Unknown keys are rejected; missing nullable columns become None.
        """
        unknown = set(row) - set(self.column_names())
        if unknown:
            raise SchemaError(
                f"unknown columns for table {self.name!r}: {sorted(unknown)}"
            )
        validated: dict[str, Any] = {}
        for col in self.columns:
            validated[col.name] = col.validate(row.get(col.name))
        return validated

    def describe(self) -> dict[str, Any]:
        """A metadata mapping used by the data registry."""
        return {
            "table": self.name,
            "description": self.description,
            "columns": [
                {
                    "name": c.name,
                    "type": c.type.value,
                    "nullable": c.nullable,
                    "primary_key": c.primary_key,
                    "description": c.description,
                }
                for c in self.columns
            ],
        }
