"""Relational storage: tables, indices, and a SQL execution engine."""

from .database import Database, SQLResult, quick_table
from .index import HashIndex, SortedIndex
from .table import Table

__all__ = ["Database", "SQLResult", "quick_table", "HashIndex", "SortedIndex", "Table"]
