"""Tables: schema-validated row storage with secondary indices."""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator

from ...errors import SchemaError, StorageError
from ..schema import TableSchema
from .index import HashIndex, SortedIndex


class Table:
    """An in-memory relation.

    Rows are dicts keyed by column name, stored under stable integer row
    ids; deletions leave holes so indices stay valid without renumbering.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 0
        self._indices: dict[str, HashIndex | SortedIndex] = {}
        self._lock = threading.RLock()
        primary = schema.primary_key()
        if primary is not None:
            self.create_index(primary.name, kind="hash")

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: dict[str, Any]) -> int:
        """Validate and insert *row*; returns its row id."""
        validated = self.schema.validate_row(row)
        with self._lock:
            primary = self.schema.primary_key()
            if primary is not None:
                index = self._indices[primary.name]
                if index.lookup(validated[primary.name]):
                    raise StorageError(
                        f"duplicate primary key {validated[primary.name]!r} "
                        f"in table {self.name!r}"
                    )
            row_id = self._next_row_id
            self._next_row_id += 1
            self._rows[row_id] = validated
            for column, index in self._indices.items():
                index.insert(validated[column], row_id)
            return row_id

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> list[int]:
        return [self.insert(row) for row in rows]

    def update(
        self, predicate: Callable[[dict[str, Any]], bool], changes: dict[str, Any]
    ) -> int:
        """Apply *changes* to rows matching *predicate*; returns count."""
        unknown = set(changes) - set(self.schema.column_names())
        if unknown:
            raise SchemaError(f"unknown columns in update: {sorted(unknown)}")
        updated = 0
        with self._lock:
            for row_id, row in self._rows.items():
                if not predicate(row):
                    continue
                new_row = self.schema.validate_row({**row, **changes})
                for column, index in self._indices.items():
                    if row[column] != new_row[column]:
                        index.remove(row[column], row_id)
                        index.insert(new_row[column], row_id)
                self._rows[row_id] = new_row
                updated += 1
        return updated

    def delete(self, predicate: Callable[[dict[str, Any]], bool]) -> int:
        """Delete rows matching *predicate*; returns count."""
        with self._lock:
            doomed = [rid for rid, row in self._rows.items() if predicate(row)]
            for row_id in doomed:
                row = self._rows.pop(row_id)
                for column, index in self._indices.items():
                    index.remove(row[column], row_id)
        return len(doomed)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of all rows in insertion order."""
        with self._lock:
            snapshot = [self._rows[rid] for rid in sorted(self._rows)]
        for row in snapshot:
            yield dict(row)

    def rows(self) -> list[dict[str, Any]]:
        return list(self.scan())

    def get_by_row_ids(self, row_ids: Iterable[int]) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(self._rows[rid]) for rid in sorted(row_ids) if rid in self._rows]

    # ------------------------------------------------------------------
    # Indices
    # ------------------------------------------------------------------
    def create_index(self, column: str, kind: str = "hash") -> None:
        """Build a secondary index over *column* (kinds: hash, sorted)."""
        if not self.schema.has_column(column):
            raise SchemaError(f"no column {column!r} in table {self.name!r}")
        with self._lock:
            if column in self._indices:
                return
            if kind == "hash":
                index: HashIndex | SortedIndex = HashIndex(column)
            elif kind == "sorted":
                index = SortedIndex(column)
            else:
                raise StorageError(f"unknown index kind: {kind!r}")
            for row_id, row in self._rows.items():
                index.insert(row[column], row_id)
            self._indices[column] = index

    def index_on(self, column: str) -> HashIndex | SortedIndex | None:
        with self._lock:
            return self._indices.get(column)

    def indexed_columns(self) -> dict[str, str]:
        """Mapping of indexed column -> index kind (registry metadata)."""
        with self._lock:
            return {column: index.kind for column, index in self._indices.items()}

    def lookup(self, column: str, value: Any) -> list[dict[str, Any]]:
        """Indexed equality lookup; falls back to a scan when unindexed."""
        index = self.index_on(column)
        if index is not None:
            return self.get_by_row_ids(index.lookup(value))
        return [row for row in self.scan() if row[column] == value]
