"""A relational database: a named catalog of tables plus a SQL front door."""

from __future__ import annotations

import threading
from typing import Any, Iterable, TYPE_CHECKING

from ...errors import StorageError
from ..schema import Column, ColumnType, TableSchema
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import Observability


class Database:
    """Holds tables and executes SQL against them.

    The SQL entry point lives here (rather than on tables) because queries
    may join multiple tables.  Execution is delegated to
    :mod:`repro.storage.relational.sql`.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        #: Optional tracing/metrics sink: every :meth:`execute` then opens
        #: a ``storage`` span and counts queries/rows (settable after
        #: construction — applications wire their runtime's handle in).
        self.observability: "Observability | None" = None
        self._tables: dict[str, Table] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        with self._lock:
            key = schema.name.lower()
            if key in self._tables:
                raise StorageError(f"table already exists: {schema.name!r}")
            table = Table(schema)
            self._tables[key] = table
            return table

    def drop_table(self, name: str) -> None:
        with self._lock:
            if self._tables.pop(name.lower(), None) is None:
                raise StorageError(f"unknown table: {name!r}")

    def table(self, name: str) -> Table:
        with self._lock:
            table = self._tables.get(name.lower())
        if table is None:
            raise StorageError(f"unknown table: {name!r} in database {self.name!r}")
        return table

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def tables(self) -> list[Table]:
        with self._lock:
            return list(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self.tables())

    def describe(self) -> dict[str, Any]:
        """Catalog metadata (used by the data registry)."""
        return {
            "database": self.name,
            "description": self.description,
            "tables": [table.schema.describe() for table in self.tables()],
        }

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------
    def execute(self, sql: str, parameters: dict[str, Any] | None = None) -> "SQLResult":
        """Parse and execute a SQL statement against this database."""
        from .sql import execute_sql

        obs = self.observability
        if obs is None:
            return execute_sql(self, sql, parameters)
        with obs.span(f"sql:{self.name}", kind="storage", database=self.name) as span:
            result = execute_sql(self, sql, parameters)
            span.set_attribute("statement_kind", result.statement_kind)
            span.set_attribute("rows", len(result.rows))
            obs.metrics.inc("storage.queries", database=self.name)
            obs.metrics.inc("storage.rows", len(result.rows), database=self.name)
            return result

    def query(self, sql: str, parameters: dict[str, Any] | None = None) -> list[dict[str, Any]]:
        """Execute a SELECT and return its rows."""
        return self.execute(sql, parameters).rows


class SQLResult:
    """The outcome of executing one SQL statement."""

    def __init__(
        self,
        rows: list[dict[str, Any]] | None = None,
        columns: list[str] | None = None,
        rowcount: int = 0,
        statement_kind: str = "select",
    ) -> None:
        self.rows = rows if rows is not None else []
        self.columns = columns if columns is not None else []
        self.rowcount = rowcount if rowcount else len(self.rows)
        self.statement_kind = statement_kind

    def scalar(self) -> Any:
        """First column of the first row (for COUNT(*)-style queries)."""
        if not self.rows or not self.columns:
            return None
        return self.rows[0][self.columns[0]]

    def column(self, name: str) -> list[Any]:
        return [row[name] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def quick_table(
    database: Database,
    name: str,
    columns: Iterable[tuple[str, ColumnType] | Column],
    rows: Iterable[dict[str, Any]] = (),
    description: str = "",
) -> Table:
    """Create a table from (name, type) pairs and bulk-insert *rows*."""
    schema = TableSchema.build(name, columns, description=description)
    table = database.create_table(schema)
    table.insert_many(rows)
    return table
