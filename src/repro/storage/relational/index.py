"""Secondary indices for the relational engine.

Two flavors back the query planner's access-path choice:

* :class:`HashIndex` — O(1) equality lookups,
* :class:`SortedIndex` — binary-searched range lookups.

Indices map column values to *row ids* (stable integers assigned by the
table), so they survive in-place updates of other columns.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable


class HashIndex:
    """Equality index: value -> set of row ids."""

    kind = "hash"

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, set[int]] = {}

    def insert(self, value: Any, row_id: int) -> None:
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        return set(self._buckets.get(value, ()))

    def lookup_many(self, values: Iterable[Any]) -> set[int]:
        result: set[int] = set()
        for value in values:
            result |= self.lookup(value)
        return result

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Range index: a sorted list of (value, row_id) pairs.

    NULLs are not indexed; range queries never match them, mirroring SQL
    comparison semantics.
    """

    kind = "sorted"

    def __init__(self, column: str) -> None:
        self.column = column
        self._entries: list[tuple[Any, int]] = []

    def insert(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, row_id))

    def remove(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        position = bisect.bisect_left(self._entries, (value, row_id))
        if position < len(self._entries) and self._entries[position] == (value, row_id):
            self._entries.pop(position)

    def lookup(self, value: Any) -> set[int]:
        return self.range(low=value, high=value, low_inclusive=True, high_inclusive=True)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> set[int]:
        """Row ids with values in the given (optionally open) range."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._entries, (low,))
        else:
            start = bisect.bisect_right(self._entries, (low, float("inf")))
        if high is None:
            stop = len(self._entries)
        elif high_inclusive:
            stop = bisect.bisect_right(self._entries, (high, float("inf")))
        else:
            stop = bisect.bisect_left(self._entries, (high,))
        return {row_id for _, row_id in self._entries[start:stop]}

    def __len__(self) -> int:
        return len(self._entries)
