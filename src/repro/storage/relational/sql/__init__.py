"""SQL front end for the relational engine: lexer, parser, executor."""

from .executor import ExecutionStats, execute_sql
from .lexer import Token, TokenType, tokenize
from .parser import parse

__all__ = ["ExecutionStats", "execute_sql", "Token", "TokenType", "tokenize", "parse"]
