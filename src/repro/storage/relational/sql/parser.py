"""Recursive-descent parser for the supported SQL subset.

Grammar (informal):

    select   := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                [GROUP BY expr_list [HAVING expr]]
                [ORDER BY order_list] [LIMIT n [OFFSET m]]
    join     := [INNER | LEFT [OUTER]] JOIN table_ref ON expr
    insert   := INSERT INTO name '(' cols ')' VALUES tuple (',' tuple)*
    update   := UPDATE name SET assign (',' assign)* [WHERE expr]
    delete   := DELETE FROM name [WHERE expr]
    create   := CREATE TABLE name '(' coldef (',' coldef)* ')'
              | CREATE INDEX name ON table '(' column ')' [USING kind]

Expressions support the usual precedence: OR < AND < NOT < comparison
(=, <>, <, <=, >, >=, LIKE, IN, BETWEEN, IS NULL) < additive < multiplicative
< unary < primary (literals, refs, functions, CASE, parens, parameters).
"""

from __future__ import annotations

from ....errors import SQLError
from . import ast
from .lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}

#: Keywords usable as plain identifiers (column names like ``key``).
#: They are lowercased when used that way, since the lexer normalizes
#: keyword case.
NON_RESERVED = frozenset({"KEY", "INDEX"})


class Parser:
    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._pos = 0
        self._sql = sql

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise SQLError(
                f"expected {'/'.join(names)} at position {token.position}, "
                f"got {token.value!r}"
            )
        return self._advance()

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise SQLError(f"expected {value!r} at position {token.position}, got {token.value!r}")
        self._advance()

    def _match_operator(self, *values: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            return self._advance()
        return None

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in NON_RESERVED:
            self._advance()
            return token.value.lower()
        if token.type is not TokenType.IDENTIFIER:
            raise SQLError(f"expected identifier at position {token.position}, got {token.value!r}")
        self._advance()
        return token.value

    def _expect_integer(self) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise SQLError(f"expected integer at position {token.position}, got {token.value!r}")
        self._advance()
        return int(token.value)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            statement: ast.Statement = self._parse_select()
        elif token.is_keyword("INSERT"):
            statement = self._parse_insert()
        elif token.is_keyword("UPDATE"):
            statement = self._parse_update()
        elif token.is_keyword("DELETE"):
            statement = self._parse_delete()
        elif token.is_keyword("CREATE"):
            statement = self._parse_create()
        else:
            raise SQLError(f"unsupported statement starting with {token.value!r}")
        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise SQLError(f"unexpected trailing input at {trailing.position}: {trailing.value!r}")
        return statement

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        table = self._parse_table_ref()
        joins: list[ast.Join] = []
        while True:
            kind = None
            if self._match_keyword("JOIN"):
                kind = "inner"
            elif self._peek().is_keyword("INNER"):
                self._advance()
                self._expect_keyword("JOIN")
                kind = "inner"
            elif self._peek().is_keyword("LEFT"):
                self._advance()
                self._match_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "left"
            if kind is None:
                break
            join_table = self._parse_table_ref()
            self._expect_keyword("ON")
            condition = self._parse_expr()
            joins.append(ast.Join(join_table, condition, kind))
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        group_by: list[ast.Expr] = []
        having = None
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._match_punct(","):
                group_by.append(self._parse_expr())
            if self._match_keyword("HAVING"):
                having = self._parse_expr()
        order_by: list[ast.OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._match_punct(","):
                order_by.append(self._parse_order_item())
        limit = None
        offset = 0
        if self._match_keyword("LIMIT"):
            limit = self._expect_integer()
            if self._match_keyword("OFFSET"):
                offset = self._expect_integer()
        return ast.Select(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_identifier()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.TableRef(name, alias)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        self._expect_punct("(")
        columns = [self._expect_identifier()]
        while self._match_punct(","):
            columns.append(self._expect_identifier())
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows = [self._parse_value_tuple()]
        while self._match_punct(","):
            rows.append(self._parse_value_tuple())
        return ast.Insert(table, tuple(columns), tuple(rows))

    def _parse_value_tuple(self) -> tuple[ast.Expr, ...]:
        self._expect_punct("(")
        values = [self._parse_expr()]
        while self._match_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return tuple(values)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._match_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_identifier()
        if self._match_operator("=") is None:
            raise SQLError(f"expected '=' in assignment near position {self._peek().position}")
        return column, self._parse_expr()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._match_keyword("TABLE"):
            return self._parse_create_table()
        if self._match_keyword("INDEX"):
            return self._parse_create_index()
        raise SQLError("expected TABLE or INDEX after CREATE")

    def _parse_create_table(self) -> ast.CreateTable:
        table = self._expect_identifier()
        self._expect_punct("(")
        columns = [self._parse_column_def()]
        while self._match_punct(","):
            columns.append(self._parse_column_def())
        self._expect_punct(")")
        return ast.CreateTable(table, tuple(columns))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            type_name = self._expect_identifier()
        elif token.is_keyword():  # pragma: no cover - defensive
            type_name = self._advance().value
        else:
            raise SQLError(f"expected type name at position {token.position}")
        primary_key = False
        not_null = False
        while True:
            if self._match_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
            elif self._match_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            else:
                break
        return ast.ColumnDef(name, type_name, primary_key, not_null)

    def _parse_create_index(self) -> ast.CreateIndex:
        name = self._expect_identifier()
        self._expect_keyword("ON")
        table = self._expect_identifier()
        self._expect_punct("(")
        column = self._expect_identifier()
        self._expect_punct(")")
        kind = "hash"
        if self._match_keyword("USING"):
            kind = self._expect_identifier().lower()
        return ast.CreateIndex(name, table, column, kind)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = ast.Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = ast.Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._peek().is_keyword("NOT") and self._tokens[self._pos + 1].is_keyword("EXISTS"):
            self._advance()
            self._advance()
            return self._parse_exists(negated=True)
        if self._match_keyword("NOT"):
            return ast.Unary("NOT", self._parse_not())
        if self._match_keyword("EXISTS"):
            return self._parse_exists(negated=False)
        return self._parse_comparison()

    def _parse_exists(self, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        select = self._parse_select()
        self._expect_punct(")")
        return ast.Exists(select, negated)

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._match_operator(*_COMPARISONS)
        if token is not None:
            op = "<>" if token.value == "!=" else token.value
            return ast.Binary(op, left, self._parse_additive())
        negated = False
        if self._peek().is_keyword("NOT"):
            following = self._tokens[self._pos + 1]
            if following.is_keyword("IN", "LIKE", "BETWEEN"):
                self._advance()
                negated = True
        if self._match_keyword("IN"):
            self._expect_punct("(")
            if self._peek().is_keyword("SELECT"):
                select = self._parse_select()
                self._expect_punct(")")
                return ast.InSubquery(left, select, negated)
            items = [self._parse_expr()]
            while self._match_punct(","):
                items.append(self._parse_expr())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self._match_keyword("LIKE"):
            comparison: ast.Expr = ast.Binary("LIKE", left, self._parse_additive())
            return ast.Unary("NOT", comparison) if negated else comparison
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._match_keyword("IS"):
            is_negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        if negated:  # pragma: no cover - grammar prevents this
            raise SQLError("dangling NOT")
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._match_operator("+", "-", "||")
            if token is None:
                return left
            left = ast.Binary(token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._match_operator("*", "/", "%")
            if token is None:
                return left
            left = ast.Binary(token.value, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        if self._match_operator("-") is not None:
            return ast.Unary("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if self._match_punct("("):
            if self._peek().is_keyword("SELECT"):
                select = self._parse_select()
                self._expect_punct(")")
                return ast.Subquery(select)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD and token.value in NON_RESERVED
        ):
            return self._parse_identifier_expr()
        raise SQLError(f"unexpected token {token.value!r} at position {token.position}")

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._match_keyword("WHEN"):
            condition = self._parse_expr()
            self._expect_keyword("THEN")
            result = self._parse_expr()
            whens.append((condition, result))
        if not whens:
            raise SQLError("CASE requires at least one WHEN clause")
        default = self._parse_expr() if self._match_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.CaseWhen(tuple(whens), default)

    def _parse_identifier_expr(self) -> ast.Expr:
        name = self._expect_identifier()
        if self._match_punct("("):  # function call
            return self._finish_function(name)
        if self._match_punct("."):
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _finish_function(self, name: str) -> ast.Expr:
        upper = name.upper()
        distinct = self._match_keyword("DISTINCT")
        args: list[ast.Expr] = []
        if not self._match_punct(")"):
            args.append(self._parse_expr())
            while self._match_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
        return ast.FunctionCall(upper, tuple(args), distinct)


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement into an AST."""
    return Parser(sql).parse_statement()
