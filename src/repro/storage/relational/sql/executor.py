"""Execution of parsed SQL statements against a :class:`Database`.

The executor performs a light logical-planning pass for SELECTs:

* **access path** — equality/range/IN predicates on indexed columns of the
  base table turn full scans into index lookups,
* **join strategy** — equi-join conditions become hash joins; anything else
  falls back to a nested-loop join,
* then filtering, grouping, projection, distinct, ordering, and limiting.

Rows travel through the pipeline as *environments*: mappings from table
binding (alias or name) to the row dict, so qualified and unqualified column
references both resolve naturally.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from ....errors import SQLError, StorageError
from ...schema import Column, ColumnType, TableSchema
from ..database import Database, SQLResult
from ..index import HashIndex, SortedIndex
from ..table import Table
from . import ast
from .functions import SCALAR_FUNCTIONS, make_aggregate
from .parser import parse

Env = dict[str, dict[str, Any]]

#: Sentinel: an expression that cannot be folded to a constant at plan time.
_NOT_CONSTANT = object()


class ExecutionStats:
    """Counters filled in during execution (consumed by the cost model)."""

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_joined = 0
        self.index_lookups = 0
        self.used_index: str | None = None


def execute_sql(
    database: Database, sql: str, parameters: dict[str, Any] | None = None
) -> SQLResult:
    """Parse and execute *sql*; returns a :class:`SQLResult` with ``stats``."""
    statement = parse(sql)
    executor = Executor(database, parameters or {})
    return executor.execute(statement)


class Executor:
    def __init__(self, database: Database, parameters: dict[str, Any]) -> None:
        self._db = database
        self._params = parameters
        self.stats = ExecutionStats()

    def execute(self, statement: ast.Statement) -> SQLResult:
        if isinstance(statement, ast.Select):
            result = self._execute_select(statement)
        elif isinstance(statement, ast.Insert):
            result = self._execute_insert(statement)
        elif isinstance(statement, ast.Update):
            result = self._execute_update(statement)
        elif isinstance(statement, ast.Delete):
            result = self._execute_delete(statement)
        elif isinstance(statement, ast.CreateTable):
            result = self._execute_create_table(statement)
        elif isinstance(statement, ast.CreateIndex):
            result = self._execute_create_index(statement)
        else:  # pragma: no cover - exhaustive over Statement
            raise SQLError(f"unsupported statement: {statement!r}")
        result.stats = self.stats  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _execute_select(self, select: ast.Select) -> SQLResult:
        envs = self._base_rows(select)
        for join in select.joins:
            envs = self._apply_join(envs, join)
        if select.where is not None:
            envs = [env for env in envs if _truthy(self._eval(select.where, env))]
        has_aggregates = any(
            _find_aggregates(item.expr) for item in select.items
        ) or (select.having is not None and _find_aggregates(select.having))
        if select.group_by or has_aggregates:
            rows = self._grouped_projection(select, envs)
        else:
            rows = [self._project(select.items, env) for env in envs]
            rows = self._order_rows(select, rows, envs)
        columns = self._output_columns(select.items, envs)
        if select.distinct:
            rows = _distinct_rows(rows)
        if select.offset:
            rows = rows[select.offset :]
        if select.limit is not None:
            rows = rows[: select.limit]
        return SQLResult(rows=rows, columns=columns, statement_kind="select")

    def _base_rows(self, select: ast.Select) -> list[Env]:
        table = self._db.table(select.table.name)
        binding = select.table.binding()
        candidates = self._access_path(table, binding, select.where)
        if candidates is None:
            rows = table.rows()
            self.stats.rows_scanned += len(rows)
        else:
            rows = candidates
            self.stats.index_lookups += 1
        return [{binding: row} for row in rows]

    def _access_path(
        self, table: Table, binding: str, where: ast.Expr | None
    ) -> list[dict[str, Any]] | None:
        """Return candidate rows via an index, or None for a full scan."""
        if where is None:
            return None
        for conjunct in _conjuncts(where):
            rows = self._try_index(table, binding, conjunct)
            if rows is not None:
                return rows
        return None

    def _try_index(
        self, table: Table, binding: str, expr: ast.Expr
    ) -> list[dict[str, Any]] | None:
        if isinstance(expr, ast.Binary) and expr.op in {"=", "<", "<=", ">", ">="}:
            column_ref, literal = _column_literal(expr.left, expr.right)
            if column_ref is None:
                return None
            if column_ref.table not in (None, binding):
                return None
            index = table.index_on(column_ref.name)
            if index is None:
                return None
            value = self._eval_constant(literal)
            if expr.op == "=":
                self.stats.used_index = f"{table.name}.{column_ref.name}"
                return table.get_by_row_ids(index.lookup(value))
            if isinstance(index, SortedIndex):
                # Only handle column-on-left ranges; flipped forms fall back.
                if not isinstance(expr.left, ast.ColumnRef):
                    return None
                self.stats.used_index = f"{table.name}.{column_ref.name}"
                if expr.op in {">", ">="}:
                    ids = index.range(low=value, low_inclusive=expr.op == ">=")
                else:
                    ids = index.range(high=value, high_inclusive=expr.op == "<=")
                return table.get_by_row_ids(ids)
            return None
        if isinstance(expr, ast.InList) and not expr.negated:
            if not isinstance(expr.operand, ast.ColumnRef):
                return None
            if expr.operand.table not in (None, binding):
                return None
            index = table.index_on(expr.operand.name)
            if not isinstance(index, HashIndex):
                return None
            values = [self._eval_constant(item) for item in expr.items]
            if any(value is _NOT_CONSTANT for value in values):
                return None
            self.stats.used_index = f"{table.name}.{expr.operand.name}"
            return table.get_by_row_ids(index.lookup_many(values))
        return None

    def _eval_constant(self, expr: ast.Expr) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Parameter):
            if expr.name not in self._params:
                raise SQLError(f"missing parameter: {expr.name!r}")
            return self._params[expr.name]
        return _NOT_CONSTANT

    def _apply_join(self, envs: list[Env], join: ast.Join) -> list[Env]:
        table = self._db.table(join.table.name)
        binding = join.table.binding()
        right_rows = table.rows()
        self.stats.rows_scanned += len(right_rows)
        equi = _equi_join_key(join.condition, binding)
        joined: list[Env] = []
        if equi is not None:
            left_key_expr, right_column = equi
            buckets: dict[Any, list[dict[str, Any]]] = {}
            for row in right_rows:
                buckets.setdefault(row.get(right_column), []).append(row)
            for env in envs:
                key = self._eval(left_key_expr, env)
                matches = buckets.get(key, []) if key is not None else []
                for row in matches:
                    joined.append({**env, binding: row})
                    self.stats.rows_joined += 1
                if not matches and join.kind == "left":
                    joined.append({**env, binding: _null_row(table)})
        else:
            for env in envs:
                matched = False
                for row in right_rows:
                    candidate = {**env, binding: row}
                    condition = join.condition
                    if condition is None or _truthy(self._eval(condition, candidate)):
                        joined.append(candidate)
                        matched = True
                        self.stats.rows_joined += 1
                if not matched and join.kind == "left":
                    joined.append({**env, binding: _null_row(table)})
        return joined

    def _grouped_projection(
        self, select: ast.Select, envs: list[Env]
    ) -> list[dict[str, Any]]:
        groups: dict[tuple, list[Env]] = {}
        if select.group_by:
            for env in envs:
                key = tuple(
                    _hashable(self._eval(expr, env)) for expr in select.group_by
                )
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = envs  # implicit single group (may be empty)
        rows: list[dict[str, Any]] = []
        representative_envs: list[Env] = []
        for member_envs in groups.values():
            agg_values = self._compute_aggregates(select, member_envs)
            representative = member_envs[0] if member_envs else {}
            if select.having is not None:
                having_value = self._eval(select.having, representative, agg_values)
                if not _truthy(having_value):
                    continue
            rows.append(self._project(select.items, representative, agg_values))
            representative_envs.append(representative)
        return self._order_rows(select, rows, representative_envs)

    def _compute_aggregates(
        self, select: ast.Select, envs: list[Env]
    ) -> dict[ast.FunctionCall, Any]:
        calls: list[ast.FunctionCall] = []
        for item in select.items:
            calls.extend(_find_aggregates(item.expr))
        if select.having is not None:
            calls.extend(_find_aggregates(select.having))
        for order in select.order_by:
            calls.extend(_find_aggregates(order.expr))
        values: dict[ast.FunctionCall, Any] = {}
        for call in calls:
            if call in values:
                continue
            count_star = bool(call.args) and isinstance(call.args[0], ast.Star)
            count_star = count_star or (call.name == "COUNT" and not call.args)
            accumulator = make_aggregate(call.name, count_star, call.distinct)
            for env in envs:
                if count_star:
                    accumulator.add(1)
                else:
                    if len(call.args) != 1:
                        raise SQLError(f"{call.name} expects one argument")
                    accumulator.add(self._eval(call.args[0], env))
            values[call] = accumulator.result()
        return values

    def _project(
        self,
        items: Iterable[ast.SelectItem],
        env: Env,
        agg_values: dict[ast.FunctionCall, Any] | None = None,
    ) -> dict[str, Any]:
        row: dict[str, Any] = {}
        for item in items:
            if isinstance(item.expr, ast.Star):
                for binding, bound_row in env.items():
                    if item.expr.table is not None and binding != item.expr.table:
                        continue
                    row.update(bound_row)
                continue
            name = item.alias or _output_name(item.expr)
            row[name] = self._eval(item.expr, env, agg_values)
        return row

    def _output_columns(
        self, items: Iterable[ast.SelectItem], envs: list[Env]
    ) -> list[str]:
        columns: list[str] = []
        sample = envs[0] if envs else {}
        for item in items:
            if isinstance(item.expr, ast.Star):
                for binding, bound_row in sample.items():
                    if item.expr.table is not None and binding != item.expr.table:
                        continue
                    columns.extend(c for c in bound_row if c not in columns)
                continue
            name = item.alias or _output_name(item.expr)
            if name not in columns:
                columns.append(name)
        return columns

    def _order_rows(
        self,
        select: ast.Select,
        rows: list[dict[str, Any]],
        envs: list[Env],
    ) -> list[dict[str, Any]]:
        if not select.order_by:
            return rows
        decorated = []
        for position, row in enumerate(rows):
            env = envs[position] if position < len(envs) else {}
            sort_key = []
            for order in select.order_by:
                value = self._order_value(order.expr, row, env)
                sort_key.append(_SortKey(value, order.descending))
            decorated.append((sort_key, position, row))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        return [row for _, _, row in decorated]

    def _order_value(self, expr: ast.Expr, row: dict[str, Any], env: Env) -> Any:
        # ORDER BY may reference an output alias or an input column.
        if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name in row:
            return row[expr.name]
        aggregates = _find_aggregates(expr)
        if aggregates:
            # Grouped query: aggregate results live in the projected row.
            name = _output_name(expr)
            if name in row:
                return row[name]
        try:
            return self._eval(expr, env)
        except SQLError:
            if isinstance(expr, ast.ColumnRef) and expr.name in row:
                return row[expr.name]
            raise

    # ------------------------------------------------------------------
    # DML / DDL
    # ------------------------------------------------------------------
    def _execute_insert(self, insert: ast.Insert) -> SQLResult:
        table = self._db.table(insert.table)
        inserted = 0
        for value_tuple in insert.rows:
            if len(value_tuple) != len(insert.columns):
                raise SQLError(
                    f"INSERT column/value count mismatch: "
                    f"{len(insert.columns)} vs {len(value_tuple)}"
                )
            row = {
                column: self._eval(expr, {})
                for column, expr in zip(insert.columns, value_tuple)
            }
            table.insert(row)
            inserted += 1
        return SQLResult(rowcount=inserted, statement_kind="insert")

    def _execute_update(self, update: ast.Update) -> SQLResult:
        table = self._db.table(update.table)
        binding = update.table

        def predicate(row: dict[str, Any]) -> bool:
            if update.where is None:
                return True
            return _truthy(self._eval(update.where, {binding: row}))

        # Assignments may reference current row values (e.g. salary = salary*2),
        # so compute per-row via update's callback contract.
        count = 0
        for row in table.rows():
            if not predicate(row):
                continue
            env = {binding: row}
            changes = {
                column: self._eval(expr, env) for column, expr in update.assignments
            }
            key_column = table.schema.primary_key()
            if key_column is not None:
                key_value = row[key_column.name]
                table.update(lambda r: r[key_column.name] == key_value, changes)
            else:
                frozen = dict(row)
                table.update(lambda r: r == frozen, changes)
            count += 1
        return SQLResult(rowcount=count, statement_kind="update")

    def _execute_delete(self, delete: ast.Delete) -> SQLResult:
        table = self._db.table(delete.table)
        binding = delete.table
        if delete.where is None:
            count = table.delete(lambda row: True)
        else:
            count = table.delete(
                lambda row: _truthy(self._eval(delete.where, {binding: row}))
            )
        return SQLResult(rowcount=count, statement_kind="delete")

    def _execute_create_table(self, create: ast.CreateTable) -> SQLResult:
        columns = [
            Column(
                name=definition.name,
                type=ColumnType.parse(definition.type_name),
                nullable=not (definition.not_null or definition.primary_key),
                primary_key=definition.primary_key,
            )
            for definition in create.columns
        ]
        self._db.create_table(TableSchema(create.table, tuple(columns)))
        return SQLResult(statement_kind="create_table")

    def _execute_create_index(self, create: ast.CreateIndex) -> SQLResult:
        table = self._db.table(create.table)
        if create.kind not in {"hash", "sorted"}:
            raise StorageError(f"unknown index kind: {create.kind!r}")
        table.create_index(create.column, kind=create.kind)
        return SQLResult(statement_kind="create_index")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(
        self,
        expr: ast.Expr,
        env: Env,
        agg_values: dict[ast.FunctionCall, Any] | None = None,
    ) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Parameter):
            if expr.name not in self._params:
                raise SQLError(f"missing parameter: {expr.name!r}")
            return self._params[expr.name]
        if isinstance(expr, ast.ColumnRef):
            return _resolve(env, expr)
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, env, agg_values)
            if expr.op == "-":
                return None if value is None else -value
            if expr.op == "NOT":
                return None if value is None else not _truthy(value)
            raise SQLError(f"unknown unary operator: {expr.op}")
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env, agg_values)
        if isinstance(expr, ast.InList):
            value = self._eval(expr.operand, env, agg_values)
            if value is None:
                return None
            members = {self._eval(item, env, agg_values) for item in expr.items}
            found = value in members
            return (not found) if expr.negated else found
        if isinstance(expr, ast.Between):
            value = self._eval(expr.operand, env, agg_values)
            low = self._eval(expr.low, env, agg_values)
            high = self._eval(expr.high, env, agg_values)
            if value is None or low is None or high is None:
                return None
            inside = low <= value <= high
            return (not inside) if expr.negated else inside
        if isinstance(expr, ast.IsNull):
            value = self._eval(expr.operand, env, agg_values)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.Exists):
            result = self._execute_select(expr.select)
            found = bool(result.rows)
            return (not found) if expr.negated else found
        if isinstance(expr, ast.Subquery):
            result = self._execute_select(expr.select)
            if not result.rows or not result.columns:
                return None
            return result.rows[0][result.columns[0]]
        if isinstance(expr, ast.InSubquery):
            value = self._eval(expr.operand, env, agg_values)
            if value is None:
                return None
            result = self._execute_select(expr.select)
            if not result.columns:
                return False if not expr.negated else True
            members = {row[result.columns[0]] for row in result.rows}
            found = value in members
            return (not found) if expr.negated else found
        if isinstance(expr, ast.FunctionCall):
            return self._eval_function(expr, env, agg_values)
        if isinstance(expr, ast.CaseWhen):
            for condition, result in expr.whens:
                if _truthy(self._eval(condition, env, agg_values)):
                    return self._eval(result, env, agg_values)
            if expr.default is not None:
                return self._eval(expr.default, env, agg_values)
            return None
        if isinstance(expr, ast.Star):
            raise SQLError("'*' is only valid in select lists and COUNT(*)")
        raise SQLError(f"cannot evaluate expression: {expr!r}")

    def _eval_binary(
        self,
        expr: ast.Binary,
        env: Env,
        agg_values: dict[ast.FunctionCall, Any] | None,
    ) -> Any:
        op = expr.op
        if op == "AND":
            left = self._eval(expr.left, env, agg_values)
            if left is not None and not _truthy(left):
                return False
            right = self._eval(expr.right, env, agg_values)
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self._eval(expr.left, env, agg_values)
            if left is not None and _truthy(left):
                return True
            right = self._eval(expr.right, env, agg_values)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = self._eval(expr.left, env, agg_values)
        right = self._eval(expr.right, env, agg_values)
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if op == "LIKE":
            if left is None or right is None:
                return None
            return _like(str(left), str(right))
        if left is None or right is None:
            return None
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise SQLError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise SQLError("modulo by zero")
            return left % right
        raise SQLError(f"unknown binary operator: {op}")

    def _eval_function(
        self,
        call: ast.FunctionCall,
        env: Env,
        agg_values: dict[ast.FunctionCall, Any] | None,
    ) -> Any:
        if call.is_aggregate:
            if agg_values is None or call not in agg_values:
                raise SQLError(
                    f"aggregate {call.name} used outside a grouped context"
                )
            return agg_values[call]
        handler = SCALAR_FUNCTIONS.get(call.name)
        if handler is None:
            raise SQLError(f"unknown function: {call.name}")
        args = [self._eval(arg, env, agg_values) for arg in call.args]
        return handler(args)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
class _SortKey:
    """Ordering wrapper: NULLs first ascending, comparison-safe, reversible."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.descending
        if b is None:
            return self.descending
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _truthy(value: Any) -> bool:
    """SQL filter semantics: NULL (None) is not true."""
    return bool(value) and value is not None


def _resolve(env: Env, ref: ast.ColumnRef) -> Any:
    if ref.table is not None:
        if ref.table not in env:
            raise SQLError(f"unknown table binding: {ref.table!r}")
        row = env[ref.table]
        if ref.name not in row:
            raise SQLError(f"unknown column {ref.name!r} in {ref.table!r}")
        return row[ref.name]
    matches = [binding for binding, row in env.items() if ref.name in row]
    if not matches:
        raise SQLError(f"unknown column: {ref.name!r}")
    if len(matches) > 1:
        raise SQLError(f"ambiguous column {ref.name!r}: in {sorted(matches)}")
    return env[matches[0]][ref.name]


def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _column_literal(
    left: ast.Expr, right: ast.Expr
) -> tuple[ast.ColumnRef | None, ast.Expr | None]:
    if isinstance(left, ast.ColumnRef) and isinstance(right, (ast.Literal, ast.Parameter)):
        return left, right
    if isinstance(right, ast.ColumnRef) and isinstance(left, (ast.Literal, ast.Parameter)):
        return right, left
    return None, None


def _equi_join_key(
    condition: ast.Expr | None, new_binding: str
) -> tuple[ast.Expr, str] | None:
    """If *condition* is ``existing_expr = new_binding.column``, return
    (existing-side expression, new-side column name) for a hash join."""
    if not isinstance(condition, ast.Binary) or condition.op != "=":
        return None
    left, right = condition.left, condition.right
    if isinstance(right, ast.ColumnRef) and right.table == new_binding:
        if not _mentions_binding(left, new_binding):
            return left, right.name
    if isinstance(left, ast.ColumnRef) and left.table == new_binding:
        if not _mentions_binding(right, new_binding):
            return right, left.name
    return None


def _mentions_binding(expr: ast.Expr, binding: str) -> bool:
    if isinstance(expr, ast.ColumnRef):
        return expr.table == binding
    if isinstance(expr, ast.Binary):
        return _mentions_binding(expr.left, binding) or _mentions_binding(expr.right, binding)
    if isinstance(expr, ast.Unary):
        return _mentions_binding(expr.operand, binding)
    if isinstance(expr, ast.FunctionCall):
        return any(_mentions_binding(arg, binding) for arg in expr.args)
    return False


def _find_aggregates(expr: ast.Expr) -> list[ast.FunctionCall]:
    found: list[ast.FunctionCall] = []
    if isinstance(expr, ast.FunctionCall):
        if expr.is_aggregate:
            found.append(expr)
            return found
        for arg in expr.args:
            found.extend(_find_aggregates(arg))
    elif isinstance(expr, ast.Binary):
        found.extend(_find_aggregates(expr.left))
        found.extend(_find_aggregates(expr.right))
    elif isinstance(expr, ast.Unary):
        found.extend(_find_aggregates(expr.operand))
    elif isinstance(expr, ast.InList):
        found.extend(_find_aggregates(expr.operand))
        for item in expr.items:
            found.extend(_find_aggregates(item))
    elif isinstance(expr, ast.Between):
        for sub in (expr.operand, expr.low, expr.high):
            found.extend(_find_aggregates(sub))
    elif isinstance(expr, ast.IsNull):
        found.extend(_find_aggregates(expr.operand))
    elif isinstance(expr, ast.CaseWhen):
        for condition, result in expr.whens:
            found.extend(_find_aggregates(condition))
            found.extend(_find_aggregates(result))
        if expr.default is not None:
            found.extend(_find_aggregates(expr.default))
    return found


def _output_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        if expr.args and isinstance(expr.args[0], ast.Star):
            return f"{expr.name}(*)"
        arg_names = ", ".join(_output_name(arg) for arg in expr.args)
        return f"{expr.name}({arg_names})"
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.Binary):
        return f"{_output_name(expr.left)} {expr.op} {_output_name(expr.right)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op} {_output_name(expr.operand)}"
    return "expr"


def _like(text: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.fullmatch(regex, text, flags=re.IGNORECASE) is not None


def _null_row(table: Table) -> dict[str, Any]:
    return {name: None for name in table.schema.column_names()}


def _distinct_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    seen: set[tuple] = set()
    result = []
    for row in rows:
        key = tuple(_hashable(row[k]) for k in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value
