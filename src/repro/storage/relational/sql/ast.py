"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class Parameter(Expr):
    name: str


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    table: str | None = None


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-", "NOT"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, LIKE, ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str  # normalized upper-case
    args: tuple[Expr, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class CaseWhen(Expr):
    whens: tuple[tuple[Expr, Expr], ...]  # (condition, result) pairs
    default: Expr | None = None


@dataclass(frozen=True)
class Subquery(Expr):
    """A scalar subquery: ``(SELECT ...)`` used as a value."""

    select: "Select"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` membership test."""

    operand: Expr
    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)`` emptiness test."""

    select: "Select"
    negated: bool = False


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Expr | None  # None only for CROSS-like joins (not produced)
    kind: str = "inner"  # inner | left


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    column: str
    kind: str = "hash"  # hash | sorted


Statement = Select | Insert | Update | Delete | CreateTable | CreateIndex
