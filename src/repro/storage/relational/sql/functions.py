"""Scalar functions and aggregate accumulators for the SQL engine."""

from __future__ import annotations

from typing import Any, Callable

from ....errors import SQLError


def _require_arity(name: str, args: list[Any], *counts: int) -> None:
    if len(args) not in counts:
        expected = " or ".join(str(c) for c in counts)
        raise SQLError(f"{name} expects {expected} argument(s), got {len(args)}")


def _upper(args: list[Any]) -> Any:
    _require_arity("UPPER", args, 1)
    return None if args[0] is None else str(args[0]).upper()


def _lower(args: list[Any]) -> Any:
    _require_arity("LOWER", args, 1)
    return None if args[0] is None else str(args[0]).lower()


def _length(args: list[Any]) -> Any:
    _require_arity("LENGTH", args, 1)
    return None if args[0] is None else len(str(args[0]))


def _abs(args: list[Any]) -> Any:
    _require_arity("ABS", args, 1)
    return None if args[0] is None else abs(args[0])


def _round(args: list[Any]) -> Any:
    _require_arity("ROUND", args, 1, 2)
    if args[0] is None:
        return None
    digits = int(args[1]) if len(args) == 2 else 0
    return round(float(args[0]), digits)


def _coalesce(args: list[Any]) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _substr(args: list[Any]) -> Any:
    _require_arity("SUBSTR", args, 2, 3)
    if args[0] is None:
        return None
    text = str(args[0])
    start = int(args[1]) - 1  # SQL is 1-indexed
    if start < 0:
        start = 0
    if len(args) == 3:
        return text[start : start + int(args[2])]
    return text[start:]


def _concat(args: list[Any]) -> Any:
    return "".join("" if value is None else str(value) for value in args)


def _trim(args: list[Any]) -> Any:
    _require_arity("TRIM", args, 1)
    return None if args[0] is None else str(args[0]).strip()


def _replace(args: list[Any]) -> Any:
    _require_arity("REPLACE", args, 3)
    if args[0] is None:
        return None
    return str(args[0]).replace(str(args[1]), str(args[2]))


SCALAR_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "UPPER": _upper,
    "LOWER": _lower,
    "LENGTH": _length,
    "ABS": _abs,
    "ROUND": _round,
    "COALESCE": _coalesce,
    "SUBSTR": _substr,
    "CONCAT": _concat,
    "TRIM": _trim,
    "REPLACE": _replace,
}


class Aggregate:
    """Base accumulator; one instance per (group, aggregate expression)."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAgg(Aggregate):
    def __init__(self, count_star: bool, distinct: bool) -> None:
        self._count_star = count_star
        self._distinct = distinct
        self._count = 0
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if self._count_star:
            self._count += 1
            return
        if value is None:
            return
        if self._distinct:
            self._seen.add(value)
        else:
            self._count += 1

    def result(self) -> int:
        return len(self._seen) if self._distinct else self._count


class SumAgg(Aggregate):
    def __init__(self) -> None:
        self._total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def result(self) -> Any:
        return self._total


class AvgAgg(Aggregate):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total += value
        self._count += 1

    def result(self) -> Any:
        return self._total / self._count if self._count else None


class MinAgg(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def result(self) -> Any:
        return self._value


class MaxAgg(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def result(self) -> Any:
        return self._value


def make_aggregate(name: str, count_star: bool = False, distinct: bool = False) -> Aggregate:
    """Instantiate the accumulator for aggregate *name*."""
    if name == "COUNT":
        return CountAgg(count_star, distinct)
    if name == "SUM":
        return SumAgg()
    if name == "AVG":
        return AvgAgg()
    if name == "MIN":
        return MinAgg()
    if name == "MAX":
        return MaxAgg()
    raise SQLError(f"unknown aggregate function: {name}")
