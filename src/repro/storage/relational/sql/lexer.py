"""SQL lexer: turns statement text into a token stream."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ....errors import SQLError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN",
    "IS", "NULL", "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "OUTER", "ON",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
    "INDEX", "PRIMARY", "KEY", "ASC", "DESC", "CASE", "WHEN", "THEN", "ELSE",
    "END", "USING", "EXISTS",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAMETER = "parameter"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),."


def tokenize(sql: str) -> list[Token]:
    """Lex *sql* into tokens; raises :class:`SQLError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = i + 1
            parts: list[str] = []
            while True:
                if end >= n:
                    raise SQLError(f"unterminated string literal at {i}")
                if sql[end] == "'":
                    if end + 1 < n and sql[end + 1] == "'":  # escaped quote
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(sql[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            end = i
            seen_dot = False
            while end < n and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = end
            continue
        if ch == ":":
            end = i + 1
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            if end == i + 1:
                raise SQLError(f"bare ':' at {i}")
            tokens.append(Token(TokenType.PARAMETER, sql[i + 1 : end], i))
            i = end
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SQLError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
