"""Vector storage: exact (flat) and approximate (IVF) similarity indices."""

from .index import FlatIndex, IVFIndex

__all__ = ["FlatIndex", "IVFIndex"]
