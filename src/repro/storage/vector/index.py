"""Vector indices for embedding search.

The agent and data registries search over "learned representations derived
from metadata and logs" (Sections V-C/D).  Two index structures:

* :class:`FlatIndex` — exact brute-force search,
* :class:`IVFIndex` — inverted-file approximate search: vectors are
  clustered with k-means at build time and queries probe the nearest
  ``n_probes`` clusters.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ...errors import QueryError


def _normalize_metric(metric: str) -> str:
    if metric not in {"cosine", "dot", "l2"}:
        raise QueryError(f"unknown metric: {metric!r} (want cosine/dot/l2)")
    return metric


def _as_matrix(vectors: Sequence[Sequence[float]] | np.ndarray, dim: int | None) -> np.ndarray:
    matrix = np.asarray(vectors, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if dim is not None and matrix.shape[1] != dim:
        raise QueryError(f"dimension mismatch: index dim={dim}, got {matrix.shape[1]}")
    return matrix


def _scores(matrix: np.ndarray, query: np.ndarray, metric: str) -> np.ndarray:
    """Similarity scores (higher is better) of *query* vs rows of *matrix*."""
    if metric == "dot":
        return matrix @ query
    if metric == "cosine":
        norms = np.linalg.norm(matrix, axis=1) * np.linalg.norm(query)
        norms = np.where(norms == 0, 1.0, norms)
        return (matrix @ query) / norms
    # l2: negate distance so that higher is better everywhere.
    return -np.linalg.norm(matrix - query, axis=1)


class FlatIndex:
    """Exact nearest-neighbor search over all stored vectors."""

    kind = "flat"

    def __init__(self, dim: int, metric: str = "cosine") -> None:
        if dim <= 0:
            raise QueryError(f"dimension must be positive: {dim}")
        self.dim = dim
        self.metric = _normalize_metric(metric)
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._keys: list[Any] = []

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: Any, vector: Sequence[float] | np.ndarray) -> None:
        matrix = _as_matrix(vector, self.dim)
        self._vectors = np.vstack([self._vectors, matrix])
        self._keys.append(key)

    def add_many(self, items: Iterable[tuple[Any, Sequence[float]]]) -> None:
        for key, vector in items:
            self.add(key, vector)

    def search(self, query: Sequence[float] | np.ndarray, k: int = 5) -> list[tuple[Any, float]]:
        """Top-*k* (key, score) pairs; score is higher-is-better."""
        if not self._keys:
            return []
        query_vec = _as_matrix(query, self.dim)[0]
        scores = _scores(self._vectors, query_vec, self.metric)
        k = min(k, len(self._keys))
        top = np.argsort(-scores, kind="stable")[:k]
        return [(self._keys[i], float(scores[i])) for i in top]


class IVFIndex:
    """Inverted-file approximate index (k-means clusters, probed search)."""

    kind = "ivf"

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        n_clusters: int = 8,
        n_probes: int = 2,
        seed: int = 7,
    ) -> None:
        if dim <= 0:
            raise QueryError(f"dimension must be positive: {dim}")
        if n_clusters <= 0 or n_probes <= 0:
            raise QueryError("n_clusters and n_probes must be positive")
        self.dim = dim
        self.metric = _normalize_metric(metric)
        self.n_clusters = n_clusters
        self.n_probes = min(n_probes, n_clusters)
        self._seed = seed
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._keys: list[Any] = []
        self._centroids: np.ndarray | None = None
        self._assignments: list[list[int]] = []

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: Any, vector: Sequence[float] | np.ndarray) -> None:
        matrix = _as_matrix(vector, self.dim)
        self._vectors = np.vstack([self._vectors, matrix])
        self._keys.append(key)
        self._centroids = None  # built lazily on next search

    def add_many(self, items: Iterable[tuple[Any, Sequence[float]]]) -> None:
        for key, vector in items:
            self.add(key, vector)

    def build(self, iterations: int = 10) -> None:
        """(Re)cluster stored vectors with k-means."""
        n = len(self._keys)
        if n == 0:
            raise QueryError("cannot build an empty IVF index")
        k = min(self.n_clusters, n)
        rng = np.random.default_rng(self._seed)
        centroids = self._vectors[rng.choice(n, size=k, replace=False)].copy()
        assignments = np.zeros(n, dtype=np.int64)
        for _ in range(iterations):
            distances = np.linalg.norm(
                self._vectors[:, None, :] - centroids[None, :, :], axis=2
            )
            assignments = distances.argmin(axis=1)
            for cluster in range(k):
                members = self._vectors[assignments == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        self._centroids = centroids
        self._assignments = [[] for _ in range(k)]
        for position, cluster in enumerate(assignments):
            self._assignments[int(cluster)].append(position)

    def search(self, query: Sequence[float] | np.ndarray, k: int = 5) -> list[tuple[Any, float]]:
        if not self._keys:
            return []
        if self._centroids is None:
            self.build()
        assert self._centroids is not None
        query_vec = _as_matrix(query, self.dim)[0]
        centroid_distances = np.linalg.norm(self._centroids - query_vec, axis=1)
        probe_order = np.argsort(centroid_distances, kind="stable")[: self.n_probes]
        candidates: list[int] = []
        for cluster in probe_order:
            candidates.extend(self._assignments[int(cluster)])
        if not candidates:
            return []
        matrix = self._vectors[candidates]
        scores = _scores(matrix, query_vec, self.metric)
        k = min(k, len(candidates))
        top = np.argsort(-scores, kind="stable")[:k]
        return [(self._keys[candidates[i]], float(scores[i])) for i in top]
