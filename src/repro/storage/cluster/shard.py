"""A shard group: R replicas, quorum appends/reads, failover.

The protocol is primary-backup with majority quorums over a *fixed*
membership of R replicas (quorum = ``R // 2 + 1``):

* **Append** — the router (the sole sequencer) offers the op to every
  replica whose log is at the canonical next sequence; if fewer than a
  quorum can accept, the append raises
  :class:`~repro.errors.ClusterUnavailableError` *without touching any
  replica*, so logs never diverge and un-acked partial writes cannot
  masquerade as data.  An acked append therefore lives on >= quorum
  replicas.
* **Quorum read** — reads the quorum of live replicas with the longest
  logs; since any two majorities of the same R-set intersect, the
  longest log in a read quorum always contains the latest acked append.
  Lagging quorum members are read-repaired (suffix replay) on the way.
* **Scan read** — full scans go to the primary.  :meth:`primary` checks
  health first and promotes a caught-up successor if the primary is
  dead, partitioned, or suspected — promotion is serialized under the
  group lock and re-checked inside it, so concurrent scanners under the
  thread backend cannot double-promote.
* **Anti-entropy** — :meth:`sync_all` replays the longest live log onto
  every lagging or SYNCING replica; a synced replica rejoins the
  acceptor/quorum sets.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ...errors import ClusterUnavailableError
from .failure import FailureDetector
from .replica import ApplyFn, Replica, ReplicaStatus, StateFactory

EventFn = Callable[..., None]  # (kind, **detail)


class ShardGroup:
    """One shard's replica set plus its quorum/failover protocol."""

    def __init__(
        self,
        shard_index: int,
        n_replicas: int,
        state_factory: StateFactory,
        apply_fn: ApplyFn,
        detector: FailureDetector,
        record_event: EventFn,
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1: {n_replicas}")
        self.shard_index = shard_index
        self.replicas = [
            Replica(f"s{shard_index}.r{i}", shard_index, i, state_factory, apply_fn)
            for i in range(n_replicas)
        ]
        self.quorum = n_replicas // 2 + 1
        self.primary_index = 0
        #: Canonical history length == highest acked sequence.  The two
        #: never diverge because appends are all-or-nothing: an append
        #: either reaches every accepting replica (>= quorum) and is
        #: acked, or touches none and raises.
        self.acked = 0
        self.read_repairs = 0
        self.promotions = 0
        self._detector = detector
        self._record = record_event
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Membership views
    # ------------------------------------------------------------------
    def replica(self, index: int) -> Replica:
        return self.replicas[index]

    def _contactable(self) -> list[Replica]:
        """Replicas the router can currently reach (ALIVE and not partitioned)."""
        return [
            r
            for r in self.replicas
            if r.status is ReplicaStatus.ALIVE and r.reachable
        ]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, op: dict[str, Any]) -> Any:
        """Quorum-append *op*; returns the (first) acceptor's apply result.

        Raises:
            ClusterUnavailableError: when fewer than a quorum of replicas
                can accept — nothing is applied and the write is NOT acked.
        """
        with self._lock:
            seq = self.acked
            acceptors = [r for r in self.replicas if r.can_accept(seq)]
            if len(acceptors) < self.quorum:
                raise ClusterUnavailableError(
                    f"shard {self.shard_index}: {len(acceptors)} of "
                    f"{len(self.replicas)} replicas accepting, quorum is "
                    f"{self.quorum}"
                )
            result = None
            for position, replica in enumerate(acceptors):
                value = replica.append(op)
                if position == 0:
                    result = value
            self.acked = seq + 1
            return result

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def quorum_state(self) -> Any:
        """State observed by a majority read (always >= latest acked).

        Reads the quorum with the longest logs; repairs lagging members.
        """
        with self._lock:
            candidates = sorted(
                self._contactable(), key=lambda r: (-r.applied, r.index)
            )
            if len(candidates) < self.quorum:
                raise ClusterUnavailableError(
                    f"shard {self.shard_index}: {len(candidates)} live "
                    f"replicas, read quorum is {self.quorum}"
                )
            readers = candidates[: self.quorum]
            best = readers[0]
            if best.applied < self.acked:
                raise ClusterUnavailableError(
                    f"shard {self.shard_index}: freshest live replica at "
                    f"seq {best.applied} < acked {self.acked}"
                )
            for lagging in readers[1:]:
                if lagging.applied < best.applied:
                    self.read_repairs += lagging.catch_up(best)
                    self._record(
                        "read_repair",
                        shard=self.shard_index,
                        replica=lagging.replica_id,
                        caught_up_to=best.applied,
                    )
            return best.state

    def primary(self) -> Replica:
        """The healthy, caught-up primary — promoting one if necessary."""
        with self._lock:
            current = self.replicas[self.primary_index]
            if (
                current.status is ReplicaStatus.ALIVE
                and current.reachable
                and current.applied >= self.acked
            ):
                return current
            return self.promote()

    def promote(self, now: float | None = None) -> Replica:
        """Elect the most caught-up live replica as primary.

        Serialized and re-checked under the group lock: two concurrent
        callers observing a dead primary produce exactly one promotion.
        """
        with self._lock:
            current = self.replicas[self.primary_index]
            if (
                current.status is ReplicaStatus.ALIVE
                and current.reachable
                and current.applied >= self.acked
                and (now is None or not self._detector.suspects(current.replica_id, now))
            ):
                return current  # a racing caller already promoted
            candidates = sorted(
                (
                    r
                    for r in self._contactable()
                    if now is None
                    or not self._detector.suspects(r.replica_id, now)
                ),
                key=lambda r: (-r.applied, r.index),
            )
            if not candidates or candidates[0].applied < self.acked:
                raise ClusterUnavailableError(
                    f"shard {self.shard_index}: no caught-up live replica "
                    f"to promote (acked {self.acked})"
                )
            elected = candidates[0]
            if elected.index != self.primary_index:
                self.promotions += 1
                self._record(
                    "promotion",
                    shard=self.shard_index,
                    old_primary=current.replica_id,
                    new_primary=elected.replica_id,
                    at_seq=elected.applied,
                )
                self.primary_index = elected.index
            return elected

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def sync_all(self) -> int:
        """Replay the longest live log onto every lagging/SYNCING replica.

        Returns the number of ops replayed across replicas.  SYNCING
        replicas that reach the donor's length rejoin as ALIVE.
        """
        with self._lock:
            up = [
                r
                for r in self.replicas
                if r.status is not ReplicaStatus.DEAD and r.reachable
            ]
            if not up:
                return 0
            donor = max(up, key=lambda r: (r.applied, -r.index))
            if donor.applied < self.acked:
                # Every holder of the acked tail is currently down; wait
                # for one to restart rather than resurrect stale data.
                return 0
            replayed = 0
            for replica in up:
                if replica is donor:
                    pass
                elif replica.applied < donor.applied:
                    replayed += replica.catch_up(donor)
                    self._record(
                        "anti_entropy",
                        shard=self.shard_index,
                        replica=replica.replica_id,
                        caught_up_to=donor.applied,
                    )
                if (
                    replica.status is ReplicaStatus.SYNCING
                    and replica.applied >= donor.applied
                ):
                    replica.status = ReplicaStatus.ALIVE
                    self._record(
                        "rejoin", shard=self.shard_index, replica=replica.replica_id
                    )
            return replayed

    def has_syncing(self) -> bool:
        return any(r.status is ReplicaStatus.SYNCING for r in self.replicas)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        return {
            "shard": self.shard_index,
            "primary": self.replicas[self.primary_index].replica_id,
            "acked": self.acked,
            "quorum": self.quorum,
            "read_repairs": self.read_repairs,
            "promotions": self.promotions,
            "replicas": [r.describe() for r in self.replicas],
        }
