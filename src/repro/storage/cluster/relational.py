"""Sharded, replicated relational database with SQL fan-out and merge.

Each replica's state is a full single-node :class:`Database` holding the
shard's horizontal slice of every table.  A table routes rows by its
``partition_column`` (defaulting to the primary key), so WHERE clauses
with an equality or ``IN`` conjunct on that column prune the SELECT
fan-out to the owning shards.

SQL execution at the router takes one of two paths:

* **Pushdown** — single-table SELECTs without aggregates, grouping,
  DISTINCT, or OFFSET execute on each pruned shard's primary (ORDER BY
  and LIMIT pushed down: per-shard top-k is a superset of the global
  top-k), then the router merges, re-sorts, and re-limits.
* **Gather** — anything else (joins, aggregates, GROUP BY, subqueries)
  copies the pruned slices of every referenced table into an ephemeral
  single-node scratch database and runs the original statement there
  once.  Slower, but gives full SQL semantics with one implementation.

Writes never take a shortcut: INSERT rows are evaluated at the router,
routed by partition value, and quorum-appended; UPDATE/DELETE replay the
statement itself on each pruned shard (all replicas execute the same SQL
in the same order, so their tables stay identical).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ...clock import SimClock
from ...errors import StorageError
from ..document.store import _sortable
from ..relational.database import Database, SQLResult
from ..relational.sql import ast
from ..relational.sql.executor import _column_literal, _conjuncts, execute_sql
from ..relational.sql.parser import parse
from ..schema import Column, ColumnType, TableSchema
from .cluster import StoreCluster

_NOT_CONSTANT = object()


# ----------------------------------------------------------------------
# Op serialization helpers (ops must be JSON-able for log digests)
# ----------------------------------------------------------------------
def _schema_to_json(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "description": schema.description,
        "columns": [
            {
                "name": c.name,
                "type": c.type.name,
                "nullable": c.nullable,
                "primary_key": c.primary_key,
                "description": c.description,
            }
            for c in schema.columns
        ],
    }


def _schema_from_json(data: Mapping[str, Any]) -> TableSchema:
    return TableSchema(
        name=data["name"],
        columns=tuple(
            Column(
                name=c["name"],
                type=ColumnType[c["type"]],
                nullable=c["nullable"],
                primary_key=c["primary_key"],
                description=c["description"],
            )
            for c in data["columns"]
        ),
        description=data["description"],
    )


def _make_database() -> Database:
    return Database("shard")


def _apply_relational(state: Database, op: dict[str, Any]) -> Any:
    kind = op["op"]
    if kind == "create_table":
        if not state.has_table(op["schema"]["name"]):
            state.create_table(_schema_from_json(op["schema"]))
        return None
    if kind == "insert":
        state.table(op["table"]).insert(op["row"])
        return 1
    if kind == "insert_many":
        state.table(op["table"]).insert_many(op["rows"])
        return len(op["rows"])
    if kind == "create_index":
        table = state.table(op["table"])
        if op["column"] not in table.indexed_columns():
            table.create_index(op["column"], kind=op["kind"])
        return None
    if kind == "sql":
        return state.execute(op["sql"], op.get("parameters") or {}).rowcount
    raise StorageError(f"unknown relational op: {kind}")


class ShardedTable:
    """Router facade over one table's slices (registry-compatible)."""

    def __init__(
        self,
        database: "ShardedDatabase",
        schema: TableSchema,
        partition_column: str,
    ) -> None:
        self._database = database
        self._cluster = database.cluster
        self.schema = schema
        self.partition_column = partition_column

    @property
    def name(self) -> str:
        return self.schema.name

    def _route(self, value: Any) -> str:
        return f"{self.schema.name.lower()}|{value}"

    def shard_for_value(self, value: Any) -> int:
        return self._cluster.shard_for(self._route(value))

    def shards_for_values(self, values: Iterable[Any]) -> list[int]:
        return self._cluster.ring.shards_for(self._route(v) for v in values)

    # -- mutation ------------------------------------------------------
    def insert(self, row: Mapping[str, Any]) -> None:
        validated = self.schema.validate_row(dict(row))
        shard = self.shard_for_value(validated.get(self.partition_column))
        self._cluster.append_to(
            shard, {"op": "insert", "table": self.schema.name, "row": validated}
        )

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Bulk insert, batched into one quorum append per touched shard."""
        batches: dict[int, list[dict[str, Any]]] = {}
        for row in rows:
            validated = self.schema.validate_row(dict(row))
            shard = self.shard_for_value(validated.get(self.partition_column))
            batches.setdefault(shard, []).append(validated)
        total = 0
        for shard in sorted(batches):
            total += self._cluster.append_to(
                shard,
                {
                    "op": "insert_many",
                    "table": self.schema.name,
                    "rows": batches[shard],
                },
            )
        return total

    def create_index(self, column: str, kind: str = "hash") -> None:
        self._cluster.broadcast(
            {
                "op": "create_index",
                "table": self.schema.name,
                "column": column,
                "kind": kind,
            }
        )

    # -- reads (registry/introspection) --------------------------------
    def _shard_tables(self, indices: list[int] | None = None):
        for state in self._cluster.primary_states(indices):
            if state.has_table(self.schema.name):
                yield state.table(self.schema.name)

    def rows(self) -> list[dict[str, Any]]:
        collected: list[dict[str, Any]] = []
        for table in self._shard_tables():
            collected.extend(table.rows())
        return collected

    def scan(self) -> Iterable[dict[str, Any]]:
        return iter(self.rows())

    def indexed_columns(self) -> dict[str, str]:
        for table in self._shard_tables([0]):
            return table.indexed_columns()
        return {}

    def __len__(self) -> int:
        return sum(len(table) for table in self._shard_tables())


class ShardedDatabase(Database):
    """Drop-in ``Database`` facade over a :class:`StoreCluster`."""

    def __init__(
        self,
        name: str,
        n_shards: int = 4,
        n_replicas: int = 3,
        clock: SimClock | None = None,
        seed: int = 0,
        description: str = "",
        **cluster_options: Any,
    ) -> None:
        super().__init__(name, description)
        self._clock = clock or SimClock()
        self.cluster = StoreCluster(
            f"sql:{name}",
            n_shards,
            n_replicas,
            _make_database,
            _apply_relational,
            clock=self._clock,
            seed=seed,
            **cluster_options,
        )
        self._fronts: dict[str, ShardedTable] = {}
        #: Stats of the most recent SELECT — span attributes + bench gate.
        self.last_execute_stats: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(
        self, schema: TableSchema, partition_column: str | None = None
    ) -> ShardedTable:
        with self._lock:
            key = schema.name.lower()
            if key in self._fronts:
                raise StorageError(f"table already exists: {schema.name!r}")
            if partition_column is None:
                pk = schema.primary_key()
                partition_column = pk.name if pk is not None else schema.columns[0].name
            if not schema.has_column(partition_column):
                raise StorageError(
                    f"partition column {partition_column!r} not in {schema.name!r}"
                )
            self.cluster.broadcast(
                {"op": "create_table", "schema": _schema_to_json(schema)}
            )
            front = ShardedTable(self, schema, partition_column)
            self._fronts[key] = front
            return front

    def drop_table(self, name: str) -> None:
        raise StorageError("sharded databases do not support DROP TABLE")

    def table(self, name: str) -> ShardedTable:
        with self._lock:
            front = self._fronts.get(name.lower())
        if front is None:
            raise StorageError(f"unknown table: {name!r} in database {self.name!r}")
        return front

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._fronts

    def tables(self) -> list[ShardedTable]:
        with self._lock:
            return [self._fronts[k] for k in sorted(self._fronts)]

    def table_names(self) -> list[str]:
        return sorted(front.name for front in self.tables())

    def describe(self) -> dict[str, Any]:
        return {
            "database": self.name,
            "description": self.description,
            "tables": [front.schema.describe() for front in self.tables()],
            "cluster": self.cluster.describe(),
        }

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------
    def execute(self, sql: str, parameters: dict[str, Any] | None = None) -> SQLResult:
        parameters = parameters or {}
        statement = parse(sql)
        obs = self.observability
        if obs is None:
            return self._execute_statement(statement, sql, parameters)
        with obs.span(f"sql:{self.name}", kind="storage", database=self.name) as span:
            result = self._execute_statement(statement, sql, parameters)
            span.set_attribute("statement_kind", result.statement_kind)
            span.set_attribute("rows", len(result.rows))
            for key in ("shards_scanned", "shards_total", "pruned"):
                if key in self.last_execute_stats:
                    span.set_attribute(key, self.last_execute_stats[key])
            obs.metrics.inc("storage.queries", database=self.name)
            obs.metrics.inc("storage.rows", len(result.rows), database=self.name)
            return result

    def _execute_statement(
        self, statement: ast.Statement, sql: str, parameters: dict[str, Any]
    ) -> SQLResult:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, sql, parameters)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, (ast.Update, ast.Delete)):
            front = self.table(statement.table)
            shards = self._prune(
                statement.where, front, statement.table, parameters
            )
            rowcount = sum(
                self.cluster.append_to(
                    shard, {"op": "sql", "sql": sql, "parameters": parameters}
                )
                for shard in shards
            )
            kind = "update" if isinstance(statement, ast.Update) else "delete"
            self.last_execute_stats = {
                "shards_scanned": len(shards),
                "shards_total": self.cluster.n_shards,
                "pruned": len(shards) < self.cluster.n_shards,
                "path": kind,
                "rows": rowcount,
            }
            return SQLResult(rowcount=rowcount, statement_kind=kind)
        if isinstance(statement, ast.CreateTable):
            schema = TableSchema(
                name=statement.table,
                columns=tuple(
                    Column(
                        name=c.name,
                        type=ColumnType.parse(c.type_name),
                        nullable=not (c.not_null or c.primary_key),
                        primary_key=c.primary_key,
                    )
                    for c in statement.columns
                ),
            )
            self.create_table(schema)
            return SQLResult(statement_kind="create_table")
        if isinstance(statement, ast.CreateIndex):
            self.table(statement.table).create_index(
                statement.column, kind=statement.kind
            )
            return SQLResult(statement_kind="create_index")
        raise StorageError(f"unsupported statement: {statement!r}")

    # -- INSERT --------------------------------------------------------
    def _execute_insert(
        self, statement: ast.Insert, parameters: dict[str, Any]
    ) -> SQLResult:
        front = self.table(statement.table)
        count = 0
        for value_row in statement.rows:
            values = [self._const(expr, parameters) for expr in value_row]
            if any(v is _NOT_CONSTANT for v in values):
                raise StorageError(
                    "sharded INSERT supports literal/parameter values only"
                )
            front.insert(dict(zip(statement.columns, values)))
            count += 1
        return SQLResult(rowcount=count, statement_kind="insert")

    # -- SELECT --------------------------------------------------------
    def _execute_select(
        self, select: ast.Select, sql: str, parameters: dict[str, Any]
    ) -> SQLResult:
        front = self.table(select.table.name)
        shards = self._prune(
            select.where, front, select.table.binding(), parameters
        )
        pruned = len(shards) < self.cluster.n_shards
        if self._can_push_down(select):
            result = self._pushdown_select(select, sql, parameters, shards)
            path = "pushdown"
        else:
            result = self._gather_select(select, sql, parameters, shards)
            path = "gather"
        self.last_execute_stats = {
            "shards_scanned": len(shards),
            "shards_total": self.cluster.n_shards,
            "pruned": pruned,
            "path": path,
            "rows_scanned": self.last_execute_stats.get("rows_scanned", 0),
            "rows": len(result.rows),
        }
        self.cluster._metric(
            "cluster.shards_scanned", float(len(shards)), database=self.name
        )
        return result

    def _can_push_down(self, select: ast.Select) -> bool:
        if select.joins or select.group_by or select.having is not None:
            return False
        if select.distinct or select.offset:
            return False
        if any(_has_aggregate(item.expr) for item in select.items):
            return False
        for item in select.order_by:
            if not isinstance(item.expr, ast.ColumnRef):
                return False
        return True

    def _pushdown_select(
        self,
        select: ast.Select,
        sql: str,
        parameters: dict[str, Any],
        shards: list[int],
    ) -> SQLResult:
        rows: list[dict[str, Any]] = []
        columns: list[str] = []
        scanned = 0
        for state in self.cluster.primary_states(shards):
            if not state.has_table(select.table.name):
                continue
            shard_result = execute_sql(state, sql, parameters)
            rows.extend(shard_result.rows)
            columns = shard_result.columns or columns
            stats = getattr(shard_result, "stats", None)
            if stats is not None:
                scanned += stats.rows_scanned + stats.index_lookups
        if select.order_by and len(shards) > 1:
            for item in reversed(select.order_by):
                name = self._output_name(select, item.expr)
                rows.sort(
                    key=lambda row: _sortable(row.get(name)),
                    reverse=item.descending,
                )
        if select.limit is not None:
            rows = rows[: select.limit]
        self.last_execute_stats = {"rows_scanned": scanned}
        return SQLResult(rows=rows, columns=columns, statement_kind="select")

    @staticmethod
    def _output_name(select: ast.Select, ref: ast.ColumnRef) -> str:
        for item in select.items:
            if item.alias is not None and isinstance(item.expr, ast.ColumnRef):
                if item.expr.name == ref.name:
                    return item.alias
        return ref.name

    def _gather_select(
        self,
        select: ast.Select,
        sql: str,
        parameters: dict[str, Any],
        shards: list[int],
    ) -> SQLResult:
        """Copy pruned slices into a scratch database; run the SQL once."""
        scratch = Database(f"{self.name}:scratch")
        copied = 0
        refs = [(select.table.name, select.table.binding(), shards)]
        for join in select.joins:
            join_front = self.table(join.table.name)
            join_shards = self._prune(
                select.where, join_front, join.table.binding(), parameters
            )
            refs.append((join.table.name, join.table.binding(), join_shards))
        for table_name, _binding, table_shards in refs:
            if scratch.has_table(table_name):
                continue
            front = self.table(table_name)
            target = scratch.create_table(front.schema)
            for state in self.cluster.primary_states(table_shards):
                if state.has_table(table_name):
                    slice_rows = state.table(table_name).rows()
                    target.insert_many(slice_rows)
                    copied += len(slice_rows)
            for column, kind in front.indexed_columns().items():
                if column not in target.indexed_columns():
                    target.create_index(column, kind=kind)
        result = execute_sql(scratch, sql, parameters)
        self.last_execute_stats = {"rows_scanned": copied}
        return result

    # -- pruning -------------------------------------------------------
    def _prune(
        self,
        where: ast.Expr | None,
        front: ShardedTable,
        binding: str,
        parameters: dict[str, Any],
    ) -> list[int]:
        if where is None:
            return self.cluster.ring.all_shards()
        column = front.partition_column
        for conjunct in _conjuncts(where):
            if isinstance(conjunct, ast.Binary) and conjunct.op == "=":
                ref, literal = _column_literal(conjunct.left, conjunct.right)
                if (
                    ref is not None
                    and ref.name.lower() == column.lower()
                    and ref.table in (None, binding)
                ):
                    value = self._const(literal, parameters)
                    if value is not _NOT_CONSTANT:
                        return [front.shard_for_value(value)]
            if (
                isinstance(conjunct, ast.InList)
                and not conjunct.negated
                and isinstance(conjunct.operand, ast.ColumnRef)
                and conjunct.operand.name.lower() == column.lower()
                and conjunct.operand.table in (None, binding)
            ):
                values = [self._const(item, parameters) for item in conjunct.items]
                if all(v is not _NOT_CONSTANT for v in values):
                    return front.shards_for_values(values)
        return self.cluster.ring.all_shards()

    def _const(self, expr: ast.Expr | None, parameters: dict[str, Any]) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Parameter):
            if expr.name in parameters:
                return parameters[expr.name]
            raise StorageError(f"missing SQL parameter: {expr.name!r}")
        return _NOT_CONSTANT

    # ------------------------------------------------------------------
    # Cluster plumbing
    # ------------------------------------------------------------------
    def tick(self, advance: float | None = None) -> None:
        self.cluster.tick(advance=advance)

    def export(self) -> dict[str, Any]:
        return self.cluster.export()


def _has_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FunctionCall):
        return expr.is_aggregate or any(_has_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.Binary):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, ast.Unary):
        return _has_aggregate(expr.operand)
    return False
