"""Sharded, replicated document store with partition-aware find pruning.

Each replica's state is a full :class:`~repro.storage.document.DocumentStore`
holding that shard's slice of every collection.  A collection may declare a
``partition_field``; documents route by ``"{collection}|{partition_value}"``
(falling back to the document id), so equality/``$in`` filters on the
partition field prune the find fan-out to exactly the owning shards —
the mechanism behind the bench's sub-linear query latency.

:class:`ClusteredCollection` subclasses :class:`Collection` purely for
interface compatibility (``isinstance`` checks in the data executor);
every operation is overridden to route through the cluster:

* point ops (``insert``, ``get``) go to the owning shard — quorum append
  / quorum read;
* ``find`` prunes shards when it can, pushes sort+limit down to each
  shard's primary, then re-merges (sort, limit, project) at the router;
* ``update``/``delete`` fan out as quorum appends to the pruned shards.

A document's placement is fixed at insert time: updating the partition
field does *not* migrate it (matching common sharded stores, where the
shard key is immutable).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Sequence

from ...clock import SimClock
from ...errors import QueryError, StorageError
from ...ids import IdGenerator
from ..document.query import get_path
from ..document.store import Collection, DocumentStore, _sortable
from .cluster import StoreCluster


def _make_store() -> DocumentStore:
    return DocumentStore("shard")


def _apply_docs(state: DocumentStore, op: dict[str, Any]) -> Any:
    kind = op["op"]
    if kind == "create_collection":
        if not state.has_collection(op["name"]):
            state.create_collection(op["name"], op.get("description", ""))
        return None
    collection = state.collection(op["collection"])
    if kind == "insert":
        return collection.insert(op["document"], doc_id=op["doc_id"])
    if kind == "insert_many":
        for document, doc_id in zip(op["documents"], op["doc_ids"]):
            collection.insert(document, doc_id=doc_id)
        return len(op["doc_ids"])
    if kind == "update":
        return collection.update(op["filter"], op["changes"])
    if kind == "delete":
        return collection.delete(op["filter"])
    if kind == "create_index":
        collection.create_index(op["field"])
        return None
    raise StorageError(f"unknown document op: {kind}")


class ClusteredCollection(Collection):
    """Router facade for one collection spread across the cluster."""

    def __init__(
        self,
        store: "ClusteredDocumentStore",
        name: str,
        description: str = "",
        partition_field: str | None = None,
    ) -> None:
        super().__init__(name, description)
        self._store = store
        self._cluster = store.cluster
        self.partition_field = partition_field
        self._router_ids = IdGenerator()
        self._doc_shard: dict[str, int] = {}
        self._router_lock = threading.RLock()
        #: Stats of the most recent :meth:`find` — surfaced as span
        #: attributes by the data executor and asserted on by the bench.
        self.last_find_stats: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_value(self, document: Mapping[str, Any], doc_id: str) -> Any:
        if self.partition_field is not None:
            value = document.get(self.partition_field)
            if value is not None:
                return value
        return doc_id

    def _route(self, partition_value: Any) -> str:
        return f"{self.name}|{partition_value}"

    def shards_for_filter(
        self, filter_spec: Mapping[str, Any] | None
    ) -> tuple[list[int], bool]:
        """Shards a filter can touch, plus whether pruning applied."""
        ring = self._cluster.ring
        if filter_spec:
            doc_id = filter_spec.get("_id")
            if isinstance(doc_id, str):
                with self._router_lock:
                    shard = self._doc_shard.get(doc_id)
                if shard is not None:
                    return [shard], True
            if self.partition_field is not None:
                condition = filter_spec.get(self.partition_field)
                values: list[Any] | None = None
                if isinstance(condition, Mapping):
                    if "$eq" in condition:
                        values = [condition["$eq"]]
                    elif "$in" in condition:
                        values = list(condition["$in"])
                elif condition is not None:
                    values = [condition]
                if values is not None:
                    return (
                        ring.shards_for(self._route(v) for v in values),
                        True,
                    )
        return ring.all_shards(), False

    def _shard_collection(self, state: DocumentStore) -> Collection | None:
        return state.collection(self.name) if state.has_collection(self.name) else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, document: Mapping[str, Any], doc_id: str | None = None) -> str:
        with self._router_lock:
            if doc_id is None:
                doc_id = self._router_ids.next("doc")
            shard = self._cluster.shard_for(
                self._route(self._route_value(document, doc_id))
            )
        self._cluster.append_to(
            shard,
            {
                "op": "insert",
                "collection": self.name,
                "document": dict(document),
                "doc_id": doc_id,
            },
        )
        with self._router_lock:
            self._doc_shard[doc_id] = shard
        return doc_id

    def insert_many(
        self,
        documents: Iterable[Mapping[str, Any]],
        doc_ids: Iterable[str] | None = None,
    ) -> list[str]:
        """Bulk insert, batched into one quorum append per touched shard."""
        explicit = iter(doc_ids) if doc_ids is not None else None
        batches: dict[int, tuple[list[dict[str, Any]], list[str]]] = {}
        assigned: list[str] = []
        with self._router_lock:
            for document in documents:
                doc_id = (
                    next(explicit)
                    if explicit is not None
                    else self._router_ids.next("doc")
                )
                shard = self._cluster.shard_for(
                    self._route(self._route_value(document, doc_id))
                )
                docs, ids = batches.setdefault(shard, ([], []))
                docs.append(dict(document))
                ids.append(doc_id)
                assigned.append(doc_id)
        for shard in sorted(batches):
            docs, ids = batches[shard]
            self._cluster.append_to(
                shard,
                {
                    "op": "insert_many",
                    "collection": self.name,
                    "documents": docs,
                    "doc_ids": ids,
                },
            )
            with self._router_lock:
                for doc_id in ids:
                    self._doc_shard[doc_id] = shard
        return assigned

    def update(self, filter_spec: Mapping[str, Any], changes: Mapping[str, Any]) -> int:
        if "_id" in changes:
            raise StorageError("cannot change _id")
        shards, _ = self.shards_for_filter(filter_spec)
        return sum(
            self._cluster.append_to(
                shard,
                {
                    "op": "update",
                    "collection": self.name,
                    "filter": dict(filter_spec),
                    "changes": dict(changes),
                },
            )
            for shard in shards
        )

    def delete(self, filter_spec: Mapping[str, Any]) -> int:
        shards, _ = self.shards_for_filter(filter_spec)
        return sum(
            self._cluster.append_to(
                shard,
                {
                    "op": "delete",
                    "collection": self.name,
                    "filter": dict(filter_spec),
                },
            )
            for shard in shards
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(
        self,
        filter_spec: Mapping[str, Any] | None = None,
        fields: Sequence[str] | None = None,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        shards: Sequence[int] | None = None,
    ) -> list[dict[str, Any]]:
        """Fan out to shard primaries, merge, and re-sort at the router.

        *shards* lets the planner pass a pre-computed pruning decision
        (``params["shards"]``); otherwise the filter is pruned here.
        """
        if shards is not None:
            indices, pruned = sorted(set(shards)), True
        else:
            indices, pruned = self.shards_for_filter(filter_spec)
        results: list[dict[str, Any]] = []
        docs_scanned = 0
        for state in self._cluster.primary_states(list(indices)):
            collection = self._shard_collection(state)
            if collection is None:
                continue
            docs_scanned += len(collection)
            # Push sort+limit down: top-k per shard is a superset of the
            # global top-k.  Projection waits for the router (the merge
            # sort needs the sort field).
            results.extend(
                collection.find(
                    filter_spec, sort=sort, descending=descending, limit=limit
                )
            )
        if sort is not None and len(indices) > 1:
            results.sort(key=lambda d: _sortable(get_path(d, sort)), reverse=descending)
        if limit is not None:
            results = results[:limit]
        if fields is not None:
            from ..document.query import project

            results = [project(document, fields) for document in results]
        self.last_find_stats = {
            "shards_scanned": len(indices),
            "shards_total": self._cluster.n_shards,
            "pruned": pruned,
            "docs_scanned": docs_scanned,
            "rows": len(results),
        }
        self._cluster._metric(
            "cluster.docs_scanned", float(docs_scanned), collection=self.name
        )
        self._cluster._metric(
            "cluster.shards_scanned", float(len(indices)), collection=self.name
        )
        return results

    def find_one(self, filter_spec: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        found = self.find(filter_spec, limit=1)
        return found[0] if found else None

    def get(self, doc_id: str) -> dict[str, Any]:
        with self._router_lock:
            shard = self._doc_shard.get(doc_id)
        if shard is not None:
            state = self._cluster.quorum_state_of(shard)
            collection = self._shard_collection(state)
            if collection is not None:
                return collection.get(doc_id)
        for state in self._cluster.primary_states():
            collection = self._shard_collection(state)
            if collection is None:
                continue
            try:
                return collection.get(doc_id)
            except QueryError:
                continue
        raise QueryError(f"no document with id {doc_id!r} in {self.name!r}")

    def count(self, filter_spec: Mapping[str, Any] | None = None) -> int:
        return len(self.find(filter_spec))

    def distinct(self, field: str) -> list[Any]:
        values: list[Any] = []
        seen: set[Any] = set()
        for document in self.find():
            value = get_path(document, field)
            if value is None:
                continue
            key = repr(value) if isinstance(value, (list, dict)) else value
            if key not in seen:
                seen.add(key)
                values.append(value)
        return values

    def __len__(self) -> int:
        total = 0
        for state in self._cluster.primary_states():
            collection = self._shard_collection(state)
            if collection is not None:
                total += len(collection)
        return total

    # ------------------------------------------------------------------
    # Field indices
    # ------------------------------------------------------------------
    def create_index(self, field: str) -> None:
        self._cluster.broadcast(
            {"op": "create_index", "collection": self.name, "field": field}
        )

    def indexed_fields(self) -> list[str]:
        state = self._cluster.primary_state(0)
        collection = self._shard_collection(state)
        return collection.indexed_fields() if collection is not None else []


class ClusteredDocumentStore(DocumentStore):
    """Sharded ``DocumentStore`` facade: one cluster, many collections."""

    def __init__(
        self,
        name: str,
        n_shards: int = 4,
        n_replicas: int = 3,
        clock: SimClock | None = None,
        seed: int = 0,
        description: str = "",
        **cluster_options: Any,
    ) -> None:
        super().__init__(name, description)
        self._clock = clock or SimClock()
        self.cluster = StoreCluster(
            f"docs:{name}",
            n_shards,
            n_replicas,
            _make_store,
            _apply_docs,
            clock=self._clock,
            seed=seed,
            **cluster_options,
        )
        self._fronts: dict[str, ClusteredCollection] = {}

    def create_collection(
        self,
        name: str,
        description: str = "",
        partition_field: str | None = None,
    ) -> ClusteredCollection:
        with self._lock:
            if name in self._fronts:
                raise StorageError(f"collection already exists: {name!r}")
            self.cluster.broadcast(
                {"op": "create_collection", "name": name, "description": description}
            )
            front = ClusteredCollection(
                self, name, description, partition_field=partition_field
            )
            self._fronts[name] = front
            return front

    def collection(self, name: str) -> ClusteredCollection:
        with self._lock:
            front = self._fronts.get(name)
        if front is None:
            raise StorageError(f"unknown collection: {name!r} in store {self.name!r}")
        return front

    def has_collection(self, name: str) -> bool:
        with self._lock:
            return name in self._fronts

    def collection_names(self) -> list[str]:
        with self._lock:
            return sorted(self._fronts)

    def describe(self) -> dict[str, Any]:
        return {
            "store": self.name,
            "description": self.description,
            "collections": [
                {
                    "name": front.name,
                    "description": front.description,
                    "documents": len(front),
                    "indexed_fields": front.indexed_fields(),
                    "partition_field": front.partition_field,
                }
                for front in (self.collection(n) for n in self.collection_names())
            ],
            "cluster": self.cluster.describe(),
        }

    def tick(self, advance: float | None = None) -> None:
        self.cluster.tick(advance=advance)

    def export(self) -> dict[str, Any]:
        return self.cluster.export()
