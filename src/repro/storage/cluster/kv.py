"""Sharded, replicated key-value store behind the ``KeyValueStore`` API.

Routing key is ``namespace + "\\x00" + key`` so a namespace's entries
spread across shards; namespace-wide operations (``keys``, ``clear``)
fan out.  Point reads are quorum reads; writes are quorum appends.

TTL handling differs from the single-node store on purpose: replicas
never *evict* expired records (eviction timing would depend on read
order, breaking replay determinism) — expiry is a read-time filter at
the router, which owns the clock.  A ``delete``/``clear`` is only
appended for keys that are currently live, so replica logs stay a pure
function of the acked write sequence.
"""

from __future__ import annotations

from typing import Any, Iterator

from ...clock import SimClock
from ...errors import StorageError
from ..keyvalue.store import KeyValueStore
from .cluster import StoreCluster

_SEP = "\x00"


def _apply_kv(state: dict[str, dict[str, Any]], op: dict[str, Any]) -> Any:
    kind = op["op"]
    if kind == "put":
        bucket = state.setdefault(op["ns"], {})
        bucket[op["key"]] = {"value": op["value"], "expires_at": op["expires_at"]}
        return None
    if kind == "delete":
        bucket = state.get(op["ns"], {})
        return bucket.pop(op["key"], None) is not None
    if kind == "clear":
        return len(state.pop(op["ns"], {}))
    raise StorageError(f"unknown kv op: {kind}")


class ClusteredKeyValueStore(KeyValueStore):
    """Drop-in ``KeyValueStore`` facade over a :class:`StoreCluster`.

    Subclasses the single-node store purely for interface compatibility
    (``isinstance`` checks in the data executor); every operation is
    overridden to route through the cluster.
    """

    def __init__(
        self,
        name: str,
        n_shards: int = 4,
        n_replicas: int = 3,
        clock: SimClock | None = None,
        seed: int = 0,
        description: str = "",
        **cluster_options: Any,
    ) -> None:
        super().__init__(name, clock=clock, description=description)
        self.cluster = StoreCluster(
            f"kv:{name}",
            n_shards,
            n_replicas,
            dict,
            _apply_kv,
            clock=self._clock,
            seed=seed,
            **cluster_options,
        )

    def _route(self, namespace: str, key: str) -> str:
        return f"{namespace}{_SEP}{key}"

    def _live(self, record: dict[str, Any] | None) -> bool:
        if record is None:
            return False
        deadline = record["expires_at"]
        return deadline is None or self._clock.now() < deadline

    # ------------------------------------------------------------------
    # KeyValueStore API
    # ------------------------------------------------------------------
    def put(self, namespace: str, key: str, value: Any, ttl: float | None = None) -> None:
        if ttl is not None and ttl <= 0:
            raise StorageError(f"ttl must be positive: {ttl}")
        expires_at = None if ttl is None else self._clock.now() + ttl
        self.cluster.append(
            self._route(namespace, key),
            {
                "op": "put",
                "ns": namespace,
                "key": key,
                "value": value,
                "expires_at": expires_at,
            },
        )

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        state = self.cluster.quorum_state(self._route(namespace, key))
        record = state.get(namespace, {}).get(key)
        if not self._live(record):
            return default
        return record["value"]

    def contains(self, namespace: str, key: str) -> bool:
        sentinel = object()
        return self.get(namespace, key, sentinel) is not sentinel

    def delete(self, namespace: str, key: str) -> bool:
        route = self._route(namespace, key)
        state = self.cluster.quorum_state(route)
        if not self._live(state.get(namespace, {}).get(key)):
            return False
        return bool(
            self.cluster.append(
                route, {"op": "delete", "ns": namespace, "key": key}
            )
        )

    def keys(self, namespace: str) -> list[str]:
        found: list[str] = []
        for state in self.cluster.primary_states():
            bucket = state.get(namespace, {})
            found.extend(k for k, rec in bucket.items() if self._live(rec))
        return sorted(found)

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        pairs: list[tuple[str, Any]] = []
        for state in self.cluster.primary_states():
            bucket = state.get(namespace, {})
            pairs.extend(
                (k, rec["value"]) for k, rec in bucket.items() if self._live(rec)
            )
        yield from sorted(pairs, key=lambda pair: pair[0])

    def namespaces(self) -> list[str]:
        seen: set[str] = set()
        for state in self.cluster.primary_states():
            for ns, bucket in state.items():
                if ns not in seen and any(self._live(r) for r in bucket.values()):
                    seen.add(ns)
        return sorted(seen)

    def clear(self, namespace: str) -> int:
        live = len(self.keys(namespace))
        for index in self.cluster.ring.all_shards():
            state = self.cluster.primary_state(index)
            if namespace in state:
                self.cluster.append_to(
                    index, {"op": "clear", "ns": namespace}
                )
        return live

    def describe(self) -> dict[str, Any]:
        return {
            "store": self.name,
            "description": self.description,
            "namespaces": {ns: len(self.keys(ns)) for ns in self.namespaces()},
            "cluster": self.cluster.describe(),
        }

    # ------------------------------------------------------------------
    # Cluster plumbing
    # ------------------------------------------------------------------
    def tick(self, advance: float | None = None) -> None:
        self.cluster.tick(advance=advance)

    def export(self) -> dict[str, Any]:
        return self.cluster.export()
