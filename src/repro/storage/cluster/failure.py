"""Heartbeat failure detection on the simulated clock.

Replicas "send" a heartbeat every cluster tick; the detector suspects a
replica once ``now - last_heartbeat >= timeout``.  Because heartbeats for
a tick are recorded *before* suspicion is evaluated, a heartbeat arriving
exactly at the suspicion deadline rescues the replica — the deadline is
inclusive for silence, not for arrival.  Crashed and partitioned replicas
simply stop beating, so the detector cannot (and does not try to)
distinguish a dead process from an unreachable one; both lose primaryship.
"""

from __future__ import annotations


class FailureDetector:
    """Tracks last-heartbeat times and derives suspicion deterministically."""

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"suspicion timeout must be positive: {timeout}")
        self.timeout = timeout
        self._last: dict[str, float] = {}

    def beat(self, replica_id: str, at: float) -> None:
        """Record a heartbeat from *replica_id* at simulated time *at*."""
        previous = self._last.get(replica_id)
        if previous is None or at > previous:
            self._last[replica_id] = at

    def last_beat(self, replica_id: str) -> float | None:
        return self._last.get(replica_id)

    def deadline(self, replica_id: str) -> float:
        """The instant at which silence becomes suspicion."""
        return self._last.get(replica_id, 0.0) + self.timeout

    def suspects(self, replica_id: str, now: float) -> bool:
        """Whether *replica_id* has been silent for >= timeout at *now*.

        A replica never heard from is suspected once ``now >= timeout``
        (its implicit last beat is t=0, the cluster's birth).
        """
        return now - self._last.get(replica_id, 0.0) >= self.timeout

    def forget(self, replica_id: str) -> None:
        self._last.pop(replica_id, None)
