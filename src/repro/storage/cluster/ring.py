"""Consistent-hash ring: deterministic key -> shard placement.

Placement must be a pure function of the key so that the router, the
planner's shard pruning, and a rebuilt router after a crash all agree on
where a key lives.  The ring hashes each shard under ``virtual_nodes``
points (md5, like every other deterministic draw in the repo) and sends a
key to the first shard point at or after the key's own hash.

Virtual nodes keep placement balanced: with 64 points per shard the
largest shard holds within a few percent of ``1/n_shards`` of uniformly
hashed keys, and adding a shard moves only ``~1/n_shards`` of them.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(text: str) -> int:
    """64-bit md5-derived hash; stable across processes and runs."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class HashRing:
    """Maps string keys onto ``n_shards`` buckets via consistent hashing."""

    def __init__(self, n_shards: int, virtual_nodes: int = 64) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1: {virtual_nodes}")
        self.n_shards = n_shards
        self.virtual_nodes = virtual_nodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(virtual_nodes):
                points.append((stable_hash(f"shard:{shard}:{vnode}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning *key* (first ring point at or after its hash)."""
        position = bisect.bisect_left(self._hashes, stable_hash(key))
        if position == len(self._hashes):
            position = 0
        return self._shards[position]

    def shards_for(self, keys) -> list[int]:
        """Distinct shards owning *keys*, in ascending shard order."""
        return sorted({self.shard_for(str(key)) for key in keys})

    def all_shards(self) -> list[int]:
        return list(range(self.n_shards))
