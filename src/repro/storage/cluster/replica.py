"""One replica of one shard: a durable op log plus its state machine.

A replica is modeled the way a real replicated store treats a node: the
op log is *durable* (it survives a process kill, like a WAL on disk)
while the materialized state is *volatile* (rebuilt by replaying the log
on restart).  That split is what makes chaos ``replica_kill`` faults
recoverable without inventing hidden storage: a revived replica replays
its own log, then catches up the missing suffix from a live peer.

Logs are kept prefix-consistent by construction — the shard group only
appends to replicas whose log length equals the canonical next sequence
number, and catch-up copies a suffix from a longer log — so "how current
is this replica" is just ``applied`` (its log length).
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any, Callable

#: Applies one op to a replica's state; returns the op's result value
#: (e.g. an update count).  All replicas of a shard apply the same ops in
#: the same order, so results agree and the router may use any one.
ApplyFn = Callable[[Any, dict[str, Any]], Any]
StateFactory = Callable[[], Any]


class ReplicaStatus(str, enum.Enum):
    """Replica lifecycle: ALIVE serves, DEAD is crashed, SYNCING rebuilds."""

    ALIVE = "alive"
    DEAD = "dead"
    SYNCING = "syncing"


class Replica:
    """One copy of a shard's data."""

    def __init__(
        self,
        replica_id: str,
        shard_index: int,
        index: int,
        state_factory: StateFactory,
        apply_fn: ApplyFn,
    ) -> None:
        self.replica_id = replica_id
        self.shard_index = shard_index
        self.index = index
        self._state_factory = state_factory
        self._apply = apply_fn
        self.state = state_factory()
        #: Durable op log (the replica's WAL): survives kills.
        self.log: list[dict[str, Any]] = []
        self.status = ReplicaStatus.ALIVE
        #: False while a network partition hides this replica from the
        #: router; the replica itself keeps running (and its log intact).
        self.reachable = True
        self.last_heartbeat = 0.0
        #: Cluster tick at which a dead replica restarts (None = not scheduled).
        self.restart_at_tick: int | None = None
        #: Degraded-latency fault: until this tick, ops add ``degraded_seconds``.
        self.degraded_until_tick = -1
        self.degraded_seconds = 0.0

    # ------------------------------------------------------------------
    # Log and state
    # ------------------------------------------------------------------
    @property
    def applied(self) -> int:
        """Ops applied == log length (state is always caught up to the log)."""
        return len(self.log)

    def can_accept(self, seq: int) -> bool:
        """Whether this replica may take the append at sequence *seq*."""
        return (
            self.status is ReplicaStatus.ALIVE
            and self.reachable
            and len(self.log) == seq
        )

    def append(self, op: dict[str, Any]) -> Any:
        """Append *op* to the log and apply it to the state."""
        self.log.append(op)
        return self._apply(self.state, op)

    def catch_up(self, donor: "Replica") -> int:
        """Replay the suffix of *donor*'s log this replica is missing."""
        missing = donor.log[len(self.log):]
        for op in missing:
            self.append(op)
        return len(missing)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def kill(self, restart_at_tick: int | None = None) -> None:
        """Crash the process: state is lost, the log (disk) survives."""
        self.status = ReplicaStatus.DEAD
        self.restart_at_tick = restart_at_tick
        self.state = None  # memory is gone until restart replays the log

    def begin_restart(self) -> None:
        """Come back up: rebuild state from the local log, then SYNC."""
        self.state = self._state_factory()
        log, self.log = self.log, []
        for op in log:
            self.append(op)
        self.status = ReplicaStatus.SYNCING
        self.restart_at_tick = None

    def is_degraded(self, tick: int) -> bool:
        return tick < self.degraded_until_tick

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def log_digest(self) -> str:
        """md5 of the canonical JSON op log (byte-identity checks)."""
        payload = json.dumps(self.log, sort_keys=True, default=str)
        return hashlib.md5(payload.encode("utf-8")).hexdigest()

    def describe(self) -> dict[str, Any]:
        return {
            "replica": self.replica_id,
            "status": self.status.value,
            "reachable": self.reachable,
            "applied": self.applied,
            "log_digest": self.log_digest(),
        }
