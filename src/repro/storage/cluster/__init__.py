"""Sharded, replicated data substrate (DESIGN.md section 13).

The paper's setting is enterprise-scale data planes (the 1M-seeker HR
deployment); a single in-memory node per store cannot survive the chaos
harness, let alone paper-scale load.  This package partitions each store
into N shards by consistent hashing and replicates every shard R ways:

* :class:`HashRing` — deterministic key -> shard placement,
* :class:`Replica` — one copy of a shard: a durable op log plus the
  state machine it rebuilds on restart,
* :class:`ShardGroup` — quorum append/read over a shard's replicas,
  with read-repair and primary promotion,
* :class:`FailureDetector` — heartbeat suspicion on the SimClock,
* :class:`StoreCluster` — the router: ring + groups + the ``tick()``
  loop (heartbeats, detection, failover, revival, seeded anti-entropy),
* :class:`ClusteredKeyValueStore`, :class:`ClusteredDocumentStore` /
  :class:`ClusteredCollection`, :class:`ShardedDatabase` /
  :class:`ShardedTable` — drop-in store fronts that keep the existing
  single-node APIs while delegating to the cluster.

Everything is deterministic: failure detection runs on the simulated
clock, anti-entropy sweeps are seeded, and chaos faults
(``replica_kill``, ``shard_partition``, degraded replica latency) come
from the :class:`~repro.core.resilience.ChaosController`'s per-key
counters — the same seed and kill schedule always produce byte-identical
cluster exports.
"""

from .cluster import StoreCluster
from .docs import ClusteredCollection, ClusteredDocumentStore
from .failure import FailureDetector
from .kv import ClusteredKeyValueStore
from .relational import ShardedDatabase, ShardedTable
from .replica import Replica, ReplicaStatus
from .ring import HashRing
from .shard import ShardGroup

__all__ = [
    "ClusteredCollection",
    "ClusteredDocumentStore",
    "ClusteredKeyValueStore",
    "FailureDetector",
    "HashRing",
    "Replica",
    "ReplicaStatus",
    "ShardGroup",
    "ShardedDatabase",
    "ShardedTable",
    "StoreCluster",
]
