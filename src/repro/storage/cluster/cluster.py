"""The cluster router: ring + shard groups + the deterministic tick loop.

:class:`StoreCluster` is the generic replicated-sharded engine the store
fronts (KV, document, relational, stream) delegate to.  It owns:

* the :class:`~repro.storage.cluster.ring.HashRing` routing keys to
  shards,
* one :class:`~repro.storage.cluster.shard.ShardGroup` per shard,
* the :class:`~repro.storage.cluster.failure.FailureDetector`, and
* :meth:`tick` — the cluster's control loop, advanced explicitly by the
  harness so every failover decision lands at a reproducible instant:

  1. dead replicas whose restart delay elapsed come back up (rebuild
     state from their durable log, enter SYNCING),
  2. expired network partitions heal,
  3. up, reachable replicas heartbeat at ``clock.now()``,
  4. the failure detector marks silent replicas suspected; shards whose
     primary is dead/partitioned/suspected promote a caught-up successor,
  5. a seeded anti-entropy sweep syncs one shard per tick (plus any
     shard with SYNCING replicas, so rejoins converge fast).

Chaos faults arrive through the hooks :meth:`kill_replica`,
:meth:`partition_shard`, and :meth:`degrade_replica`, driven by the
:class:`~repro.core.resilience.ChaosController`'s seeded rolls — same
seed and schedule, byte-identical :meth:`export`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, TYPE_CHECKING

from ...clock import SimClock
from ...errors import StorageError
from .failure import FailureDetector
from .replica import ApplyFn, Replica, ReplicaStatus, StateFactory
from .ring import HashRing
from .shard import ShardGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import Observability


class StoreCluster:
    """N shards x R replicas with quorum I/O, failover, and anti-entropy."""

    def __init__(
        self,
        name: str,
        n_shards: int,
        n_replicas: int,
        state_factory: StateFactory,
        apply_fn: ApplyFn,
        clock: SimClock | None = None,
        seed: int = 0,
        heartbeat_interval: float = 1.0,
        suspicion_timeout: float = 3.0,
        restart_delay_ticks: int = 5,
        anti_entropy_interval: int = 1,
        virtual_nodes: int = 64,
    ) -> None:
        self.name = name
        self.clock = clock or SimClock()
        self.seed = seed
        self.ring = HashRing(n_shards, virtual_nodes=virtual_nodes)
        self.heartbeat_interval = heartbeat_interval
        self.restart_delay_ticks = restart_delay_ticks
        self.anti_entropy_interval = max(1, anti_entropy_interval)
        self.detector = FailureDetector(suspicion_timeout)
        self.events: list[dict[str, Any]] = []
        self.tick_count = 0
        self._observability: "Observability | None" = None
        self._lock = threading.RLock()
        self.shards = [
            ShardGroup(
                index,
                n_replicas,
                state_factory,
                apply_fn,
                self.detector,
                self._event,
            )
            for index in range(n_shards)
        ]
        #: Active partitions: shard -> (replica indices hidden, heal tick).
        self._partitions: dict[int, tuple[tuple[int, ...], int]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_replicas(self) -> int:
        return len(self.shards[0].replicas)

    @property
    def observability(self) -> "Observability | None":
        return self._observability

    @observability.setter
    def observability(self, value: "Observability | None") -> None:
        self._observability = value

    def _metric(self, name: str, value: float = 1.0, **labels: Any) -> None:
        obs = self._observability
        if obs is not None:
            obs.metrics.inc(name, value, cluster=self.name, **labels)

    def _event(self, kind: str, **detail: Any) -> None:
        self.events.append(
            {
                "tick": self.tick_count,
                "time": self.clock.now(),
                "kind": kind,
                **detail,
            }
        )
        self._metric(f"cluster.{kind}")

    def replica_by_id(self, replica_id: str) -> Replica:
        try:
            shard_part, replica_part = replica_id.split(".", 1)
            return self.shards[int(shard_part[1:])].replica(int(replica_part[1:]))
        except (ValueError, IndexError):
            raise StorageError(
                f"no replica {replica_id!r} in cluster {self.name!r}"
            ) from None

    def all_replicas(self) -> list[Replica]:
        return [r for shard in self.shards for r in shard.replicas]

    # ------------------------------------------------------------------
    # Routing and I/O
    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> int:
        return self.ring.shard_for(key)

    def append(self, key: str, op: dict[str, Any]) -> Any:
        """Quorum-append *op* to the shard owning *key*."""
        return self.append_to(self.shard_for(key), op)

    def append_to(self, shard_index: int, op: dict[str, Any]) -> Any:
        shard = self.shards[shard_index]
        self._charge_degraded(shard)
        result = shard.append(op)
        self._metric("cluster.writes", shard=str(shard_index))
        return result

    def broadcast(self, op: dict[str, Any]) -> list[Any]:
        """Append *op* to every shard (DDL: create collection/table/index)."""
        return [self.append_to(index, op) for index in range(self.n_shards)]

    def quorum_state(self, key: str) -> Any:
        """Majority-read state for the shard owning *key* (point reads)."""
        return self.quorum_state_of(self.shard_for(key))

    def quorum_state_of(self, shard_index: int) -> Any:
        shard = self.shards[shard_index]
        self._charge_degraded(shard)
        state = shard.quorum_state()
        self._metric("cluster.quorum_reads", shard=str(shard.shard_index))
        return state

    def primary_state(self, shard_index: int) -> Any:
        """The primary's state for scans (promotes on unhealthy primary)."""
        shard = self.shards[shard_index]
        self._charge_degraded(shard)
        state = shard.primary().state
        self._metric("cluster.scan_reads", shard=str(shard_index))
        return state

    def primary_states(self, shard_indices: list[int] | None = None) -> list[Any]:
        """Primary states for a scan fan-out (all shards when None)."""
        indices = (
            list(shard_indices) if shard_indices is not None else self.ring.all_shards()
        )
        return [self.primary_state(index) for index in indices]

    def _charge_degraded(self, shard: ShardGroup) -> None:
        """Account degraded-replica latency on ops touching the shard."""
        for replica in shard.replicas:
            if replica.is_degraded(self.tick_count):
                self._metric(
                    "cluster.degraded_ops", shard=str(shard.shard_index)
                )
                obs = self._observability
                if obs is not None:
                    obs.metrics.observe(
                        "cluster.degraded_latency", replica.degraded_seconds
                    )

    # ------------------------------------------------------------------
    # Chaos fault hooks
    # ------------------------------------------------------------------
    def kill_replica(self, replica_id: str) -> None:
        """Crash a replica; it restarts ``restart_delay_ticks`` later."""
        replica = self.replica_by_id(replica_id)
        if replica.status is ReplicaStatus.DEAD:
            return
        replica.kill(restart_at_tick=self.tick_count + self.restart_delay_ticks)
        self.detector.forget(replica_id)
        self._event("replica_kill", replica=replica_id, shard=replica.shard_index)

    def partition_shard(
        self, shard_index: int, replica_indices: tuple[int, ...], ticks: int
    ) -> None:
        """Hide a minority of a shard's replicas from the router."""
        shard = self.shards[shard_index]
        members = tuple(
            sorted(set(replica_indices))[: (len(shard.replicas) - shard.quorum)]
        )
        if not members or ticks <= 0:
            return
        # A re-partition replaces the active one: heal the old members
        # first, or those not in the new set would stay unreachable
        # forever (their heal entry is about to be overwritten).
        previous = self._partitions.get(shard_index)
        if previous is not None:
            for index in previous[0]:
                shard.replica(index).reachable = True
        for index in members:
            shard.replica(index).reachable = False
        self._partitions[shard_index] = (members, self.tick_count + ticks)
        self._event(
            "shard_partition",
            shard=shard_index,
            replicas=[shard.replica(i).replica_id for i in members],
            heals_at_tick=self.tick_count + ticks,
        )

    def degrade_replica(self, replica_id: str, seconds: float, ticks: int) -> None:
        """Inject extra latency on a replica's shard for *ticks* ticks."""
        replica = self.replica_by_id(replica_id)
        replica.degraded_seconds = seconds
        replica.degraded_until_tick = self.tick_count + ticks
        self._event(
            "replica_degraded", replica=replica_id, seconds=seconds, ticks=ticks
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def tick(self, advance: float | None = None) -> None:
        """One control-loop step (see module docstring for the phases).

        Advances the clock by *advance* simulated seconds (default: the
        heartbeat interval).  Pass ``advance=0.0`` when an outer harness
        owns the clock.
        """
        with self._lock:
            self.tick_count += 1
            self.clock.advance(
                self.heartbeat_interval if advance is None else advance
            )
            now = self.clock.now()
            # 1. restarts
            for replica in self.all_replicas():
                if (
                    replica.status is ReplicaStatus.DEAD
                    and replica.restart_at_tick is not None
                    and replica.restart_at_tick <= self.tick_count
                ):
                    replica.begin_restart()
                    self._event(
                        "replica_restart",
                        replica=replica.replica_id,
                        shard=replica.shard_index,
                        replayed=replica.applied,
                    )
            # 2. partition heals
            for shard_index in sorted(self._partitions):
                members, heal_at = self._partitions[shard_index]
                if heal_at <= self.tick_count:
                    shard = self.shards[shard_index]
                    for index in members:
                        shard.replica(index).reachable = True
                    del self._partitions[shard_index]
                    self._event("partition_heal", shard=shard_index)
            # 3. heartbeats (before suspicion: a beat at the deadline rescues)
            for replica in self.all_replicas():
                if replica.status is not ReplicaStatus.DEAD and replica.reachable:
                    self.detector.beat(replica.replica_id, now)
            # 4. failover
            for shard in self.shards:
                primary = shard.replicas[shard.primary_index]
                if (
                    primary.status is not ReplicaStatus.ALIVE
                    or not primary.reachable
                    or self.detector.suspects(primary.replica_id, now)
                ):
                    try:
                        shard.promote(now=now)
                    except Exception:
                        # No caught-up live replica yet; retried next tick.
                        self._metric(
                            "cluster.promotion_unavailable",
                            shard=str(shard.shard_index),
                        )
            # 5. seeded anti-entropy sweep
            swept = self._sweep_target()
            for shard in self.shards:
                if shard.shard_index == swept or shard.has_syncing():
                    replayed = shard.sync_all()
                    if replayed:
                        self._metric(
                            "cluster.anti_entropy_ops",
                            float(replayed),
                            shard=str(shard.shard_index),
                        )

    def _sweep_target(self) -> int | None:
        """Which shard this tick's seeded anti-entropy sweep visits."""
        if self.tick_count % self.anti_entropy_interval != 0:
            return None
        digest = hashlib.md5(
            f"{self.seed}|sweep|{self.tick_count}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little") % self.n_shards

    def settle(self, ticks: int | None = None, advance: float | None = None) -> None:
        """Tick until every replica is ALIVE and caught up (or *ticks* runs out).

        Test/bench convenience for "let the cluster heal" phases.
        """
        budget = ticks if ticks is not None else self.restart_delay_ticks + self.n_shards + 2
        for _ in range(budget):
            if all(
                r.status is ReplicaStatus.ALIVE
                and r.reachable
                and r.applied == self.shards[r.shard_index].acked
                for r in self.all_replicas()
            ):
                return
            self.tick(advance=advance)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> dict[str, Any]:
        """Deterministic JSON-able snapshot: topology, logs, and events."""
        return {
            "cluster": self.name,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "tick": self.tick_count,
            "clock": self.clock.now(),
            "shards": [shard.describe() for shard in self.shards],
            "events": list(self.events),
        }

    def export_json(self) -> str:
        return json.dumps(self.export(), sort_keys=True, default=str)

    def describe(self) -> dict[str, Any]:
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        return {
            "cluster": self.name,
            "shards": self.n_shards,
            "replicas": self.n_replicas,
            "quorum": self.shards[0].quorum,
            "tick": self.tick_count,
            "acked": [shard.acked for shard in self.shards],
            "events": kinds,
        }
