"""Filter language for the document store.

Filters are Mongo-style mappings.  A filter matches a document when every
top-level entry matches.  Values are matched by equality unless they are an
operator mapping:

    {"title": "Data Scientist"}                       equality
    {"salary": {"$gte": 150000}}                      comparison
    {"location": {"$in": ["San Francisco", "Oakland"]}}
    {"skills": {"$contains": "python"}}               membership in a list field
    {"summary": {"$regex": "machine learning"}}       regex search
    {"$or": [{...}, {...}]}, {"$and": [...]}, {"$not": {...}}

Dotted paths descend into nested documents: ``{"address.city": "SF"}``.
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Sequence

from ...errors import QueryError

_MISSING = object()


def get_path(document: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted *path* in *document*; returns _MISSING when absent."""
    current: Any = document
    for part in path.split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
        else:
            return _MISSING
    return current


def matches(document: Mapping[str, Any], filter_spec: Mapping[str, Any]) -> bool:
    """Whether *document* satisfies *filter_spec*."""
    for key, condition in filter_spec.items():
        if key == "$or":
            if not _is_clause_list(condition):
                raise QueryError("$or expects a list of filter mappings")
            if not any(matches(document, clause) for clause in condition):
                return False
        elif key == "$and":
            if not _is_clause_list(condition):
                raise QueryError("$and expects a list of filter mappings")
            if not all(matches(document, clause) for clause in condition):
                return False
        elif key == "$not":
            if not isinstance(condition, Mapping):
                raise QueryError("$not expects a filter mapping")
            if matches(document, condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator: {key!r}")
        else:
            value = get_path(document, key)
            if not _match_value(value, condition):
                return False
    return True


def _is_clause_list(condition: Any) -> bool:
    return isinstance(condition, Sequence) and not isinstance(condition, (str, bytes)) and all(
        isinstance(clause, Mapping) for clause in condition
    )


def _match_value(value: Any, condition: Any) -> bool:
    if isinstance(condition, Mapping) and any(k.startswith("$") for k in condition):
        return all(_apply_operator(value, op, operand) for op, operand in condition.items())
    if value is _MISSING:
        return False
    return value == condition


def _apply_operator(value: Any, op: str, operand: Any) -> bool:
    if op == "$exists":
        exists = value is not _MISSING
        return exists if operand else not exists
    if value is _MISSING:
        return False
    if op == "$eq":
        return value == operand
    if op == "$ne":
        return value != operand
    if op == "$gt":
        return value is not None and value > operand
    if op == "$gte":
        return value is not None and value >= operand
    if op == "$lt":
        return value is not None and value < operand
    if op == "$lte":
        return value is not None and value <= operand
    if op == "$in":
        return value in operand
    if op == "$nin":
        return value not in operand
    if op == "$contains":
        if isinstance(value, str):
            return str(operand).lower() in value.lower()
        if isinstance(value, (list, tuple, set)):
            return operand in value
        return False
    if op == "$regex":
        if not isinstance(value, str):
            return False
        return re.search(str(operand), value, flags=re.IGNORECASE) is not None
    if op == "$size":
        if not isinstance(value, (list, tuple, set, str)):
            return False
        return len(value) == operand
    raise QueryError(f"unknown operator: {op!r}")


def project(document: Mapping[str, Any], fields: Sequence[str] | None) -> dict[str, Any]:
    """Keep only *fields* (dotted paths allowed); None keeps everything."""
    if fields is None:
        return dict(document)
    result: dict[str, Any] = {}
    for field in fields:
        value = get_path(document, field)
        if value is not _MISSING:
            result[field] = value
    return result
