"""Document store: named collections of schemaless JSON-like documents."""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Sequence

from ...errors import QueryError, StorageError
from ...ids import IdGenerator
from .query import get_path, matches, project, _MISSING


class Collection:
    """A collection of documents with Mongo-style find/update/delete."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._documents: dict[str, dict[str, Any]] = {}
        self._ids = IdGenerator()
        self._lock = threading.RLock()
        self._field_indices: dict[str, dict[Any, set[str]]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, document: Mapping[str, Any], doc_id: str | None = None) -> str:
        """Insert a copy of *document*; returns its id (stored as ``_id``)."""
        with self._lock:
            if doc_id is None:
                doc_id = self._ids.next("doc")
            if doc_id in self._documents:
                raise StorageError(f"duplicate document id: {doc_id!r}")
            stored = dict(document)
            stored["_id"] = doc_id
            self._documents[doc_id] = stored
            for field, index in self._field_indices.items():
                self._index_insert(index, stored, field, doc_id)
            return doc_id

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> list[str]:
        return [self.insert(document) for document in documents]

    def update(self, filter_spec: Mapping[str, Any], changes: Mapping[str, Any]) -> int:
        """Shallow-merge *changes* into matching documents; returns count."""
        if "_id" in changes:
            raise StorageError("cannot change _id")
        count = 0
        with self._lock:
            for doc_id, document in self._documents.items():
                if not matches(document, filter_spec):
                    continue
                for field, index in self._field_indices.items():
                    self._index_remove(index, document, field, doc_id)
                document.update(dict(changes))
                for field, index in self._field_indices.items():
                    self._index_insert(index, document, field, doc_id)
                count += 1
        return count

    def delete(self, filter_spec: Mapping[str, Any]) -> int:
        with self._lock:
            doomed = [
                doc_id
                for doc_id, document in self._documents.items()
                if matches(document, filter_spec)
            ]
            for doc_id in doomed:
                document = self._documents.pop(doc_id)
                for field, index in self._field_indices.items():
                    self._index_remove(index, document, field, doc_id)
        return len(doomed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(
        self,
        filter_spec: Mapping[str, Any] | None = None,
        fields: Sequence[str] | None = None,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Documents matching *filter_spec* (all when None)."""
        filter_spec = filter_spec or {}
        candidates = self._candidates(filter_spec)
        results = [
            dict(document) for document in candidates if matches(document, filter_spec)
        ]
        if sort is not None:
            results.sort(
                key=lambda d: _sortable(get_path(d, sort)), reverse=descending
            )
        if limit is not None:
            results = results[:limit]
        if fields is not None:
            results = [project(document, fields) for document in results]
        return results

    def find_one(self, filter_spec: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        found = self.find(filter_spec, limit=1)
        return found[0] if found else None

    def get(self, doc_id: str) -> dict[str, Any]:
        with self._lock:
            document = self._documents.get(doc_id)
        if document is None:
            raise QueryError(f"no document with id {doc_id!r} in {self.name!r}")
        return dict(document)

    def count(self, filter_spec: Mapping[str, Any] | None = None) -> int:
        return len(self.find(filter_spec))

    def distinct(self, field: str) -> list[Any]:
        values = []
        seen: set[Any] = set()
        for document in self.find():
            value = get_path(document, field)
            if value is _MISSING:
                continue
            key = repr(value) if isinstance(value, (list, dict)) else value
            if key not in seen:
                seen.add(key)
                values.append(value)
        return values

    # ------------------------------------------------------------------
    # Field indices
    # ------------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Equality index over a top-level or dotted field."""
        with self._lock:
            if field in self._field_indices:
                return
            index: dict[Any, set[str]] = {}
            for doc_id, document in self._documents.items():
                self._index_insert(index, document, field, doc_id)
            self._field_indices[field] = index

    def indexed_fields(self) -> list[str]:
        with self._lock:
            return sorted(self._field_indices)

    def _candidates(self, filter_spec: Mapping[str, Any]) -> list[dict[str, Any]]:
        with self._lock:
            for field, condition in filter_spec.items():
                if field.startswith("$") or field not in self._field_indices:
                    continue
                if isinstance(condition, Mapping):
                    if "$eq" in condition:
                        condition = condition["$eq"]
                    elif "$in" in condition:
                        index = self._field_indices[field]
                        ids: set[str] = set()
                        for value in condition["$in"]:
                            ids |= index.get(_index_key(value), set())
                        return [self._documents[i] for i in sorted(ids)]
                    else:
                        continue
                index = self._field_indices[field]
                ids = index.get(_index_key(condition), set())
                return [self._documents[i] for i in sorted(ids)]
            return list(self._documents.values())

    @staticmethod
    def _index_insert(
        index: dict[Any, set[str]], document: Mapping[str, Any], field: str, doc_id: str
    ) -> None:
        value = get_path(document, field)
        if value is _MISSING:
            return
        index.setdefault(_index_key(value), set()).add(doc_id)

    @staticmethod
    def _index_remove(
        index: dict[Any, set[str]], document: Mapping[str, Any], field: str, doc_id: str
    ) -> None:
        value = get_path(document, field)
        if value is _MISSING:
            return
        bucket = index.get(_index_key(value))
        if bucket is not None:
            bucket.discard(doc_id)


def _index_key(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _sortable(value: Any) -> Any:
    if value is _MISSING or value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


class DocumentStore:
    """A named set of collections (the enterprise's document database)."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._collections: dict[str, Collection] = {}
        self._lock = threading.RLock()

    def create_collection(self, name: str, description: str = "") -> Collection:
        with self._lock:
            if name in self._collections:
                raise StorageError(f"collection already exists: {name!r}")
            collection = Collection(name, description)
            self._collections[name] = collection
            return collection

    def collection(self, name: str) -> Collection:
        with self._lock:
            collection = self._collections.get(name)
        if collection is None:
            raise StorageError(f"unknown collection: {name!r} in store {self.name!r}")
        return collection

    def has_collection(self, name: str) -> bool:
        with self._lock:
            return name in self._collections

    def collection_names(self) -> list[str]:
        with self._lock:
            return sorted(self._collections)

    def describe(self) -> dict[str, Any]:
        return {
            "store": self.name,
            "description": self.description,
            "collections": [
                {
                    "name": collection.name,
                    "description": collection.description,
                    "documents": len(collection),
                    "indexed_fields": collection.indexed_fields(),
                }
                for collection in (self.collection(n) for n in self.collection_names())
            ],
        }
