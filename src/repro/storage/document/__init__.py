"""Document storage: collections with a Mongo-style filter language."""

from .query import get_path, matches, project
from .store import Collection, DocumentStore

__all__ = ["get_path", "matches", "project", "Collection", "DocumentStore"]
