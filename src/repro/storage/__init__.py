"""Enterprise data substrates: relational, document, graph, KV, vector.

The data registry (:mod:`repro.core.registries`) maps these sources; the
data planner decomposes queries over them.
"""

from .cluster import (
    ClusteredCollection,
    ClusteredDocumentStore,
    ClusteredKeyValueStore,
    HashRing,
    ShardedDatabase,
    ShardedTable,
    StoreCluster,
)
from .document import Collection, DocumentStore
from .graph import Edge, GraphStore, Node
from .keyvalue import KeyValueStore
from .relational import Database, SQLResult, Table, quick_table
from .schema import Column, ColumnType, TableSchema
from .vector import FlatIndex, IVFIndex

__all__ = [
    "ClusteredCollection",
    "ClusteredDocumentStore",
    "ClusteredKeyValueStore",
    "HashRing",
    "ShardedDatabase",
    "ShardedTable",
    "StoreCluster",
    "Collection",
    "DocumentStore",
    "Edge",
    "GraphStore",
    "Node",
    "KeyValueStore",
    "Database",
    "SQLResult",
    "Table",
    "quick_table",
    "Column",
    "ColumnType",
    "TableSchema",
    "FlatIndex",
    "IVFIndex",
]
