"""repro: a working implementation of the blueprint architecture for
compound AI systems (Kandogan et al., ICDE 2025).

Subpackages:

* :mod:`repro.streams` — the streams database orchestrating data/control.
* :mod:`repro.storage` — relational/document/graph/KV/vector substrates.
* :mod:`repro.embedding` — deterministic text embeddings.
* :mod:`repro.llm` — the simulated LLM substrate with a model catalog.
* :mod:`repro.observability` — plan-level tracing and the metrics registry.
* :mod:`repro.core` — agents, registries, sessions, planners, budget,
  optimizer, coordinator, deployment, and the Blueprint runtime facade.
* :mod:`repro.hr` — the YourJourney HR domain: data, models, agents, apps.
"""

__version__ = "1.0.0"

from .clock import SimClock, Stopwatch
from .core.qos import QoSSpec
from .core.runtime import Blueprint
from .errors import ReproError
from .ids import IdGenerator, new_id
from .observability import Observability

__all__ = [
    "SimClock",
    "Stopwatch",
    "QoSSpec",
    "Blueprint",
    "Observability",
    "ReproError",
    "IdGenerator",
    "new_id",
    "__version__",
]
