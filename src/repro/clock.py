"""Simulated time.

The paper's QoS machinery tracks latency alongside cost and quality.  Real
wall-clock sleeps would make tests slow and benches noisy, so the runtime
accounts time on a :class:`SimClock`: components *advance* the clock by their
modeled latency instead of sleeping.  Everything that timestamps messages or
measures elapsed latency takes a clock so that runs are deterministic.
"""

from __future__ import annotations

import threading


class SimClock:
    """A monotonically advancing simulated clock (seconds).

    Example:
        >>> clock = SimClock()
        >>> clock.advance(0.25)
        0.25
        >>> clock.now()
        0.25
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start in the past: {start}")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current simulated time in seconds.

        Lock-free *read*: a float attribute read is atomic in CPython, and
        this sits on every hot path (message stamps, span starts, charges).
        That does NOT make read-modify-write sequences safe — ``advance``
        interleaving with other writers is serialized by the lock, but a
        caller computing ``now() + dt`` and writing it back would race.
        Concurrent-branch latency accounting must therefore never sum onto
        the clock directly: the wave scheduler routes it through a
        :class:`~repro.core.scheduler.VirtualTimeline`, whose commit is a
        single ``advance_to(max(branch ends))``.
        """
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock backwards: {seconds}")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to *timestamp* if it is in the future."""
        with self._lock:
            if timestamp > self._now:
                self._now = timestamp
            return self._now

    def rebase(self, timestamp: float) -> float:
        """Set the clock to *timestamp*, which may sit in the simulated past.

        This is the one deliberate exception to monotonicity, reserved for
        the wave scheduler's :class:`~repro.core.scheduler.VirtualTimeline`:
        logically-concurrent plan branches each replay from their *ready*
        time, so opening the next branch rewinds to that branch's start.
        The timeline restores monotonicity at commit by advancing to the
        maximum branch end (the critical path).  Everything else must use
        :meth:`advance`/:meth:`advance_to`.
        """
        if timestamp < 0:
            raise ValueError(f"cannot rebase clock before epoch: {timestamp}")
        with self._lock:
            self._now = float(timestamp)
            return self._now


class Stopwatch:
    """Measures elapsed simulated time between two points.

    Example:
        >>> clock = SimClock()
        >>> watch = Stopwatch(clock)
        >>> _ = clock.advance(1.5)
        >>> watch.elapsed()
        1.5
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now()

    def elapsed(self) -> float:
        """Simulated seconds since the stopwatch was created or restarted."""
        return self._clock.now() - self._start

    def restart(self) -> None:
        """Reset the start point to the clock's current time."""
        self._start = self._clock.now()
