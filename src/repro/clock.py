"""Simulated time.

The paper's QoS machinery tracks latency alongside cost and quality.  Real
wall-clock sleeps would make tests slow and benches noisy, so the runtime
accounts time on a :class:`SimClock`: components *advance* the clock by their
modeled latency instead of sleeping.  Everything that timestamps messages or
measures elapsed latency takes a clock so that runs are deterministic.
"""

from __future__ import annotations

import threading


class SimClock:
    """A monotonically advancing simulated clock (seconds).

    Example:
        >>> clock = SimClock()
        >>> clock.advance(0.25)
        0.25
        >>> clock.now()
        0.25
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start in the past: {start}")
        self._now = float(start)
        self._lock = threading.Lock()
        # Thread-local branch overlay (see branch_begin): only consulted
        # once a concurrent backend has engaged it, so the serial hot
        # path pays a single attribute check.
        self._branches = threading.local()
        self._threaded = False

    def now(self) -> float:
        """Current simulated time in seconds.

        Lock-free *read*: a float attribute read is atomic in CPython, and
        this sits on every hot path (message stamps, span starts, charges).
        That does NOT make read-modify-write sequences safe — ``advance``
        interleaving with other writers is serialized by the lock, but a
        caller computing ``now() + dt`` and writing it back would race.
        Concurrent-branch latency accounting must therefore never sum onto
        the clock directly: the wave scheduler routes it through a
        :class:`~repro.core.scheduler.VirtualTimeline`, whose commit is a
        single ``advance_to(max(branch ends))``.  Under the thread backend
        each worker additionally runs inside a *branch overlay*
        (:meth:`branch_begin`), so its reads and advances touch only
        thread-local time and the shared value changes exclusively through
        locked ``advance_to`` commits.
        """
        if self._threaded:
            local = getattr(self._branches, "now", None)
            if local is not None:
                return local
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock backwards: {seconds}")
        if self._threaded:
            local = getattr(self._branches, "now", None)
            if local is not None:
                local += seconds
                self._branches.now = local
                return local
            with self._lock:
                self._now += seconds
                return self._now
        # Serial fast path: until a concurrent backend marks the clock
        # threaded, exactly one thread mutates it — no lock needed.
        now = self._now + seconds
        self._now = now
        return now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to *timestamp* if it is in the future."""
        if self._threaded:
            local = getattr(self._branches, "now", None)
            if local is not None:
                if timestamp > local:
                    self._branches.now = timestamp
                    return timestamp
                return local
            with self._lock:
                if timestamp > self._now:
                    self._now = timestamp
                return self._now
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def rebase(self, timestamp: float) -> float:
        """Set the clock to *timestamp*, which may sit in the simulated past.

        This is the one deliberate exception to monotonicity, reserved for
        the wave scheduler's :class:`~repro.core.scheduler.VirtualTimeline`:
        logically-concurrent plan branches each replay from their *ready*
        time, so opening the next branch rewinds to that branch's start.
        The timeline restores monotonicity at commit by advancing to the
        maximum branch end (the critical path).  Everything else must use
        :meth:`advance`/:meth:`advance_to`.
        """
        if timestamp < 0:
            raise ValueError(f"cannot rebase clock before epoch: {timestamp}")
        if self._threaded:
            local = getattr(self._branches, "now", None)
            if local is not None:
                self._branches.now = float(timestamp)
                return float(timestamp)
            with self._lock:
                self._now = float(timestamp)
                return self._now
        now = float(timestamp)
        self._now = now
        return now

    # ------------------------------------------------------------------
    # Branch overlay (thread backend)
    # ------------------------------------------------------------------
    @property
    def threaded(self) -> bool:
        """Whether a concurrent backend has engaged this clock.

        While False the clock is single-writer and mutates without its
        lock; once True every shared-value write is locked.  Readers
        (e.g. :class:`~repro.core.scheduler.VirtualTimeline`) use this to
        pick their own serial fast paths.
        """
        return self._threaded

    def mark_threaded(self) -> None:
        """Engage locked mode *before* any worker thread touches the clock.

        :meth:`branch_begin` also flips the flag, but a worker's first
        branch would flip it from a pool thread while the driving thread
        may still be inside an unlocked write.  Concurrent backends call
        this from the coordinating thread before submitting work, closing
        that window; the flag is sticky by design.
        """
        self._threaded = True

    def branch_begin(self, start: float) -> float:
        """Enter a thread-local timeline branch starting at *start*.

        The thread backend's replacement for ``VirtualTimeline.open``'s
        shared rebase: every read/advance/rebase on the calling thread is
        served from a private overlay until :meth:`branch_end`, so
        concurrent branches never see (or disturb) each other's time.
        The shared value still only moves through locked ``advance_to``
        commits.  Branches do not nest (mirroring the timeline's
        single-open-branch rule).
        """
        if getattr(self._branches, "now", None) is not None:
            raise RuntimeError("a clock branch is already open on this thread")
        self._threaded = True
        self._branches.now = float(start)
        return float(start)

    def branch_end(self) -> float:
        """Leave the calling thread's branch; returns its end time."""
        local = getattr(self._branches, "now", None)
        if local is None:
            raise RuntimeError("no clock branch is open on this thread")
        self._branches.now = None
        return local

    def branch_active(self) -> bool:
        """Whether the calling thread is inside a branch overlay."""
        return (
            self._threaded and getattr(self._branches, "now", None) is not None
        )


class Stopwatch:
    """Measures elapsed simulated time between two points.

    Example:
        >>> clock = SimClock()
        >>> watch = Stopwatch(clock)
        >>> _ = clock.advance(1.5)
        >>> watch.elapsed()
        1.5
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now()

    def elapsed(self) -> float:
        """Simulated seconds since the stopwatch was created or restarted."""
        return self._clock.now() - self._start

    def restart(self) -> None:
        """Reset the start point to the clock's current time."""
        self._start = self._clock.now()
