"""AgentFactory: spawns agent instances inside containers.

"Agents are deployed in containers ... where [the] container runs an
AgentFactory server, which spawns instances of agents" (Section V-B).
The factory maps agent *type names* to constructors; the deployment layer
(:mod:`repro.core.deployment`) runs one factory per container and respawns
agents after simulated failures.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..errors import DeploymentError
from .agent import Agent

AgentConstructor = Callable[..., Agent]


class AgentFactory:
    """Registry of agent constructors plus the instances spawned from them."""

    def __init__(self, factory_id: str = "factory") -> None:
        self.factory_id = factory_id
        self._constructors: dict[str, AgentConstructor] = {}
        self._spawned: list[Agent] = []
        self._lock = threading.Lock()

    def register(self, type_name: str, constructor: AgentConstructor) -> None:
        with self._lock:
            if type_name in self._constructors:
                raise DeploymentError(f"agent type already registered: {type_name!r}")
            self._constructors[type_name] = constructor

    def register_class(self, agent_class: type[Agent]) -> None:
        """Register a class under its agent name."""
        self.register(agent_class.name, agent_class)

    def types(self) -> list[str]:
        with self._lock:
            return sorted(self._constructors)

    def spawn(self, type_name: str, **kwargs: Any) -> Agent:
        """Instantiate a new agent of *type_name*."""
        with self._lock:
            constructor = self._constructors.get(type_name)
        if constructor is None:
            raise DeploymentError(
                f"factory {self.factory_id!r} cannot spawn unknown type {type_name!r}"
            )
        agent = constructor(**kwargs)
        with self._lock:
            self._spawned.append(agent)
        return agent

    def spawned(self) -> list[Agent]:
        with self._lock:
            return list(self._spawned)

    def forget(self, agent: Agent) -> None:
        """Drop a dead instance from the spawned list."""
        with self._lock:
            if agent in self._spawned:
                self._spawned.remove(agent)
