"""Agent and data registries: the enterprise touch points (Sections V-C/D).

Registries map existing enterprise assets — models, APIs, databases,
collections, graphs, even LLMs-as-data-sources — into searchable metadata
that planners consult.  Both registries share the same search machinery:

* **keyword** search scores query-word overlap with entry text,
* **vector** search embeds entry text with the deterministic hashing
  embedder and ranks by cosine similarity,
* historical **usage** counts boost frequently useful entries, the
  "learned representations ... leveraging historical usage data" hook.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..embedding import HashingEmbedder, keyword_overlap
from ..errors import AccessDeniedError, RegistryError
from ..storage import Collection, Database, GraphStore, KeyValueStore
from ..storage.vector import FlatIndex, IVFIndex
from .agent import Agent
from .params import Parameter

#: Principal used by trusted platform components (planners, optimizers).
SYSTEM_PRINCIPAL = "__system__"


@dataclass
class RegistryEntry:
    """One registered asset (agent or data source)."""

    name: str
    kind: str
    description: str
    metadata: dict[str, Any] = field(default_factory=dict)
    usage_count: int = 0
    usage_successes: int = 0

    def text(self) -> str:
        """The searchable text of this entry."""
        parts = [self.name.replace("_", " "), self.description]
        parts.extend(str(v) for v in self.metadata.get("keywords", ()))
        return " ".join(parts)

    def success_rate(self) -> float:
        if self.usage_count == 0:
            return 1.0
        return self.usage_successes / self.usage_count


@dataclass(frozen=True)
class SearchHit:
    entry: RegistryEntry
    score: float


class SearchableRegistry:
    """Shared store + search machinery for both registries.

    ``approximate=True`` swaps the exact flat index for an IVF index —
    the trade a very large enterprise registry makes: probed clusters
    instead of brute force, slightly lossy, much cheaper per query.
    """

    def __init__(
        self,
        registry_name: str,
        embedding_dim: int = 256,
        approximate: bool = False,
    ) -> None:
        self.registry_name = registry_name
        self.approximate = approximate
        self._entries: dict[str, RegistryEntry] = {}
        self._embedder = HashingEmbedder(dim=embedding_dim)
        self._index = self._new_index()
        self._lock = threading.RLock()

    def _new_index(self) -> FlatIndex | IVFIndex:
        if self.approximate:
            return IVFIndex(
                dim=self._embedder.dim, metric="cosine", n_clusters=16, n_probes=4
            )
        return FlatIndex(dim=self._embedder.dim, metric="cosine")

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _add(self, entry: RegistryEntry) -> RegistryEntry:
        with self._lock:
            if entry.name in self._entries:
                raise RegistryError(
                    f"{self.registry_name}: entry already registered: {entry.name!r}"
                )
            self._entries[entry.name] = entry
            self._index.add(entry.name, self._embedder.embed(entry.text()))
            return entry

    def get(self, name: str) -> RegistryEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise RegistryError(f"{self.registry_name}: unknown entry: {name!r}")
        return entry

    def has(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[RegistryEntry]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        k: int = 5,
        method: str = "vector",
        kind: str | None = None,
    ) -> list[SearchHit]:
        """Top-*k* entries for *query*; methods: vector, keyword, hybrid."""
        if method not in {"vector", "keyword", "hybrid"}:
            raise RegistryError(f"unknown search method: {method!r}")
        scores: dict[str, float] = {}
        if method in {"vector", "hybrid"}:
            query_vector = self._embedder.embed(query)
            for name, score in self._index.search(query_vector, k=max(k * 4, 16)):
                scores[name] = max(scores.get(name, 0.0), score)
        if method in {"keyword", "hybrid"}:
            for entry in self.entries():
                score = keyword_overlap(query, entry.text())
                if score > 0:
                    scores[entry.name] = max(scores.get(entry.name, 0.0), score)
        hits = []
        for name, score in scores.items():
            entry = self.get(name)
            if kind is not None and entry.kind != kind:
                continue
            boosted = score + 0.02 * math.log1p(entry.usage_count) * entry.success_rate()
            hits.append(SearchHit(entry, boosted))
        hits.sort(key=lambda hit: (-hit.score, hit.entry.name))
        return hits[:k]

    def record_usage(self, name: str, success: bool = True) -> None:
        """Log one use of an entry (feeds search ranking and planners)."""
        entry = self.get(name)
        with self._lock:
            entry.usage_count += 1
            if success:
                entry.usage_successes += 1

    def update_metadata(
        self,
        name: str,
        description: str | None = None,
        **metadata_updates: Any,
    ) -> RegistryEntry:
        """Update an entry's description/metadata (the registry web UI's
        "update metadata" operation).  The entry is re-embedded so search
        reflects the new text immediately."""
        entry = self.get(name)
        with self._lock:
            if description is not None:
                entry.description = description
            entry.metadata.update(metadata_updates)
            self._index = self._new_index()
            for existing in self._entries.values():
                self._index.add(existing.name, self._embedder.embed(existing.text()))
        return entry

    def embedding_of(self, name: str) -> np.ndarray:
        """The stored representation of an entry (for diagnostics)."""
        return self._embedder.embed(self.get(name).text())


# ======================================================================
# Agent registry
# ======================================================================
class AgentRegistry(SearchableRegistry):
    """Metadata store for agents: descriptions, parameters, deployment."""

    def __init__(self, embedding_dim: int = 256, approximate: bool = False) -> None:
        super().__init__("agent-registry", embedding_dim, approximate)
        self._constructors: dict[str, Callable[..., Agent]] = {}

    def register_agent(
        self,
        agent_or_class: Agent | type[Agent],
        deployment: Mapping[str, Any] | None = None,
        keywords: tuple[str, ...] = (),
    ) -> RegistryEntry:
        """Register an agent instance or class from its own metadata."""
        if isinstance(agent_or_class, Agent):
            described = agent_or_class.describe()
            constructor: Callable[..., Agent] | None = type(agent_or_class)
        else:
            instance_free = agent_or_class
            described = {
                "name": instance_free.name,
                "description": instance_free.description,
                "inputs": [p.describe() for p in instance_free.inputs],
                "outputs": [p.describe() for p in instance_free.outputs],
                "listen_tags": list(instance_free.listen_tags),
                "exclude_tags": list(instance_free.exclude_tags),
                "properties": {},
            }
            constructor = agent_or_class
        metadata = {
            "inputs": described["inputs"],
            "outputs": described["outputs"],
            "listen_tags": described["listen_tags"],
            "exclude_tags": described["exclude_tags"],
            "deployment": dict(deployment or {"image": f"{described['name'].lower()}:latest"}),
            "keywords": list(keywords),
        }
        entry = self._add(
            RegistryEntry(
                name=described["name"],
                kind="agent",
                description=described["description"],
                metadata=metadata,
            )
        )
        if constructor is not None:
            self._constructors[described["name"]] = constructor
        return entry

    def register_metadata(
        self,
        name: str,
        description: str,
        inputs: tuple[Parameter, ...] = (),
        outputs: tuple[Parameter, ...] = (),
        deployment: Mapping[str, Any] | None = None,
        keywords: tuple[str, ...] = (),
    ) -> RegistryEntry:
        """Register an external asset (API/model) by hand-written metadata."""
        metadata = {
            "inputs": [p.describe() for p in inputs],
            "outputs": [p.describe() for p in outputs],
            "listen_tags": [],
            "exclude_tags": [],
            "deployment": dict(deployment or {}),
            "keywords": list(keywords),
        }
        return self._add(
            RegistryEntry(name=name, kind="agent", description=description, metadata=metadata)
        )

    def constructor(self, name: str) -> Callable[..., Agent]:
        constructor = self._constructors.get(name)
        if constructor is None:
            raise RegistryError(f"no constructor registered for agent {name!r}")
        return constructor

    def derive(
        self, base_name: str, new_name: str, description: str | None = None, **metadata_overrides: Any
    ) -> RegistryEntry:
        """Derive a new agent entry from an existing one (registry UI op)."""
        base = self.get(base_name)
        metadata = dict(base.metadata)
        metadata.update(metadata_overrides)
        entry = self._add(
            RegistryEntry(
                name=new_name,
                kind="agent",
                description=description or base.description,
                metadata=metadata,
            )
        )
        if base_name in self._constructors:
            self._constructors[new_name] = self._constructors[base_name]
        return entry

    # -- planner support -------------------------------------------------
    def input_names(self, name: str) -> list[str]:
        return [p["name"] for p in self.get(name).metadata.get("inputs", [])]

    def output_names(self, name: str) -> list[str]:
        return [p["name"] for p in self.get(name).metadata.get("outputs", [])]

    def find_producing(self, param_type: str) -> list[RegistryEntry]:
        """Agents with an output parameter of *param_type*."""
        found = []
        for entry in self.entries():
            for output in entry.metadata.get("outputs", []):
                if output.get("type") == param_type:
                    found.append(entry)
                    break
        return found

    def find_consuming(self, param_type: str) -> list[RegistryEntry]:
        """Agents with an input parameter of *param_type*."""
        found = []
        for entry in self.entries():
            for input_param in entry.metadata.get("inputs", []):
                if input_param.get("type") == param_type:
                    found.append(entry)
                    break
        return found


# ======================================================================
# Data registry
# ======================================================================
class DataRegistry(SearchableRegistry):
    """Metadata store for enterprise data sources across modalities.

    Each entry records the source's kind, schema-level metadata, available
    indices, and a live handle so planners can execute against it.  LLMs
    register here too: the paper's Figure-7 plan uses GPT *as a data
    source* for world knowledge.
    """

    def __init__(self, embedding_dim: int = 256, approximate: bool = False) -> None:
        super().__init__("data-registry", embedding_dim, approximate)
        self._handles: dict[str, Any] = {}
        self._acls: dict[str, frozenset[str]] = {}
        self._vector_indices: dict[str, tuple[FlatIndex, str]] = {}

    def handle(self, name: str, principal: str | None = None) -> Any:
        """The live source object behind an entry.

        When the entry carries an ACL, *principal* must be one of the
        allowed agents — the data-governance hook of Section VII
        ("agents with different privileges").
        """
        if name not in self._handles:
            raise RegistryError(f"no live handle for data source {name!r}")
        if not self.authorized(name, principal):
            raise AccessDeniedError(
                f"principal {principal!r} may not access data source {name!r}"
            )
        return self._handles[name]

    # -- governance -------------------------------------------------------
    def set_acl(self, name: str, allowed: Iterable[str]) -> None:
        """Restrict a source to the given principals (agents/components)."""
        self.get(name)  # raises on unknown entries
        self._acls[name] = frozenset(allowed)

    def clear_acl(self, name: str) -> None:
        self._acls.pop(name, None)

    def acl(self, name: str) -> frozenset[str] | None:
        return self._acls.get(name)

    def authorized(self, name: str, principal: str | None) -> bool:
        """Whether *principal* may access *name* (open sources allow all).

        The system principal (planners, optimizers — trusted platform
        components that inspect sources to plan, not to exfiltrate) is
        always authorized.
        """
        if principal == SYSTEM_PRINCIPAL:
            return True
        allowed = self._acls.get(name)
        if allowed is None:
            return True
        return principal is not None and principal in allowed

    def register_table(
        self,
        database: Database,
        table_name: str,
        name: str | None = None,
        description: str = "",
        keywords: tuple[str, ...] = (),
    ) -> RegistryEntry:
        table = database.table(table_name)
        entry_name = name or table_name.upper()
        schema_meta = table.schema.describe()
        column_names = [c["name"] for c in schema_meta["columns"]]
        metadata = {
            "modality": "relational",
            "database": database.name,
            "table": table.name,
            "schema": schema_meta,
            "indices": table.indexed_columns(),
            "row_count": len(table),
            "keywords": list(keywords) + column_names,
        }
        entry = self._add(
            RegistryEntry(
                name=entry_name,
                kind="relational_table",
                description=description or table.schema.description,
                metadata=metadata,
            )
        )
        self._handles[entry_name] = database
        return entry

    def register_collection(
        self,
        collection: Collection,
        name: str | None = None,
        description: str = "",
        fields: tuple[str, ...] = (),
        keywords: tuple[str, ...] = (),
        embed_field: str | None = None,
    ) -> RegistryEntry:
        """Register a document collection.

        With *embed_field*, the registry also builds a vector index over
        that field's text — the retrieval backbone for RAG plans
        (``Op.VECTOR_SEARCH``).
        """
        entry_name = name or collection.name.upper()
        metadata = {
            "modality": "document",
            "collection": collection.name,
            "fields": list(fields),
            "indexed_fields": collection.indexed_fields(),
            "document_count": len(collection),
            "embed_field": embed_field,
            "keywords": list(keywords) + list(fields),
        }
        entry = self._add(
            RegistryEntry(
                name=entry_name,
                kind="document_collection",
                description=description or collection.description,
                metadata=metadata,
            )
        )
        self._handles[entry_name] = collection
        if embed_field is not None:
            index = FlatIndex(dim=self._embedder.dim, metric="cosine")
            for document in collection.find():
                text = str(document.get(embed_field, ""))
                index.add(document["_id"], self._embedder.embed(text))
            self._vector_indices[entry_name] = (index, embed_field)
        return entry

    def vector_index(self, name: str) -> tuple[FlatIndex, str]:
        """(index, embedded field) for a collection registered with one."""
        if name not in self._vector_indices:
            raise RegistryError(f"data source {name!r} has no vector index")
        return self._vector_indices[name]

    def embed_query(self, text: str) -> np.ndarray:
        """Embed *text* with the registry's embedder (query side of RAG)."""
        return self._embedder.embed(text)

    def register_graph(
        self,
        graph: GraphStore,
        name: str | None = None,
        description: str = "",
        keywords: tuple[str, ...] = (),
    ) -> RegistryEntry:
        entry_name = name or graph.name.upper()
        described = graph.describe()
        metadata = {
            "modality": "graph",
            "graph": graph.name,
            "nodes": described["nodes"],
            "edges": described["edges"],
            "labels": described["labels"],
            "keywords": list(keywords) + list(described["labels"]),
        }
        entry = self._add(
            RegistryEntry(
                name=entry_name,
                kind="graph",
                description=description or graph.description,
                metadata=metadata,
            )
        )
        self._handles[entry_name] = graph
        return entry

    def register_keyvalue(
        self,
        store: KeyValueStore,
        name: str | None = None,
        description: str = "",
        keywords: tuple[str, ...] = (),
    ) -> RegistryEntry:
        entry_name = name or store.name.upper()
        metadata = {
            "modality": "keyvalue",
            "store": store.name,
            "namespaces": store.namespaces(),
            "keywords": list(keywords),
        }
        entry = self._add(
            RegistryEntry(
                name=entry_name,
                kind="keyvalue",
                description=description or store.description,
                metadata=metadata,
            )
        )
        self._handles[entry_name] = store
        return entry

    def register_llm(
        self,
        model_name: str,
        name: str | None = None,
        description: str = "",
        knowledge_domains: tuple[str, ...] = ("world knowledge", "general"),
    ) -> RegistryEntry:
        """Register a model endpoint as a *data source* (Figure 7)."""
        entry_name = name or f"LLM:{model_name}"
        metadata = {
            "modality": "parametric",
            "model": model_name,
            "knowledge_domains": list(knowledge_domains),
            "keywords": list(knowledge_domains),
        }
        entry = self._add(
            RegistryEntry(
                name=entry_name,
                kind="llm",
                description=description
                or f"Parametric knowledge served by model {model_name}",
                metadata=metadata,
            )
        )
        self._handles[entry_name] = model_name
        return entry

    # -- planner support -------------------------------------------------
    def by_modality(self, modality: str) -> list[RegistryEntry]:
        return [e for e in self.entries() if e.metadata.get("modality") == modality]

    def tables_with_column(self, column: str) -> list[RegistryEntry]:
        """Relational entries whose schema includes *column*."""
        found = []
        lowered = column.lower()
        for entry in self.by_modality("relational"):
            columns = entry.metadata.get("schema", {}).get("columns", [])
            if any(c["name"].lower() == lowered for c in columns):
                found.append(entry)
        return found

    def discover(self, concept: str, k: int = 3) -> list[SearchHit]:
        """Hybrid search used by the data planner's DISCOVER operator."""
        return self.search(concept, k=k, method="hybrid")

    def discover_fine(self, concept: str, k: int = 5) -> list[tuple[str, str, float]]:
        """Coarse-to-fine discovery: rank (source, field) pairs for *concept*.

        The coarse level is the registry entry; the fine level is the
        entry's columns (relational) or fields (document) — the
        granularity hierarchy of Section V-D ("data at various levels of
        granularity") and the authors' CMDBench framing.
        """
        scored: list[tuple[str, str, float]] = []
        query_vector = self._embedder.embed(concept)
        for entry in self.entries():
            fine_items: list[tuple[str, str]] = []
            if entry.kind == "relational_table":
                for column in entry.metadata.get("schema", {}).get("columns", []):
                    text = f"{column['name']} {column.get('description', '')}"
                    fine_items.append((column["name"], text))
            elif entry.kind == "document_collection":
                fine_items.extend(
                    (field, field) for field in entry.metadata.get("fields", [])
                )
            else:
                continue
            for field, text in fine_items:
                field_vector = self._embedder.embed(
                    f"{text} {entry.name.replace('_', ' ')}"
                )
                score = float(np.dot(query_vector, field_vector))
                overlap = keyword_overlap(concept, text)
                scored.append((entry.name, field, score + overlap))
        scored.sort(key=lambda item: (-item[2], item[0], item[1]))
        return scored[:k]
