"""Guard agents: moderation, verification, and self-reflection modules.

The paper's related-work framing (Section III-A) treats these as the
extension modules enterprises bolt onto LLMs — "verification modules
validate content against trusted sources", "content moderation modules",
and "self-reflection modules [that] assess outputs for coherence,
consistency, and correctness".  In this architecture each is just another
agent: tag-activated, stream-connected, and registrable.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable

from .agent import Agent
from .params import Parameter

#: Default policy for the moderator: terms that must never reach users
#: and patterns treated as PII to redact.
DEFAULT_BANNED_TERMS = ("confidential", "do not share", "internal only")
PII_PATTERNS = {
    "email": re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.]+\b"),
    "phone": re.compile(r"\b\d{3}[-.\s]\d{3}[-.\s]\d{4}\b"),
    "ssn": re.compile(r"\b\d{3}-\d{2}-\d{4}\b"),
}


class ModeratorAgent(Agent):
    """Checks outbound text against policy; emits a verdict and redaction.

    Verdicts: ``allow`` (clean), ``redact`` (PII found and masked), or
    ``block`` (banned terms present).
    """

    name = "MODERATOR"
    description = "Moderates generated content: blocks banned terms, redacts PII"
    inputs = (Parameter("TEXT", "text", "candidate output text"),)
    outputs = (
        Parameter("VERDICT", "text", "allow | redact | block"),
        Parameter("SAFE_TEXT", "text", "the text after moderation"),
    )
    listen_tags = ("MODERATE",)
    gate_mode = "any"

    def __init__(self, banned_terms: Iterable[str] = DEFAULT_BANNED_TERMS, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._banned = tuple(term.lower() for term in banned_terms)

    def moderate(self, text: str) -> tuple[str, str]:
        """(verdict, safe_text) for *text* — also usable as a library call."""
        lowered = text.lower()
        for term in self._banned:
            if term in lowered:
                return "block", "[content blocked by policy]"
        redacted = text
        hit = False
        for label, pattern in PII_PATTERNS.items():
            if pattern.search(redacted):
                redacted = pattern.sub(f"[{label} redacted]", redacted)
                hit = True
        return ("redact", redacted) if hit else ("allow", text)

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        verdict, safe = self.moderate(str(inputs["TEXT"]))
        return {"VERDICT": verdict, "SAFE_TEXT": safe}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("MODERATED",) if param == "SAFE_TEXT" else ()


class VerifierAgent(Agent):
    """Validates a list-valued answer against a trusted-membership check.

    The constructor takes the trusted check (a callable ``item -> bool``),
    typically closed over an enterprise source — e.g. membership in a
    relational column's distinct values.
    """

    name = "VERIFIER"
    description = "Verifies answers against trusted enterprise sources"
    inputs = (Parameter("ANSWER", "json", "a list-valued answer to verify"),)
    outputs = (
        Parameter("VERIFIED", "json", "items confirmed by the trusted source"),
        Parameter("REJECTED", "json", "items the trusted source refutes"),
    )
    listen_tags = ("VERIFY",)
    gate_mode = "any"

    def __init__(self, is_trusted: Callable[[Any], bool], **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._is_trusted = is_trusted

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        answer = inputs["ANSWER"]
        items = answer if isinstance(answer, list) else [answer]
        verified = [item for item in items if self._is_trusted(item)]
        rejected = [item for item in items if not self._is_trusted(item)]
        return {"VERIFIED": verified, "REJECTED": rejected}

    @classmethod
    def against_column(cls, database, table: str, column: str, **kwargs: Any) -> "VerifierAgent":
        """A verifier trusting the distinct values of ``table.column``."""
        rows = database.execute(f"SELECT DISTINCT {column} FROM {table}").rows
        trusted = {str(row[column]).lower() for row in rows if row[column] is not None}
        return cls(lambda item: str(item).lower() in trusted, **kwargs)


class ReflectionAgent(Agent):
    """Assesses a draft for simple coherence/consistency defects and revises.

    Deterministic checks stand in for an LLM critique: empty drafts,
    unresolved template placeholders, word-level stutter, and contradictory
    hedging are flagged; the revision strips what it can.
    """

    name = "REFLECTOR"
    description = "Self-reflection: assesses drafts for coherence and revises them"
    inputs = (Parameter("DRAFT", "text", "a draft output"),)
    outputs = (
        Parameter("REVISED", "text", "the improved draft"),
        Parameter("CRITIQUE", "json", "the defects found"),
    )
    listen_tags = ("REFLECT",)
    gate_mode = "any"

    _PLACEHOLDER = re.compile(r"\{[a-z_]+\}|\bTODO\b|\bFIXME\b")
    _STUTTER = re.compile(r"\b(\w+)( \1\b)+", re.IGNORECASE)

    def critique(self, draft: str) -> list[str]:
        defects = []
        if not draft.strip():
            defects.append("empty draft")
        if self._PLACEHOLDER.search(draft):
            defects.append("unresolved placeholder")
        if self._STUTTER.search(draft):
            defects.append("repeated words")
        if "yes" in draft.lower() and "no" in draft.lower().split() and len(draft) < 40:
            defects.append("contradictory hedging")
        return defects

    def revise(self, draft: str) -> str:
        revised = self._STUTTER.sub(r"\1", draft)
        revised = self._PLACEHOLDER.sub("", revised)
        revised = re.sub(r"\s{2,}", " ", revised).strip()
        return revised or "(no content)"

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        draft = str(inputs["DRAFT"])
        defects = self.critique(draft)
        revised = self.revise(draft) if defects else draft
        return {"REVISED": revised, "CRITIQUE": defects}

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("REFLECTED",) if param == "REVISED" else ()
