"""The data planner (Section V-G, Figure 7).

"Data planner's job is to provide agents with the right data":

1. agents invoke it to find and query data sources, and
2. the task coordinator invokes it to transform data flowing between
   agents (``PROFILER.CRITERIA <- USER.TEXT``).

Its signature move is *decomposition*: a query like "data scientist
position in SF bay area" cannot run as one SQL statement because the data
is split across modalities — "SF bay area" is no city in the JOBS table
(an LLM must expand the region), and "data scientist" under-covers titles
(a graph taxonomy expands it).  The planner detects both situations,
injects ``Q2NL``/``LLM_CALL``/``TAXONOMY`` operators, and wires their
outputs into an ``NL2Q`` + ``SQL`` tail — exactly the Figure-7 plan.

Every LLM-backed operator carries the full set of catalog models as
alternatives so the optimizer can trade cost/latency/quality under QoS.
"""

from __future__ import annotations

from typing import Any

from ...errors import PlanningError
from ...ids import IdGenerator
from ...llm import ModelCatalog, prompts
from ..budget import Budget
from ..optimizer import CostModel, PlanOptimizer
from ..plan.data_plan import DataPlan, Op, OperatorChoice
from ..qos import QoSSpec
from ..registries import SYSTEM_PRINCIPAL, DataRegistry, RegistryEntry
from .data_executor import DataPlanExecutor, ExecutionResult

#: Column-name heuristics for locating the semantic columns of a jobs table.
TITLE_COLUMNS = ("title", "job_title", "position")
CITY_COLUMNS = ("city", "location")


class DataPlanner:
    """Plans and executes multi-source data retrieval and transformation."""

    def __init__(
        self,
        registry: DataRegistry,
        catalog: ModelCatalog,
        planner_model: str = "hr-ft",
        rows_estimate: int = 100,
    ) -> None:
        self.registry = registry
        self.catalog = catalog
        self.planner_model = planner_model
        self._ids = IdGenerator()
        self._cost_model = CostModel(catalog)
        self.optimizer = PlanOptimizer(self._cost_model, rows_in=rows_estimate)
        self.executor = DataPlanExecutor(registry, catalog)

    # ------------------------------------------------------------------
    # Request interpretation
    # ------------------------------------------------------------------
    def parse_request(self, text: str) -> dict[str, Any]:
        """Extract the criteria from a free-text request (an LLM call)."""
        client = self.catalog.client(self.planner_model)
        response = client.complete(prompts.extract(text, ("title", "location")))
        parsed = response.structured if isinstance(response.structured, dict) else {}
        return {"title": parsed.get("title"), "location": parsed.get("location")}

    # ------------------------------------------------------------------
    # Planning: job search (the running example)
    # ------------------------------------------------------------------
    def plan_job_query(
        self,
        text: str,
        qos: QoSSpec | None = None,
        optimize: bool = True,
        verify: bool = False,
    ) -> DataPlan:
        """Decomposed multi-source plan for a job-search query (Figure 7).

        With ``verify=True`` the planner injects VERIFY operators after
        each LLM-backed expansion (the paper's fact-verifier module):
        city answers are checked against the JOBS table's city column,
        so hallucinated cities from cheap models never reach the query.
        """
        criteria = self.parse_request(text)
        title = criteria.get("title")
        location = criteria.get("location")
        jobs = self._find_jobs_table()
        title_col = self._pick_column(jobs, TITLE_COLUMNS)
        city_col = self._pick_column(jobs, CITY_COLUMNS)
        plan = DataPlan(self._ids.next("dplan"), goal=text)
        nl2q_inputs: list[str] = []
        column_bindings: dict[str, str] = {}
        base_filters: dict[str, Any] = {}

        if title and title_col:
            taxonomy = self._find_taxonomy_graph()
            choices = tuple(
                [OperatorChoice(source=taxonomy.name, note="graph taxonomy")]
                if taxonomy is not None
                else []
            ) + self._model_choices(domain="hr")
            plan.add_op(
                "expand_title",
                Op.TAXONOMY,
                params={"concept": title, "domain": "hr"},
                choices=choices,
            )
            nl2q_inputs.append("expand_title")
            column_bindings["expand_title"] = title_col

        if location and city_col:
            if self._location_is_known_city(jobs, city_col, location):
                base_filters[city_col] = location
            else:
                # "SF bay area" matches no city: inject Q2NL + LLM-as-source.
                plan.add_op(
                    "q2nl_location",
                    Op.Q2NL,
                    params={"fragment": f"cities in the {location}"},
                )
                plan.add_op(
                    "cities",
                    Op.LLM_CALL,
                    params={"prompt_kind": "cities", "arg": location},
                    inputs=("q2nl_location",),
                    choices=self._model_choices(domain="general"),
                )
                cities_source = "cities"
                if verify:
                    plan.add_op(
                        "verify_cities",
                        Op.VERIFY,
                        params={"table": jobs.metadata["table"], "column": city_col},
                        inputs=("cities",),
                        choices=(OperatorChoice(source=jobs.name),),
                    )
                    cities_source = "verify_cities"
                nl2q_inputs.append(cities_source)
                column_bindings[cities_source] = city_col

        plan.add_op(
            "nl2q",
            Op.NL2Q,
            params={
                "table": jobs.metadata["table"],
                "column_bindings": column_bindings,
                "base_filters": base_filters,
            },
            inputs=tuple(nl2q_inputs),
            choices=self._model_choices(domain="hr"),
        )
        plan.add_op(
            "query_jobs",
            Op.SQL,
            inputs=("nl2q",),
            choices=(OperatorChoice(source=jobs.name),),
        )
        plan.validate()
        if optimize:
            self.optimizer.optimize(plan, qos)
        return plan

    def plan_direct_query(self, text: str, optimize: bool = True) -> DataPlan:
        """Baseline: direct NL2Q without decomposition.

        Uses the extracted criteria as literal filters — the approach the
        paper says "may not always work" because regions and title synonyms
        never match database values.
        """
        criteria = self.parse_request(text)
        jobs = self._find_jobs_table()
        title_col = self._pick_column(jobs, TITLE_COLUMNS)
        city_col = self._pick_column(jobs, CITY_COLUMNS)
        base_filters: dict[str, Any] = {}
        if criteria.get("title") and title_col:
            base_filters[title_col] = criteria["title"]
        if criteria.get("location") and city_col:
            base_filters[city_col] = criteria["location"]
        plan = DataPlan(self._ids.next("dplan"), goal=f"direct: {text}")
        plan.add_op(
            "nl2q",
            Op.NL2Q,
            params={"table": jobs.metadata["table"], "base_filters": base_filters},
            choices=self._model_choices(domain="hr"),
        )
        plan.add_op(
            "query_jobs",
            Op.SQL,
            inputs=("nl2q",),
            choices=(OperatorChoice(source=jobs.name),),
        )
        if optimize:
            self.optimizer.optimize(plan)
        return plan

    # ------------------------------------------------------------------
    # Planning: retrieval-augmented generation (§III-A's RAG component)
    # ------------------------------------------------------------------
    def plan_rag(
        self,
        question: str,
        corpus: str | None = None,
        k: int = 3,
        qos: QoSSpec | None = None,
        optimize: bool = True,
    ) -> DataPlan:
        """Answer *question* grounded in retrieved documents.

        VECTOR_SEARCH pulls the k most similar documents from an embedded
        collection (named by *corpus*, or discovered), then SUMMARIZE
        condenses them — "conditioning generation with retrieval to
        improve accuracy and relevance".
        """
        entry = None
        if corpus is not None:
            entry = self.registry.get(corpus)
        else:
            for hit in self.registry.discover(question, k=5):
                if hit.entry.metadata.get("embed_field"):
                    entry = hit.entry
                    break
        if entry is None or not entry.metadata.get("embed_field"):
            raise PlanningError(
                f"no embedded document corpus available for {question!r}"
            )
        plan = DataPlan(self._ids.next("dplan"), goal=f"rag: {question}")
        plan.add_op(
            "retrieve",
            Op.VECTOR_SEARCH,
            params={"query": question, "k": k},
            choices=(OperatorChoice(source=entry.name),),
        )
        plan.add_op(
            "answer",
            Op.SUMMARIZE,
            params={"intro": f"Documents relevant to: {question}"},
            inputs=("retrieve",),
            choices=self._model_choices(domain="general"),
        )
        plan.validate()
        if optimize:
            self.optimizer.optimize(plan, qos)
        return plan

    # ------------------------------------------------------------------
    # Planning: generic multi-modal retrieval
    # ------------------------------------------------------------------
    def plan_retrieval(
        self,
        concept: str,
        filters: dict[str, Any] | None = None,
        limit: int | None = 20,
        optimize: bool = True,
    ) -> DataPlan:
        """Retrieve from whichever modality best answers *concept*.

        Discovery picks the source; the plan then uses the operator that
        modality speaks: ``SQL`` for relational tables, ``DOC_FIND`` for
        document collections, ``GRAPH_QUERY``/``TAXONOMY`` for graphs, and
        ``LLM_CALL`` for parametric (model) sources.  Filters are mapped
        into the source's own filter language.
        """
        filters = dict(filters or {})
        hits = self.registry.discover(concept, k=3)
        if not hits:
            raise PlanningError(f"no data source discovered for {concept!r}")
        entry = hits[0].entry
        plan = DataPlan(self._ids.next("dplan"), goal=f"retrieve: {concept}")
        if entry.kind == "relational_table":
            base_filters = {
                column: value
                for column, value in filters.items()
                if self._pick_column(entry, (column,)) is not None
            }
            plan.add_op(
                "nl2q", Op.NL2Q,
                params={"table": entry.metadata["table"], "base_filters": base_filters},
                choices=self._model_choices(domain="hr"),
            )
            plan.add_op(
                "fetch", Op.SQL, inputs=("nl2q",),
                choices=(OperatorChoice(source=entry.name),),
            )
            if limit is not None:
                plan.add_op("limit", Op.LIMIT, params={"n": limit}, inputs=("fetch",))
        elif entry.kind == "document_collection":
            partition_field = self._partition_field(entry.name)
            doc_filter = {
                field: (
                    value
                    # Partition keys are exact-match by definition — keep
                    # equality so the router can prune the shard fan-out.
                    if field == partition_field
                    else {"$contains": value} if isinstance(value, str) else value
                )
                for field, value in filters.items()
            }
            params: dict[str, Any] = {"filter": doc_filter, "limit": limit}
            shards = self._pruned_shards(entry.name, doc_filter)
            if shards is not None:
                params["shards"] = shards
            plan.add_op(
                "fetch", Op.DOC_FIND,
                params=params,
                choices=(OperatorChoice(source=entry.name),),
            )
        elif entry.kind == "graph":
            plan.add_op(
                "fetch", Op.TAXONOMY,
                params={"concept": filters.get("concept", concept)},
                choices=(OperatorChoice(source=entry.name),),
            )
        elif entry.kind == "llm":
            plan.add_op(
                "fetch", Op.LLM_CALL,
                params={"prompt_kind": filters.get("prompt_kind", "generate"),
                        "arg": filters.get("arg", concept)},
                choices=self._model_choices(domain="general"),
            )
        else:
            raise PlanningError(
                f"no retrieval strategy for source kind {entry.kind!r}"
            )
        plan.validate()
        if optimize:
            self.optimizer.optimize(plan)
        return plan

    # ------------------------------------------------------------------
    # Planning: transformations between agent parameters
    # ------------------------------------------------------------------
    def plan_transform(
        self,
        text: str,
        fields: tuple[str, ...],
        qos: QoSSpec | None = None,
        optimize: bool = True,
    ) -> DataPlan:
        """EXTRACT plan turning free text into structured fields.

        This is the coordinator's ``PROFILER.CRITERIA <- USER.TEXT`` path.
        """
        plan = DataPlan(self._ids.next("dplan"), goal=f"extract {fields} from text")
        plan.add_op(
            "extract",
            Op.EXTRACT,
            params={"text": text, "fields": fields, "domain": "hr"},
            choices=self._model_choices(domain="hr"),
        )
        if optimize:
            self.optimizer.optimize(plan, qos)
        return plan

    def plan_knowledge(
        self, prompt_kind: str, arg: str, qos: QoSSpec | None = None, optimize: bool = True
    ) -> DataPlan:
        """Single LLM-as-data-source lookup (cities/titles/skills)."""
        domain = "hr" if prompt_kind in {"titles", "skills"} else "general"
        plan = DataPlan(self._ids.next("dplan"), goal=f"{prompt_kind}({arg})")
        plan.add_op(
            "knowledge",
            Op.LLM_CALL,
            params={"prompt_kind": prompt_kind, "arg": arg, "domain": domain},
            choices=self._model_choices(domain=domain),
        )
        if optimize:
            self.optimizer.optimize(plan, qos)
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: DataPlan,
        budget: Budget | None = None,
        principal: str | None = None,
        parallel: bool = False,
    ) -> ExecutionResult:
        return self.executor.execute(
            plan, budget=budget, principal=principal, parallel=parallel
        )

    def run_job_query(
        self,
        text: str,
        qos: QoSSpec | None = None,
        budget: Budget | None = None,
        principal: str | None = None,
        verify: bool = False,
    ) -> ExecutionResult:
        """Plan, optimize, and execute in one call (the agent-facing API)."""
        plan = self.plan_job_query(text, qos=qos, verify=verify)
        return self.execute(plan, budget=budget, principal=principal)

    # ------------------------------------------------------------------
    # Source discovery helpers
    # ------------------------------------------------------------------
    def _find_jobs_table(self) -> RegistryEntry:
        hits = self.registry.discover("job postings openings positions", k=5)
        for hit in hits:
            if hit.entry.kind == "relational_table":
                return hit.entry
        relational = self.registry.by_modality("relational")
        if relational:
            return relational[0]
        raise PlanningError("no relational jobs source registered")

    def _find_taxonomy_graph(self) -> RegistryEntry | None:
        hits = self.registry.discover("job title taxonomy hierarchy", k=5)
        for hit in hits:
            if hit.entry.kind == "graph":
                return hit.entry
        graphs = self.registry.by_modality("graph")
        return graphs[0] if graphs else None

    def _location_is_known_city(
        self, jobs: RegistryEntry, city_col: str, location: str
    ) -> bool:
        database = self.registry.handle(jobs.name, principal=SYSTEM_PRINCIPAL)
        result = database.execute(
            f"SELECT COUNT(*) AS n FROM {jobs.metadata['table']} "
            f"WHERE LOWER({city_col}) = LOWER(:loc)",
            {"loc": location},
        )
        return bool(result.scalar())

    def _collection_handle(self, source_name: str) -> Any | None:
        """The registered collection behind *source_name*, if reachable."""
        try:
            return self.registry.handle(source_name, principal=SYSTEM_PRINCIPAL)
        except Exception:
            return None

    def _partition_field(self, source_name: str) -> str | None:
        """The collection's shard key, when it is a clustered collection."""
        handle = self._collection_handle(source_name)
        return getattr(handle, "partition_field", None)

    def _pruned_shards(
        self, source_name: str, doc_filter: dict[str, Any]
    ) -> list[int] | None:
        """Shard annotation for a DOC_FIND, or None when no pruning applies.

        Only clustered collections expose ``shards_for_filter``; for a
        plain collection (or an unpruned filter) the op carries no shard
        list and the executor lets the store fan out as usual.
        """
        handle = self._collection_handle(source_name)
        prune = getattr(handle, "shards_for_filter", None)
        if prune is None:
            return None
        shards, pruned = prune(doc_filter)
        return shards if pruned else None

    @staticmethod
    def _pick_column(entry: RegistryEntry, candidates: tuple[str, ...]) -> str | None:
        columns = {
            c["name"].lower() for c in entry.metadata.get("schema", {}).get("columns", [])
        }
        for candidate in candidates:
            if candidate in columns:
                return candidate
        return None

    def _model_choices(self, domain: str) -> tuple[OperatorChoice, ...]:
        """All catalog models as alternatives, best-for-domain first."""
        specs = sorted(
            self.catalog.specs(), key=lambda s: -s.quality_for(domain)
        )
        return tuple(OperatorChoice(model=spec.name) for spec in specs)
