"""The task planner (Section V-F, Figure 6).

Interprets a user request and devises a task plan — a DAG of agent
invocations — using metadata from the agent registry to map sub-tasks to
suitable agents.  The planner is itself modeled as an agent
(:class:`TaskPlannerAgent`): it listens to the user stream and emits plans
into a plan stream for the coordinator.

Planning is template-and-retrieval based: applications register
:class:`TaskTemplate` playbooks (intent keywords plus a sequence of
sub-task descriptions); the planner classifies the utterance's intent —
via the LLM when a catalog is available, by keyword overlap otherwise —
then resolves each sub-task to a concrete agent with registry search and
wires parameters by name and type.  It supports the paper's planner
modes: one-shot (static), incremental (step at a time), interactive
(propose/revise), and adaptive (usage feedback boosts future retrieval).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ...errors import PlanningError
from ...ids import IdGenerator
from ...llm import ModelCatalog, prompts
from ..agent import Agent
from ..budget import Budget
from ..params import Parameter
from ..plan.task_plan import Binding, TaskNode, TaskPlan
from ..registries import AgentRegistry


@dataclass(frozen=True)
class StepSpec:
    """One sub-task in a template.

    ``bindings`` may pre-wire parameters; unwired parameters are resolved
    automatically (upstream outputs by name, then by type, then the user
    stream — with an extract transform when types disagree).
    """

    description: str
    bindings: Mapping[str, Binding] = field(default_factory=dict)
    agent: str | None = None  # pin a specific agent, bypassing search


@dataclass(frozen=True)
class TaskTemplate:
    """A playbook for one intent."""

    intent: str
    keywords: tuple[str, ...]
    steps: tuple[StepSpec, ...]
    description: str = ""

    def keyword_score(self, utterance: str) -> int:
        lowered = utterance.lower()
        return sum(1 for keyword in self.keywords if keyword in lowered)


class TaskPlanner:
    """Builds task plans from utterances, agents, and templates."""

    def __init__(
        self,
        registry: AgentRegistry,
        catalog: ModelCatalog | None = None,
        classifier_model: str = "mega-s",
    ) -> None:
        self.registry = registry
        self.catalog = catalog
        self.classifier_model = classifier_model
        self._templates: dict[str, TaskTemplate] = {}
        self._ids = IdGenerator()

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------
    def register_template(self, template: TaskTemplate) -> None:
        if template.intent in self._templates:
            raise PlanningError(f"template already registered: {template.intent!r}")
        self._templates[template.intent] = template

    def templates(self) -> list[TaskTemplate]:
        return [self._templates[i] for i in sorted(self._templates)]

    # ------------------------------------------------------------------
    # Intent classification
    # ------------------------------------------------------------------
    #: Estimated cost of one LLM classification; below this remaining
    #: budget the planner degrades to free keyword routing (the §VII
    #: "incorporate accrued budget into planners" hook).
    CLASSIFY_COST_ESTIMATE = 0.001

    def classify_intent(self, utterance: str, budget: "Budget | None" = None) -> str:
        """Pick a template intent for *utterance*.

        When a *budget* is given and nearly exhausted, the planner skips
        the paid LLM classification and routes by keywords alone.
        """
        if not self._templates:
            raise PlanningError("no task templates registered")
        intents = sorted(self._templates)
        keyword_best = max(
            self._templates.values(),
            key=lambda t: (t.keyword_score(utterance), t.intent),
        )
        if budget is not None and budget.remaining_cost() < self.CLASSIFY_COST_ESTIMATE:
            return keyword_best.intent
        if self.catalog is not None and len(intents) > 1:
            response = self.catalog.client(self.classifier_model).complete(
                prompts.classify(utterance, intents)
            )
            chosen = str(response.structured)
            if chosen in self._templates:
                # LLM-modulo verification: an LLM pick with zero keyword
                # support loses to a template the utterance clearly matches.
                if (
                    self._templates[chosen].keyword_score(utterance) == 0
                    and keyword_best.keyword_score(utterance) > 0
                ):
                    return keyword_best.intent
                return chosen
        return keyword_best.intent

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self, utterance: str, user_stream: str, budget: "Budget | None" = None
    ) -> TaskPlan:
        """One-shot plan for *utterance*, reading input from *user_stream*."""
        intent = self.classify_intent(utterance, budget=budget)
        template = self._templates[intent]
        plan = TaskPlan(self._ids.next("plan"), goal=utterance)
        resolved: list[TaskNode] = []
        for position, step in enumerate(template.steps, start=1):
            agent_name = step.agent or self._resolve_agent(step.description)
            node = self._wire_step(
                plan_position=position,
                agent_name=agent_name,
                step=step,
                resolved=resolved,
                user_stream=user_stream,
            )
            plan.add(node)
            resolved.append(node)
        plan.validate(agent_names=set(self.registry.names()))
        for node in plan.nodes():
            self.registry.record_usage(node.agent)
        return plan

    def _resolve_agent(self, description: str) -> str:
        hits = self.registry.search(description, k=1, method="hybrid", kind="agent")
        if not hits:
            raise PlanningError(f"no agent found for sub-task {description!r}")
        return hits[0].entry.name

    def _wire_step(
        self,
        plan_position: int,
        agent_name: str,
        step: StepSpec,
        resolved: list[TaskNode],
        user_stream: str,
    ) -> TaskNode:
        entry = self.registry.get(agent_name)
        inputs = entry.metadata.get("inputs", [])
        bindings: dict[str, Binding] = dict(step.bindings)
        for param in inputs:
            name = param["name"]
            if name in bindings:
                continue
            required = param.get("required", True)
            binding = self._auto_bind(param, resolved, user_stream, required)
            if binding is not None:
                bindings[name] = binding
            elif required:
                raise PlanningError(
                    f"cannot bind required input {name!r} of agent {agent_name!r}"
                )
        return TaskNode(
            node_id=f"step{plan_position}",
            agent=agent_name,
            bindings=bindings,
            description=step.description,
        )

    def _auto_bind(
        self,
        param: Mapping[str, Any],
        resolved: list[TaskNode],
        user_stream: str,
        required: bool,
    ) -> Binding | None:
        name = param["name"]
        type_name = param.get("type", "text")
        # 1. Most recent upstream output with the same name.
        for node in reversed(resolved):
            for output in self.registry.get(node.agent).metadata.get("outputs", []):
                if output["name"] == name:
                    return Binding.from_node(node.node_id, name)
        # 2. Most recent upstream output with the same type.
        for node in reversed(resolved):
            for output in self.registry.get(node.agent).metadata.get("outputs", []):
                if output.get("type") == type_name:
                    return Binding.from_node(node.node_id, output["name"])
        # 3. Optional parameters with no upstream producer stay unbound —
        #    the agent's own logic supplies them (e.g. fetching JOBS itself).
        if not required:
            return None
        # 4. The user stream: direct for text, via extraction otherwise.
        if type_name == "text":
            return Binding.from_stream(user_stream)
        return Binding.from_stream(user_stream, transform=f"extract:{name.lower()}")

    # ------------------------------------------------------------------
    # Incremental / interactive / adaptive modes
    # ------------------------------------------------------------------
    def iter_steps(self, utterance: str, user_stream: str) -> Iterator[TaskNode]:
        """Incremental planning: yield plan nodes one at a time."""
        yield from self.plan(utterance, user_stream).order()

    def propose(self, utterance: str, user_stream: str) -> tuple[TaskPlan, str]:
        """Interactive planning: plan plus a human-readable rendering."""
        plan = self.plan(utterance, user_stream)
        return plan, plan.render()

    def revise(
        self,
        plan: TaskPlan,
        remove: tuple[str, ...] = (),
        replace: Mapping[str, str] | None = None,
    ) -> TaskPlan:
        """Apply user feedback: drop nodes and/or swap agents.

        Downstream bindings onto a removed node fall back to the removed
        node's own primary source, keeping the plan connected.
        """
        replace = dict(replace or {})
        revised = TaskPlan(self._ids.next("plan"), goal=plan.goal)
        fallbacks: dict[str, Binding] = {}
        for node in plan.order():
            if node.node_id in remove:
                primary = next(iter(node.bindings.values()), None)
                if primary is not None:
                    fallbacks[node.node_id] = primary
                continue
            bindings: dict[str, Binding] = {}
            for param, binding in node.bindings.items():
                if binding.node in fallbacks:
                    bindings[param] = fallbacks[binding.node]
                else:
                    bindings[param] = binding
            revised.add(
                TaskNode(
                    node_id=node.node_id,
                    agent=replace.get(node.node_id, node.agent),
                    bindings=bindings,
                    description=node.description,
                )
            )
        revised.validate(agent_names=set(self.registry.names()))
        return revised

    def record_feedback(self, plan: TaskPlan, success: bool) -> None:
        """Adaptive planning: feed execution outcomes back into retrieval."""
        for node in plan.nodes():
            self.registry.record_usage(node.agent, success=success)


class TaskPlannerAgent(Agent):
    """The task planner wrapped as an agent (Section V-F).

    Listens to user text (tag ``USER``) and emits the planned DAG payload
    into its ``PLAN`` output stream, tagged ``PLAN`` for the coordinator.

    With ``interactive=True`` the planner is collaborative: it first emits
    a *proposal* (tagged ``PLAN_PROPOSAL``, with a rendering for the UI)
    and waits for a ``PLAN_APPROVAL`` message —
    ``{"plan_id": ..., "approve": true}`` releases the plan for execution;
    ``{"plan_id": ..., "approve": false, "remove": [...], "replace": {...}}``
    revises it and re-proposes.
    """

    name = "TASK_PLANNER"
    description = "Interprets user requests and devises task plans over registered agents"
    inputs = (
        Parameter("TEXT", "text", "the user utterance", required=False),
        Parameter("APPROVAL", "json", "a plan approval/revision decision", required=False),
    )
    outputs = (
        Parameter("PLAN", "plan", "a task plan DAG payload"),
        Parameter("PROPOSAL", "json", "a plan proposal awaiting approval", required=False),
    )
    listen_tags = ("USER", "PLAN_APPROVAL")
    tag_to_place = {"USER": "TEXT", "PLAN_APPROVAL": "APPROVAL"}
    gate_mode = "any"

    def __init__(
        self,
        planner: TaskPlanner,
        user_stream: str | None = None,
        interactive: bool = False,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self._planner = planner
        self._user_stream = user_stream
        self._interactive = interactive
        self._pending: dict[str, TaskPlan] = {}

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any] | None:
        text = inputs.get("TEXT")
        approval = inputs.get("APPROVAL")
        if text is not None:
            return self._handle_text(str(text))
        if approval is not None:
            return self._handle_approval(approval)
        return None

    def _handle_text(self, text: str) -> dict[str, Any]:
        context = self._require_context()
        user_stream = self._user_stream or context.session.stream_id("user")
        plan = self._planner.plan(text, user_stream, budget=context.budget)
        if self._interactive:
            self._pending[plan.plan_id] = plan
            return {
                "PROPOSAL": {
                    "plan_id": plan.plan_id,
                    "goal": plan.goal,
                    "rendering": plan.render(),
                    "agents": [node.agent for node in plan.order()],
                }
            }
        return {"PLAN": plan.to_payload()}

    def _handle_approval(self, approval: dict[str, Any]) -> dict[str, Any] | None:
        plan_id = approval.get("plan_id")
        plan = self._pending.pop(plan_id, None)
        if plan is None:
            raise PlanningError(f"no pending plan proposal with id {plan_id!r}")
        if approval.get("approve", False):
            return {"PLAN": plan.to_payload()}
        revised = self._planner.revise(
            plan,
            remove=tuple(approval.get("remove", ())),
            replace=approval.get("replace"),
        )
        self._pending[revised.plan_id] = revised
        return {
            "PROPOSAL": {
                "plan_id": revised.plan_id,
                "goal": revised.goal,
                "rendering": revised.render(),
                "agents": [node.agent for node in revised.order()],
            }
        }

    def pending_proposals(self) -> list[str]:
        return sorted(self._pending)

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("PLAN",) if param == "PLAN" else ("PLAN_PROPOSAL",)
