"""Planners: task planner (Fig. 6) and data planner (Fig. 7) + executor."""

from .data_executor import DataPlanExecutor, ExecutionResult
from .data_planner import DataPlanner
from .task_planner import StepSpec, TaskPlanner, TaskPlannerAgent, TaskTemplate

__all__ = [
    "DataPlanExecutor",
    "ExecutionResult",
    "DataPlanner",
    "StepSpec",
    "TaskPlanner",
    "TaskPlannerAgent",
    "TaskTemplate",
]
