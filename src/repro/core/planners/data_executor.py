"""Execution engine for data plans.

Runs a :class:`~repro.core.plan.data_plan.DataPlan` operator by operator in
topological order, dispatching each to its handler.  LLM-backed operators
call the chosen model through the catalog (metering real token usage);
storage-backed operators charge the cost model's micro-costs.  All charges
land on the budget, which is how the coordinator observes data-plan spend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import PlanError, QueryError
from ...llm import ModelCatalog, prompts
from ...storage import Collection, Database, GraphStore, KeyValueStore
from ..budget import Budget
from ..optimizer.cost_model import CostModel
from ..plan.data_plan import DataOperator, DataPlan, Op
from ..registries import DataRegistry
from ..scheduler import VirtualTimeline


@dataclass
class ExecutionResult:
    """Outcome of executing a data plan."""

    plan_id: str
    outputs: dict[str, Any] = field(default_factory=dict)  # op_id -> value
    cost: float = 0.0
    latency: float = 0.0
    quality: float = 1.0

    def final(self) -> Any:
        """Value of the last leaf operator (the plan's answer)."""
        if not self.outputs:
            return None
        return self.outputs[self._final_key]

    @property
    def _final_key(self) -> str:
        return next(reversed(self.outputs))


class DataPlanExecutor:
    """Executes data plans against registered sources and models."""

    def __init__(
        self,
        registry: DataRegistry,
        catalog: ModelCatalog,
        budget: Budget | None = None,
    ) -> None:
        self._registry = registry
        self._catalog = catalog
        self._budget = budget
        self._local = threading.local()  # per-thread principal
        self._cost_model = CostModel(catalog)

    @property
    def _principal(self) -> str | None:
        return getattr(self._local, "principal", None)

    @_principal.setter
    def _principal(self, value: str | None) -> None:
        self._local.principal = value

    def execute(
        self,
        plan: DataPlan,
        budget: Budget | None = None,
        principal: str | None = None,
        parallel: bool = False,
    ) -> ExecutionResult:
        """Run *plan*; returns per-operator outputs plus aggregate metrics.

        *principal* names the requesting agent for data-governance checks:
        ACL-protected sources raise :class:`AccessDeniedError` for
        unauthorized principals.

        With *parallel*, independent operator branches execute on
        :class:`VirtualTimeline` branches and ``result.latency`` is the
        plan's **critical path** instead of the serial sum of operator
        latencies; per-operator outputs, costs, and quality are identical
        either way.
        """
        plan.validate()
        budget = budget or self._budget
        clock = budget.clock if budget is not None else self._catalog.clock
        self._principal = principal
        self._local.no_cache = plan.no_cache
        result = ExecutionResult(plan_id=plan.plan_id)
        timeline = (
            VirtualTimeline(clock) if parallel and clock is not None else None
        )
        ends: dict[str, float] = {}
        try:
            for operator in plan.order():
                inputs = [result.outputs[op_id] for op_id in operator.inputs]
                if timeline is not None:
                    ready = max(
                        (ends[op_id] for op_id in operator.inputs if op_id in ends),
                        default=timeline.origin,
                    )
                    timeline.open(ready)
                clock_before = clock.now() if clock is not None else 0.0
                value, cost, latency, quality = self._run(operator, inputs)
                result.outputs[operator.op_id] = value
                result.cost += cost
                result.latency += latency
                result.quality *= quality
                if budget is not None:
                    # LLM clients sharing the budget's clock already advanced
                    # it during the call; charge only the latency shortfall so
                    # simulated time is never double-counted.
                    already_elapsed = budget.clock.now() - clock_before
                    budget.charge(
                        source=f"data-plan/{operator.op.value}",
                        cost=cost,
                        latency=max(0.0, latency - already_elapsed),
                        quality=quality,
                    )
                elif timeline is not None:
                    # No budget to advance the clock through: branch time
                    # must still cover the operator's modeled latency.
                    already_elapsed = clock.now() - clock_before
                    clock.advance(max(0.0, latency - already_elapsed))
                if timeline is not None:
                    ends[operator.op_id] = timeline.close()
        finally:
            self._local.no_cache = False
            if timeline is not None:
                timeline.commit()
        if timeline is not None:
            # Aggregate latency is the critical path, not the serial sum.
            result.latency = timeline.elapsed()
        # Re-key outputs so the final leaf is last even if insertion order
        # differed from leaf order (single-leaf plans are the common case).
        leaves = plan.leaves()
        if leaves:
            final_id = leaves[-1].op_id
            final_value = result.outputs.pop(final_id)
            result.outputs[final_id] = final_value
        return result

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _run(
        self, operator: DataOperator, inputs: list[Any]
    ) -> tuple[Any, float, float, float]:
        handler = {
            Op.DISCOVER: self._op_discover,
            Op.Q2NL: self._op_q2nl,
            Op.LLM_CALL: self._op_llm_call,
            Op.TAXONOMY: self._op_taxonomy,
            Op.NL2Q: self._op_nl2q,
            Op.SQL: self._op_sql,
            Op.DOC_FIND: self._op_doc_find,
            Op.GRAPH_QUERY: self._op_graph_query,
            Op.KV_GET: self._op_kv_get,
            Op.SELECT: self._op_select,
            Op.PROJECT: self._op_project,
            Op.JOIN: self._op_join,
            Op.UNION: self._op_union,
            Op.EXTRACT: self._op_extract,
            Op.SUMMARIZE: self._op_summarize,
            Op.VERIFY: self._op_verify,
            Op.VECTOR_SEARCH: self._op_vector_search,
            Op.RANK: self._op_rank,
            Op.LIMIT: self._op_limit,
        }.get(operator.op)
        if handler is None:
            raise PlanError(f"no handler for operator {operator.op}")
        return handler(operator, inputs)

    def _storage_metrics(self, operator: DataOperator, rows: int) -> tuple[float, float, float]:
        estimate = self._cost_model.estimate(operator, operator.choice(), rows_in=rows)
        return estimate.cost, estimate.latency, estimate.quality

    def _llm_call(
        self, operator: DataOperator, prompt: str
    ) -> tuple[Any, str, float, float, float]:
        choice = operator.choice()
        if choice.model is None:
            raise PlanError(f"operator {operator.op_id!r} needs a model choice")
        client = self._catalog.client(choice.model)
        response = client.complete(
            prompt, no_cache=getattr(self._local, "no_cache", False)
        )
        quality = client.spec.quality_for(response.domain)
        return response.structured, response.text, response.usage.cost, response.usage.latency, quality

    # ------------------------------------------------------------------
    # Operator handlers
    # ------------------------------------------------------------------
    def _op_discover(self, operator: DataOperator, inputs: list[Any]):
        concept = operator.params["concept"]
        hits = self._registry.discover(concept, k=operator.params.get("k", 3))
        names = [hit.entry.name for hit in hits]
        cost, latency, quality = self._storage_metrics(operator, len(self._registry))
        return names, cost, latency, quality

    def _op_q2nl(self, operator: DataOperator, inputs: list[Any]):
        fragment = operator.params.get("fragment") or (inputs[0] if inputs else "")
        choice = operator.choice()
        if choice.model is not None:
            structured, text, cost, latency, quality = self._llm_call(
                operator, prompts.q2nl(str(fragment))
            )
            return (structured or text), cost, latency, quality
        text = f"List the {str(fragment).strip()}."
        estimate = self._cost_model.estimate(operator, choice)
        return text, estimate.cost, estimate.latency, estimate.quality

    def _op_llm_call(self, operator: DataOperator, inputs: list[Any]):
        kind = operator.params.get("prompt_kind", "generate")
        arg = operator.params.get("arg")
        if arg is None and inputs:
            arg = inputs[0]
        if kind == "cities":
            prompt = prompts.list_cities(str(arg))
        elif kind == "titles":
            prompt = prompts.related_titles(str(arg))
        elif kind == "skills":
            prompt = prompts.list_skills(str(arg))
        else:
            prompt = prompts.generate(str(arg))
        structured, text, cost, latency, quality = self._llm_call(operator, prompt)
        value = structured if structured is not None else text
        return value, cost, latency, quality

    def _op_taxonomy(self, operator: DataOperator, inputs: list[Any]):
        concept = operator.params.get("concept") or (inputs[0] if inputs else "")
        choice = operator.choice()
        if choice.model is not None:
            structured, text, cost, latency, quality = self._llm_call(
                operator, prompts.related_titles(str(concept))
            )
            return (structured or [text]), cost, latency, quality
        graph = self._require_handle(operator, GraphStore)
        names = _expand_taxonomy(graph, str(concept))
        cost, latency, quality = self._storage_metrics(operator, graph.node_count())
        return names, cost, latency, quality

    def _op_nl2q(self, operator: DataOperator, inputs: list[Any]):
        """Synthesize parameterized SQL from bindings + upstream value lists."""
        table = operator.params["table"]
        columns = operator.params.get("column_bindings", {})  # op_id -> column
        base_filters = operator.params.get("base_filters", {})
        conditions: list[str] = []
        parameters: dict[str, Any] = {}
        counter = 0
        for op_id, column in columns.items():
            position = list(operator.inputs).index(op_id)
            values = inputs[position]
            if not isinstance(values, (list, tuple)):
                values = [values]
            placeholders = []
            for value in values:
                name = f"p{counter}"
                counter += 1
                parameters[name] = value
                placeholders.append(f":{name}")
            if placeholders:
                conditions.append(f"{column} IN ({', '.join(placeholders)})")
        for column, value in base_filters.items():
            name = f"p{counter}"
            counter += 1
            parameters[name] = value
            if isinstance(value, str) and "%" in value:
                conditions.append(f"{column} LIKE :{name}")
            else:
                conditions.append(f"{column} = :{name}")
        sql = f"SELECT * FROM {table}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        query = {"sql": sql, "parameters": parameters}
        estimate = self._cost_model.estimate(operator, operator.choice())
        return query, estimate.cost, estimate.latency, estimate.quality

    def _op_sql(self, operator: DataOperator, inputs: list[Any]):
        database = self._require_handle(operator, Database)
        if inputs and isinstance(inputs[0], Mapping) and "sql" in inputs[0]:
            sql = inputs[0]["sql"]
            parameters = dict(inputs[0].get("parameters", {}))
        else:
            sql = operator.params["sql"]
            parameters = dict(operator.params.get("parameters", {}))
        result = database.execute(sql, parameters)
        cost, latency, quality = self._storage_metrics(operator, max(len(result.rows), 1))
        return result.rows, cost, latency, quality

    def _op_doc_find(self, operator: DataOperator, inputs: list[Any]):
        collection = self._require_handle(operator, Collection)
        kwargs: dict[str, Any] = {
            "fields": operator.params.get("fields"),
            "sort": operator.params.get("sort"),
            "descending": operator.params.get("descending", False),
            "limit": operator.params.get("limit"),
        }
        # The planner's shard-pruning annotation only means something to a
        # clustered collection; a plain one fans out over nothing.
        shards = operator.params.get("shards")
        if shards is not None and hasattr(collection, "shards_for_filter"):
            kwargs["shards"] = shards
        documents = collection.find(operator.params.get("filter", {}), **kwargs)
        cost, latency, quality = self._storage_metrics(operator, len(documents))
        return documents, cost, latency, quality

    def _op_graph_query(self, operator: DataOperator, inputs: list[Any]):
        graph = self._require_handle(operator, GraphStore)
        start = operator.params["start"]
        nodes = graph.traverse(
            start,
            edge_label=operator.params.get("edge_label"),
            direction=operator.params.get("direction", "out"),
            max_depth=operator.params.get("max_depth"),
        )
        value = [dict(node.properties, _id=node.node_id, _label=node.label) for node in nodes]
        cost, latency, quality = self._storage_metrics(operator, len(value))
        return value, cost, latency, quality

    def _op_kv_get(self, operator: DataOperator, inputs: list[Any]):
        store = self._require_handle(operator, KeyValueStore)
        value = store.get(operator.params["namespace"], operator.params["key"])
        cost, latency, quality = self._storage_metrics(operator, 1)
        return value, cost, latency, quality

    def _op_select(self, operator: DataOperator, inputs: list[Any]):
        rows = _rows_input(operator, inputs)
        column = operator.params["column"]
        op_name = operator.params.get("op", "eq")
        target = operator.params.get("value")
        comparators = {
            "eq": lambda v: v == target,
            "ne": lambda v: v != target,
            "gt": lambda v: v is not None and v > target,
            "gte": lambda v: v is not None and v >= target,
            "lt": lambda v: v is not None and v < target,
            "lte": lambda v: v is not None and v <= target,
            "in": lambda v: v in (target or ()),
            "contains": lambda v: isinstance(v, str) and str(target).lower() in v.lower(),
        }
        if op_name not in comparators:
            raise QueryError(f"unknown select op: {op_name!r}")
        kept = [row for row in rows if comparators[op_name](row.get(column))]
        cost, latency, quality = self._storage_metrics(operator, len(rows))
        return kept, cost, latency, quality

    def _op_project(self, operator: DataOperator, inputs: list[Any]):
        rows = _rows_input(operator, inputs)
        columns = operator.params["columns"]
        projected = [{c: row.get(c) for c in columns} for row in rows]
        cost, latency, quality = self._storage_metrics(operator, len(rows))
        return projected, cost, latency, quality

    def _op_join(self, operator: DataOperator, inputs: list[Any]):
        if len(inputs) != 2:
            raise PlanError(f"JOIN operator {operator.op_id!r} needs two inputs")
        left, right = inputs
        left_on = operator.params["left_on"]
        right_on = operator.params["right_on"]
        buckets: dict[Any, list[dict]] = {}
        for row in right:
            buckets.setdefault(row.get(right_on), []).append(row)
        joined = []
        for row in left:
            for match in buckets.get(row.get(left_on), ()):
                merged = dict(match)
                merged.update(row)
                joined.append(merged)
        cost, latency, quality = self._storage_metrics(operator, len(left) + len(right))
        return joined, cost, latency, quality

    def _op_union(self, operator: DataOperator, inputs: list[Any]):
        merged: list[Any] = []
        for value in inputs:
            merged.extend(value if isinstance(value, list) else [value])
        cost, latency, quality = self._storage_metrics(operator, len(merged))
        return merged, cost, latency, quality

    def _op_extract(self, operator: DataOperator, inputs: list[Any]):
        text = operator.params.get("text") or (inputs[0] if inputs else "")
        fields = operator.params.get("fields", ())
        structured, rendered, cost, latency, quality = self._llm_call(
            operator, prompts.extract(str(text), fields)
        )
        return (structured if structured is not None else rendered), cost, latency, quality

    def _op_summarize(self, operator: DataOperator, inputs: list[Any]):
        source = inputs[0] if inputs else operator.params.get("text", "")
        if isinstance(source, list):
            prompt = prompts.describe_rows(source, intro=operator.params.get("intro", "Results"))
        else:
            prompt = prompts.summarize(str(source))
        structured, rendered, cost, latency, quality = self._llm_call(operator, prompt)
        return (structured if structured is not None else rendered), cost, latency, quality

    def _op_verify(self, operator: DataOperator, inputs: list[Any]):
        """Keep only answer items confirmed by a trusted enterprise source.

        The paper's automatic-fact-verifier module (Section III-A) as a
        data-plan operator: an LLM's list answer is checked against the
        distinct values of a relational column (or a graph's node names),
        filtering hallucinations before they reach downstream operators.
        """
        if not inputs:
            raise PlanError(f"operator {operator.op_id!r} needs a list input")
        answer = inputs[0] if isinstance(inputs[0], list) else [inputs[0]]
        choice = operator.choice()
        if choice.source is None:
            raise PlanError(f"operator {operator.op_id!r} needs a source choice")
        handle = self._registry.handle(choice.source, principal=self._principal)
        if isinstance(handle, Database):
            table = operator.params["table"]
            column = operator.params["column"]
            result = handle.execute(f"SELECT DISTINCT {column} FROM {table}")
            trusted = {str(row[column]).lower() for row in result.rows if row[column] is not None}
        elif isinstance(handle, GraphStore):
            trusted = {
                str(node.get("name", "")).lower() for node in handle.nodes()
            }
        else:
            raise PlanError(
                f"operator {operator.op_id!r} cannot verify against "
                f"{type(handle).__name__}"
            )
        verified = [item for item in answer if str(item).lower() in trusted]
        cost, latency, quality = self._storage_metrics(operator, len(answer) + len(trusted))
        return verified, cost, latency, quality

    def _op_vector_search(self, operator: DataOperator, inputs: list[Any]):
        """Embedding retrieval over a collection registered with a vector
        index (the RAG retriever)."""
        choice = operator.choice()
        if choice.source is None:
            raise PlanError(f"operator {operator.op_id!r} needs a source choice")
        collection = self._require_handle(operator, Collection)
        index, field = self._registry.vector_index(choice.source)
        query = operator.params.get("query") or (inputs[0] if inputs else "")
        k = operator.params.get("k", 5)
        hits = index.search(self._registry.embed_query(str(query)), k=k)
        documents = []
        for doc_id, score in hits:
            document = collection.get(doc_id)
            document["_score"] = round(float(score), 4)
            documents.append(document)
        cost, latency, quality = self._storage_metrics(operator, len(index))
        return documents, cost, latency, quality

    def _op_rank(self, operator: DataOperator, inputs: list[Any]):
        rows = _rows_input(operator, inputs)
        by = operator.params["by"]
        descending = operator.params.get("descending", True)
        ranked = sorted(
            rows,
            key=lambda row: (row.get(by) is None, row.get(by)),
            reverse=descending,
        )
        cost, latency, quality = self._storage_metrics(operator, len(rows))
        return ranked, cost, latency, quality

    def _op_limit(self, operator: DataOperator, inputs: list[Any]):
        rows = _rows_input(operator, inputs)
        n = operator.params["n"]
        cost, latency, quality = self._storage_metrics(operator, len(rows))
        return rows[:n], cost, latency, quality

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_handle(self, operator: DataOperator, expected: type) -> Any:
        choice = operator.choice()
        if choice.source is None:
            raise PlanError(f"operator {operator.op_id!r} needs a source choice")
        handle = self._registry.handle(choice.source, principal=self._principal)
        if not isinstance(handle, expected):
            raise PlanError(
                f"operator {operator.op_id!r} expected a {expected.__name__} "
                f"source, got {type(handle).__name__}"
            )
        return handle


def _rows_input(operator: DataOperator, inputs: list[Any]) -> list[dict]:
    if not inputs:
        raise PlanError(f"operator {operator.op_id!r} needs a row-set input")
    rows = inputs[0]
    if not isinstance(rows, list):
        raise PlanError(f"operator {operator.op_id!r} input is not a row set")
    return rows


def _expand_taxonomy(graph: GraphStore, concept: str) -> list[str]:
    """Titles related to *concept* in a title-taxonomy graph.

    Matches a node whose ``name`` equals the concept (case-insensitive),
    then collects the node itself, its ``related`` neighborhood (both
    directions), and its ``specializes`` subtree.
    """
    lowered = concept.strip().lower()
    matches = graph.find_nodes(predicate=lambda n: str(n.get("name", "")).lower() == lowered)
    if not matches:
        matches = graph.find_nodes(
            predicate=lambda n: lowered in str(n.get("name", "")).lower()
        )
    names: list[str] = []
    for node in matches:
        for found in [node, *graph.neighbors(node.node_id, "related", direction="both"),
                      *graph.traverse(node.node_id, "specializes", direction="in")]:
            name = found.get("name")
            if name and name not in names:
                names.append(name)
    return names
