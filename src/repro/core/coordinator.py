"""The task coordinator (Section V-H).

"The task planner is concerned with interpreting tasks, while the task
coordinator handles execution."  The coordinator:

* listens to any stream carrying a plan (tag ``PLAN``), unrolls the DAG,
* drives each node by emitting ``EXECUTE_AGENT`` control messages,
* resolves parameter bindings — constants, stream reads, upstream node
  outputs — invoking the **data planner** for transformations
  (``PROFILER.CRITERIA <- USER.TEXT`` becomes an extract data plan),
* monitors the **budget** after every step, aborting the plan (and
  optionally requesting a replan) when QoS thresholds are exceeded,
* publishes the final result to its ``RESULT`` stream.

Execution is resilient (Section VII's "error handling and retry"):
failures are classified transient/fatal and retried under a
:class:`~repro.core.resilience.RetryPolicy` with backoff charged to the
budget; a :class:`~repro.core.resilience.BreakerBoard` short-circuits
nodes that target a known-failing agent; nodes may carry deadlines and
fallback agents/model tiers; work that still fails is quarantined on the
session's dead-letter stream, replayable after recovery.

Because the stream store delivers messages depth-first, the agent executes
synchronously inside the coordinator's control publish, so outputs are
visible immediately afterwards.  (Consequently, agents the coordinator
drives should run inline — ``workers=0``, the default; worker-pool agents
are for decentralized tag-triggered fan-out, where no one waits on them.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, TYPE_CHECKING

from ..errors import CoordinationError
from ..streams import Instruction
from .agent import Agent
from .budget import Budget
from .engine import SERIAL, ExecutionBackend
from .params import Parameter
from .plan.task_plan import TaskNode, TaskPlan
from .planners.data_planner import DataPlanner
from .qos import QoSSpec
from .recovery import WriteAheadJournal, idempotency_key
from .resilience import BreakerBoard, DeadLetterQueue, RetryPolicy
from .scheduler import VirtualTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recovery import RecoveredPlan


@dataclass
class NodeFailure:
    """Why one execution attempt of a plan node did not succeed."""

    error: str
    error_type: str = ""
    transient: bool = False
    attempts: int = 1

    def describe(self) -> str:
        kind = "transient" if self.transient else "fatal"
        return f"{self.error} [{self.error_type or 'unknown'}, {kind}, attempts={self.attempts}]"


@dataclass
class PlanRun:
    """Execution record of one plan."""

    plan_id: str
    goal: str
    status: str = "running"  # running | completed | aborted | failed
    node_outputs: dict[str, dict[str, Any]] = field(default_factory=dict)
    executed: list[str] = field(default_factory=list)
    abort_reason: str | None = None
    #: Failure record per node that (finally or initially) failed.
    node_errors: dict[str, NodeFailure] = field(default_factory=dict)
    #: Partial outputs an agent emitted before reporting an error; kept for
    #: diagnosis but never treated as node success.
    partial_outputs: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: node id -> fallback agent that rescued it.
    fallbacks: dict[str, str] = field(default_factory=dict)
    #: message ids of dead-letter entries quarantined by this run.
    dead_letters: list[str] = field(default_factory=list)
    #: Whether this run resumed from a journal snapshot after a crash.
    resumed: bool = False
    #: node ids whose results were replayed from journaled effects
    #: instead of re-executing (exactly-once under at-least-once).
    replayed_effects: list[str] = field(default_factory=list)

    def outputs_of(self, node_id: str) -> dict[str, Any]:
        return self.node_outputs.get(node_id, {})

    def final_outputs(self) -> dict[str, Any]:
        """Outputs of the last executed node (the plan's answer)."""
        if not self.executed:
            return {}
        return self.node_outputs.get(self.executed[-1], {})

    def degraded(self) -> bool:
        """Whether any node completed through a fallback route."""
        return bool(self.fallbacks)


class PlanExecution:
    """One plan's wave-stepped execution state machine.

    Wraps the coordinator's wave loop as an explicit stepper: each
    :meth:`step` drives one dependency wave to completion.  The plain
    ``execute_plan`` path steps it in a tight loop — messages, journal
    writes, and charges are identical to the pre-stepper loop — while the
    fleet runtime round-robins ``step()`` across many admitted plans over
    one *shared* :class:`VirtualTimeline`, which turns N plans' total
    simulated makespan from the sum of their critical paths into their
    max plus contention.

    Ownership is split so both paths stay correct:

    * ``owns_timeline`` — the plain path creates a fresh timeline per
      plan and commits it when done; fleet executions borrow the shared
      one and must NOT commit it (the fleet does, once, at the end).
    * ``owns_span`` — the plain path's span is managed by
      ``execute_plan``'s ``with`` block; fleet executions carry their
      own admission-opened span, suspended between steps and finalized
      (status attributes, end stamp at the plan's own critical path)
      when the plan concludes.
    """

    def __init__(
        self,
        coordinator: "TaskCoordinator",
        plan: TaskPlan,
        run: PlanRun,
        budget: Budget | None,
        attempt: int,
        *,
        parallel: bool,
        timeline: VirtualTimeline | None,
        owns_timeline: bool = True,
        span: Any = None,
        owns_span: bool = False,
        start_at: float | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.coordinator = coordinator
        self.plan = plan
        self.run = run
        self.budget = budget
        self.attempt = attempt
        self.timeline = timeline
        self.owns_timeline = owns_timeline
        self.backend: ExecutionBackend = backend if backend is not None else SERIAL
        self.span = span
        self._owns_span = owns_span
        self._parallel = parallel
        if parallel:
            self._schedule: list[list[TaskNode]] = plan.waves()
        else:
            self._schedule = [[node] for node in plan.order()]
        context = coordinator._require_context()
        obs = context.observability
        self._tracer = obs.tracer if obs is not None else None
        if start_at is not None:
            self.start_at = float(start_at)
        elif timeline is not None:
            self.start_at = timeline.origin
        else:
            self.start_at = context.clock.now()
        self._ends: dict[str, float] = {}
        self._wave_index = 0
        self.finished = False
        self.result: PlanRun | None = None

    @property
    def plan_end(self) -> float:
        """This plan's own critical path end (its branch ends' max)."""
        if not self._ends:
            return self.start_at
        return max(self._ends.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def admit(self) -> bool:
        """Validate participants and journal the admission record.

        Returns False when the plan cannot run (an absent agent); the
        run is then already marked failed and, for span-owning (fleet)
        executions, concluded.
        """
        coordinator = self.coordinator
        context = coordinator._require_context()
        journal = coordinator._journal
        run = self.run
        # A control message addressed to an absent agent would dissolve
        # silently; require every planned agent to be in the session.
        participants = set(context.session.participants())
        absent = sorted({n.agent for n in self.plan.nodes()} - participants)
        if absent:
            run.status = "failed"
            run.abort_reason = f"agents not present in session: {absent}"
            if journal is not None and run.resumed:
                journal.plan_finished(run.plan_id, "failed", reason=run.abort_reason)
            self._conclude(run)
            return False
        if journal is not None and not run.resumed:
            journal.plan_started(
                self.plan,
                qos=self.budget.qos if self.budget is not None else None,
                attempt=self.attempt,
            )
        return True

    def step(self) -> bool:
        """Execute the next wave; returns True while more work remains.

        A span-owning execution re-enters its suspended plan span for the
        duration of the step, so node/agent/llm spans opened inside
        parent correctly even when steps of many plans interleave.
        """
        if self.finished:
            return False
        if self._owns_span and self.span is not None and self._tracer is not None:
            with self._tracer.use(self.span):
                self._step_wave()
        else:
            self._step_wave()
        return not self.finished

    def close(self) -> None:
        """Commit an owned timeline (idempotent; safe after a crash)."""
        if self.owns_timeline and self.timeline is not None:
            self.timeline.commit()

    def abandon(self, error: str) -> None:
        """Record a crash that cut this execution short (chaos kill).

        Closes a span-owning execution's span with the error at the
        current clock — the same stamp the plain path's ``with`` block
        leaves when the exception unwinds through it.  No status tally:
        a crashed run never concluded.
        """
        if self.finished:
            return
        self.finished = True
        self.result = self.run
        if self._owns_span and self.span is not None:
            self.span.set_error(error)
            self.span.__exit__(None, None, None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def ready_time(self, node: TaskNode) -> float:
        """A node's branch start: the max of its predecessors' ends."""
        return max(
            (self._ends[p] for p in node.upstream_nodes() if p in self._ends),
            default=self.start_at,
        )

    def drive(self, node: TaskNode, wave_index: int, wave_len: int) -> str:
        """Drive one node (backend entry point); returns its verdict."""
        return self.coordinator._drive_node(
            node,
            self.plan,
            self.run,
            self.budget,
            self.attempt,
            wave=wave_index if self._parallel else None,
            concurrency=wave_len,
        )

    def _step_wave(self) -> None:
        coordinator = self.coordinator
        context = coordinator._require_context()
        timeline = self.timeline
        if self._wave_index >= len(self._schedule):
            self._complete()
            return
        wave = self._schedule[self._wave_index]
        wave_index = self._wave_index
        self._wave_index += 1
        # The plan-level cache bypass is coordinator state read by
        # _attempt_node; swap it per step so interleaved plans with
        # different no_cache settings never leak into each other.  (Each
        # fleet submission has its own coordinator, and a coordinator
        # steps at most one wave at a time, so this stays race-free even
        # on the thread backend.)
        previous_no_cache = coordinator._plan_no_cache
        coordinator._plan_no_cache = bool(self.plan.no_cache)
        try:
            if timeline is not None:
                coordinator._wave_tally += 1
            # The backend owns HOW the wave's nodes execute (in order on
            # this thread, or fanned across a pool); verdict semantics
            # are shared: first non-ok verdict wins the wave.
            verdict = self.backend.run_wave(self, wave, wave_index)
            if verdict == "replan":
                if timeline is not None and self.owns_timeline:
                    # Land the clock on this run's critical path
                    # before the escalated re-execution starts its
                    # own timeline.  (A fleet execution's shared
                    # timeline is committed by the fleet instead;
                    # the escalated run executes inline within this
                    # step, non-interleaved.)
                    timeline.commit()
                self._conclude(
                    coordinator._replan(self.plan, self.budget, self.attempt)
                )
                return
            if verdict == "stop":
                self._conclude(self.run)
                return
            if self._wave_index >= len(self._schedule):
                self._complete()
        finally:
            coordinator._plan_no_cache = previous_no_cache

    def _complete(self) -> None:
        run = self.run
        run.status = "completed"
        journal = self.coordinator._journal
        if journal is not None:
            journal.plan_finished(run.plan_id, "completed")
        self._conclude(run)

    def _conclude(self, result: PlanRun) -> None:
        self.finished = True
        self.result = result
        if self._owns_span and self.span is not None:
            self._finalize_span()

    def _finalize_span(self) -> None:
        run = self.run
        coordinator = self.coordinator
        context = coordinator._require_context()
        # Stamp the span end at this plan's own critical path — the same
        # instant the plain path's timeline.commit lands the clock on.
        # On a concurrent backend this runs on a worker thread, so the
        # stamp goes through a clock branch instead of rebasing the
        # shared clock out from under sibling plans.
        branched = self.backend.concurrent and not context.clock.branch_active()
        if branched:
            context.clock.branch_begin(self.plan_end)
        else:
            context.clock.rebase(self.plan_end)
        try:
            span = self.span
            span.set_attribute("status", run.status)
            span.set_attribute("nodes_executed", len(run.executed))
            if run.status != "completed":
                span.set_error(run.abort_reason or run.status)
            span.__exit__(None, None, None)
        finally:
            if branched:
                context.clock.branch_end()
        tally = coordinator._plan_status_tally
        tally[run.status] = tally.get(run.status, 0) + 1


class TaskCoordinator(Agent):
    """Executes task plans by streaming instructions to agents."""

    name = "TASK_COORDINATOR"
    description = (
        "Coordinates and monitors execution of agentic workflow plans, "
        "tracking the budget and aborting on QoS violations"
    )
    inputs = (Parameter("PLAN", "plan", "a task plan DAG payload"),)
    outputs = (Parameter("RESULT", "json", "final plan outputs"),)
    listen_tags = ("PLAN",)
    gate_mode = "any"

    def __init__(
        self,
        data_planner: DataPlanner | None = None,
        replan_on_violation: bool = False,
        replan_budget_factor: float = 2.0,
        max_replans: int = 1,
        max_node_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        breakers: BreakerBoard | None = None,
        dead_letters: bool = True,
        journal: WriteAheadJournal | None = None,
        parallel: bool = False,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self._data_planner = data_planner
        self._journal = journal
        #: Wave-based parallel scheduling: independent DAG branches pay
        #: the max of their simulated latencies (the critical path)
        #: instead of the sum.  Overridable per call on execute_plan.
        self._parallel = parallel
        #: Plan-level LLM-cache bypass, threaded into EXECUTE_AGENT while
        #: a ``no_cache`` plan is driving.
        self._plan_no_cache = False
        self._replan_on_violation = replan_on_violation
        self._replan_budget_factor = replan_budget_factor
        self._max_replans = max_replans
        self._max_node_retries = max_node_retries
        #: Explicit policy wins; otherwise ``max_node_retries`` keeps its
        #: legacy immediate-retry-anything semantics.
        self._retry_policy = retry_policy
        self._breakers = breakers
        self._dead_letters_enabled = dead_letters
        self._dead_letter_queue: DeadLetterQueue | None = None
        self.runs: list[PlanRun] = []
        # Per-event counters are kept as plain tallies and pulled into
        # metrics snapshots by a collector (the same pattern Budget and
        # StreamStore use): plan/node completion is the coordinator's
        # per-iteration hot path.  The histogram keeps per-event pushes —
        # percentiles need the individual observations.
        self._metrics = None
        self._h_node_attempts = None
        self._plan_status_tally: dict[str, int] = {}
        self._short_circuit_tally: dict[str, int] = {}
        self._rescue_tally: dict[str, int] = {}
        # Unlabeled per-wave/per-node counters, bumped as plain ints on
        # the wave-step hot path (each fleet submission has its own
        # coordinator and a coordinator steps one wave at a time, so the
        # unlocked increments are race-free even on the thread backend).
        self._wave_tally = 0
        self._parallel_node_tally = 0
        self._replayed_effects_tally = 0
        self._registered_metrics = None

    def on_attach(self) -> None:
        metrics = self.context.metrics if self.context is not None else None
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self._h_node_attempts = (
            self._metrics.histogram("node.attempts") if self._metrics else None
        )
        if self._metrics is not None and self._registered_metrics is not self._metrics:
            self._metrics.register_collector(self._collect_metrics)
            self._registered_metrics = self._metrics

    def _collect_metrics(self, sink: Any) -> None:
        """Report execution tallies into a metrics snapshot being built."""
        for status, count in self._plan_status_tally.items():
            sink.inc("plan.runs", float(count), status=status)
        for agent, count in self._short_circuit_tally.items():
            sink.inc("breaker.short_circuits", float(count), agent=agent)
        for agent, count in self._rescue_tally.items():
            sink.inc("node.fallback_rescues", float(count), agent=agent)
        # Never-incremented tallies stay out of the snapshot (serial
        # runs emit no scheduler counters — tests pin that).
        if self._wave_tally:
            sink.inc("scheduler.waves", float(self._wave_tally))
        if self._parallel_node_tally:
            sink.inc("scheduler.parallel_nodes", float(self._parallel_node_tally))
        if self._replayed_effects_tally:
            sink.inc("recovery.replayed_effects", float(self._replayed_effects_tally))

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def processor(self, inputs: dict[str, Any]) -> dict[str, Any] | None:
        payload = inputs["PLAN"]
        plan = TaskPlan.from_payload(payload) if isinstance(payload, dict) else payload
        run = self.execute_plan(plan)
        if run.status != "completed":
            return None
        return {"RESULT": run.final_outputs()}

    # ------------------------------------------------------------------
    # Resilience wiring
    # ------------------------------------------------------------------
    @property
    def retry_policy(self) -> RetryPolicy:
        """The effective per-node retry policy."""
        if self._retry_policy is not None:
            return self._retry_policy
        return RetryPolicy.immediate(self._max_node_retries)

    @property
    def breakers(self) -> BreakerBoard | None:
        return self._breakers

    @property
    def journal(self) -> WriteAheadJournal | None:
        """The write-ahead journal, when crash recovery is enabled."""
        return self._journal

    def dead_letter_queue(self) -> DeadLetterQueue:
        """The session's quarantine stream (created on first use so
        sessions that never fail keep their traces unchanged)."""
        if self._dead_letter_queue is None:
            context = self._require_context()
            self._dead_letter_queue = DeadLetterQueue(
                context.store, context.session, metrics=context.metrics
            )
        return self._dead_letter_queue

    def replay_dead_letters(self) -> int:
        """Re-execute pending dead letters; returns how many recovered.

        Node-level entries are re-driven through the normal
        ``EXECUTE_AGENT`` path with their originally resolved inputs.
        Whole-plan entries — plans the fleet's admission queue expired
        before they ever ran (``QueueDeadlineExpired``) — carry their
        serialized plan and are re-executed end to end; the journal's
        idempotency machinery makes a second replay a no-op.  Successes
        are acknowledged on the stream and leave the pending set.
        """
        queue = self.dead_letter_queue()

        def executor(payload: dict[str, Any]) -> bool:
            inputs = payload.get("inputs", {})
            if (
                payload.get("error_type") == "QueueDeadlineExpired"
                and "plan" in inputs
            ):
                run = self.execute_plan(TaskPlan.from_payload(inputs["plan"]))
                return run.status == "completed"
            node = TaskNode(
                node_id=payload["node"],
                agent=payload["agent"],
                fallback_agent=payload.get("fallback_agent"),
            )
            outputs, failure = self._attempt_node(
                node, inputs, node.agent, None
            )
            return failure is None and outputs is not None

        return len(queue.replay(executor))

    # ------------------------------------------------------------------
    # Plan execution (also callable directly)
    # ------------------------------------------------------------------
    def execute_plan(
        self,
        plan: TaskPlan,
        budget: Budget | None = None,
        _attempt: int = 0,
        resume: "RecoveredPlan | None" = None,
        parallel: bool | None = None,
    ) -> PlanRun:
        """Unroll and drive *plan*; returns the execution record.

        On a budget violation the run aborts; with replanning enabled the
        coordinator re-executes once under an escalated budget (the
        paper's "prompt the user to confirm budget violations before
        proceeding", with the confirmation simulated as policy).

        With *resume* (a journal snapshot), completed nodes are restored
        instead of re-executed and the run picks up where the crashed
        coordinator stopped — see :meth:`resume_plan`.

        With *parallel* (default: the coordinator's ``parallel`` setting),
        the plan executes in dependency waves and simulated latency is
        accounted as the critical path instead of the serial sum.
        """
        context = self._require_context()
        budget = budget or context.budget
        if parallel is None:
            parallel = self._parallel
        plan.validate()
        run = PlanRun(plan_id=plan.plan_id, goal=plan.goal)
        if resume is not None:
            run.resumed = True
            run.node_outputs.update(resume.node_outputs)
            run.executed.extend(resume.executed)
            _attempt = resume.attempt
        self.runs.append(run)
        with context.span(
            f"plan:{plan.plan_id}", kind="plan", goal=plan.goal, attempt=_attempt
        ) as span:
            if run.resumed:
                span.set_attribute("resumed", True)
                span.set_attribute("restored_nodes", len(resume.executed))
            if parallel:
                span.set_attribute("scheduler", "parallel")
            # On a replan the returned run is the escalated re-execution's;
            # the span and metric describe *this* invocation's run.
            result = self._execute_plan_traced(plan, budget, run, _attempt, parallel)
            span.set_attribute("status", run.status)
            span.set_attribute("nodes_executed", len(run.executed))
            if run.status != "completed":
                span.set_error(run.abort_reason or run.status)
        tally = self._plan_status_tally
        tally[run.status] = tally.get(run.status, 0) + 1
        return result

    def resume_plan(
        self, snapshot: "RecoveredPlan", budget: Budget | None = None
    ) -> PlanRun:
        """Resume a crashed plan from its journal *snapshot*.

        Nodes with a journaled completion record are restored outright (no
        messages published, so the resumed stream trace continues the
        uninterrupted one's byte-for-byte); the in-doubt node — effect
        journaled but completion record lost to the crash — replays its
        journaled result; everything after re-executes normally.
        """
        if snapshot.plan is None:
            raise CoordinationError(
                f"cannot resume plan {snapshot.plan_id!r}: no journaled plan payload"
            )
        return self.execute_plan(snapshot.plan, budget=budget, resume=snapshot)

    def _execute_plan_traced(
        self,
        plan: TaskPlan,
        budget: Budget | None,
        run: PlanRun,
        _attempt: int,
        parallel: bool = False,
        backend: ExecutionBackend | None = None,
    ) -> PlanRun:
        """The plan-driving loop proper (wrapped in the plan span).

        With a journal attached, every node crosses two checkpoint
        barriers — ``boundary:`` before it is scheduled and ``midnode:``
        between its effect record and its completion record — the two
        points where the chaos harness may kill the coordinator.  All
        journal writes happen *before* the state they describe is acted
        on (write-ahead), so a crash at either barrier is recoverable
        with zero duplicate effects.

        Serial mode drives ``plan.order()`` one node at a time.  Parallel
        mode drives ``plan.waves()``: nodes in a wave are logically
        concurrent, each executing on a :class:`VirtualTimeline` branch
        that starts at the max of its predecessors' end times; the shared
        clock lands on the plan's critical path at commit.  Execution
        itself stays single-threaded (within a wave, nodes run in node-id
        order), so results, budget charges, and the journal *set* are
        identical to serial mode — only latency accounting differs.

        The loop itself lives in :class:`PlanExecution`; here it is
        stepped to completion in one go.  The fleet runtime steps the
        same machine interleaved with other plans (:meth:`begin_plan`).
        """
        context = self._require_context()
        timeline = VirtualTimeline(context.clock) if parallel else None
        execution = PlanExecution(
            self,
            plan,
            run,
            budget,
            _attempt,
            parallel=parallel,
            timeline=timeline,
            owns_timeline=True,
            backend=backend,
        )
        if not execution.admit():
            return run
        try:
            while execution.step():
                pass
        finally:
            execution.close()
        return execution.result if execution.result is not None else run

    def begin_plan(
        self,
        plan: TaskPlan,
        budget: Budget | None = None,
        timeline: VirtualTimeline | None = None,
        start_at: float | None = None,
        attempt: int = 0,
        backend: ExecutionBackend | None = None,
    ) -> PlanExecution:
        """Admit *plan* for stepped execution on a shared *timeline*.

        The fleet entrypoint: validates the plan, opens its plan span
        (suspended between steps), writes the journal admission record,
        and returns a :class:`PlanExecution` the fleet scheduler
        interleaves with other plans' via ``step()``.  The caller owns
        the shared timeline's commit; the execution owns its span.
        *start_at* is the plan's simulated admission time — branch ready
        times default to it, so a plan admitted from the backlog starts
        after the plan whose completion freed its slot.
        """
        if timeline is None:
            raise CoordinationError(
                "begin_plan requires a shared timeline; use execute_plan "
                "for standalone runs"
            )
        context = self._require_context()
        budget = budget or context.budget
        plan.validate()
        run = PlanRun(plan_id=plan.plan_id, goal=plan.goal)
        self.runs.append(run)
        span = context.span(
            f"plan:{plan.plan_id}",
            kind="plan",
            goal=plan.goal,
            attempt=attempt,
            scheduler="fleet",
        )
        span.__enter__()
        obs = context.observability
        tracer = obs.tracer if obs is not None else None
        if tracer is not None:
            tracer.suspend(span)
        execution = PlanExecution(
            self,
            plan,
            run,
            budget,
            attempt,
            parallel=True,
            timeline=timeline,
            owns_timeline=False,
            span=span,
            owns_span=True,
            start_at=start_at,
            backend=backend,
        )
        # On admission failure the execution is already concluded (run
        # failed, span finalized); the fleet collects it as finished.
        execution.admit()
        return execution

    def _drive_node(
        self,
        node: TaskNode,
        plan: TaskPlan,
        run: PlanRun,
        budget: Budget | None,
        _attempt: int,
        wave: int | None = None,
        concurrency: int = 1,
    ) -> str:
        """Drive one scheduled node through barriers, budget, and execution.

        Returns ``"ok"`` (node done, keep going), ``"stop"`` (run has
        terminally failed or aborted), or ``"replan"`` (budget violated
        and the policy allows an escalated re-execution).
        """
        context = self._require_context()
        journal = self._journal
        key = None
        if journal is not None:
            journal.barrier(f"boundary:{run.plan_id}/{node.node_id}")
            key = idempotency_key(
                run.plan_id, node.node_id, "execute", attempt=_attempt
            )
            effect = journal.effects.get(key)
            if effect is not None:
                # The in-doubt node: its effect landed but the crash ate
                # its completion record.  Replay the journaled result
                # instead of re-executing (exactly-once effects).
                if not self._replay_effect(node, run, effect, journal):
                    return "stop"
                return "ok"
        violation = budget.violation() if budget is not None else None
        if violation is not None:
            self._abort(run, plan, f"budget violated on {violation}")
            if journal is not None:
                journal.plan_finished(run.plan_id, "aborted", reason=run.abort_reason)
            if self._replan_on_violation and _attempt < self._max_replans:
                return "replan"
            return "stop"
        if journal is not None:
            journal.node_scheduled(run.plan_id, node.node_id, node.agent)
        # The ledger marker sits before binding resolution so the
        # effect record's charge slice covers the data planner too.
        # Under the thread backend, concurrent nodes append to the ledger
        # interleaved and a positional slice would capture other nodes'
        # charges; the backend wraps each node in a charge scope and the
        # effect record reads that scope's entries instead.
        scope = Budget.current_scope() if budget is not None else None
        marker = len(budget.charges()) if budget is not None else 0
        try:
            resolved = self._resolve_bindings(node, run)
        except CoordinationError as error:
            run.status = "failed"
            run.abort_reason = str(error)
            if journal is not None:
                journal.plan_finished(run.plan_id, "failed", reason=run.abort_reason)
            return "stop"
        if journal is not None:
            journal.node_started(run.plan_id, node.node_id, node.agent)
        outputs = self._execute_node(
            node, resolved, run, budget, wave=wave, concurrency=concurrency
        )
        if journal is not None:
            failure = run.node_errors.get(node.node_id)
            journal.effects.record(
                key,
                run.plan_id,
                node=node.node_id,
                outputs=outputs,
                failure=(
                    asdict(failure)
                    if failure is not None and outputs is None
                    else None
                ),
                fallback=run.fallbacks.get(node.node_id),
                charges=(
                    [
                        asdict(c)
                        for c in (
                            budget.charges_of(scope)
                            if scope is not None
                            else budget.charges()[marker:]
                        )
                    ]
                    if budget is not None
                    else []
                ),
            )
            journal.barrier(f"midnode:{run.plan_id}/{node.node_id}")
        if outputs is None:
            run.status = "failed"
            failure = run.node_errors.get(node.node_id)
            detail = f": {failure.describe()}" if failure else ""
            run.abort_reason = (
                f"agent {node.agent} failed on node {node.node_id}{detail}"
            )
            if journal is not None:
                journal.plan_finished(run.plan_id, "failed", reason=run.abort_reason)
            return "stop"
        run.node_outputs[node.node_id] = outputs
        run.executed.append(node.node_id)
        if journal is not None:
            journal.node_completed(run.plan_id, node.node_id, outputs)
        return "ok"

    def _replay_effect(
        self,
        node: TaskNode,
        run: PlanRun,
        effect: dict[str, Any],
        journal: WriteAheadJournal,
    ) -> bool:
        """Restore one node from its journaled effect record.

        Returns True when the plan should continue past the node, False
        when the journaled attempt had (finally) failed — the replay then
        fails the run the same way re-executing would have, without
        re-driving the agent.  Either way the journal is brought to the
        exact state an uninterrupted run would have produced.
        """
        self._replayed_effects_tally += 1
        run.replayed_effects.append(node.node_id)
        failure_payload = effect.get("failure")
        if failure_payload is not None:
            failure = NodeFailure(**failure_payload)
            run.node_errors[node.node_id] = failure
            run.status = "failed"
            run.abort_reason = (
                f"agent {node.agent} failed on node {node.node_id}: "
                f"{failure.describe()}"
            )
            journal.plan_finished(run.plan_id, "failed", reason=run.abort_reason)
            return False
        outputs = dict(effect.get("outputs") or {})
        fallback = effect.get("fallback")
        if fallback:
            run.fallbacks[node.node_id] = fallback
        run.node_outputs[node.node_id] = outputs
        run.executed.append(node.node_id)
        journal.node_completed(run.plan_id, node.node_id, outputs)
        return True

    def _execute_node(
        self,
        node: TaskNode,
        resolved: dict[str, Any],
        run: PlanRun,
        budget: Budget | None,
        wave: int | None = None,
        concurrency: int = 1,
    ) -> dict[str, Any] | None:
        """Drive one node to success, through retries/breaker/fallback.

        Returns the node's outputs, or None when every route failed (the
        work item is then dead-lettered).  Under the wave scheduler the
        node's span carries its *wave* index and the wave's *concurrency*
        (how many nodes were logically concurrent with it).
        """
        context = self._require_context()
        # The parent plan span already names the plan, so the node span
        # only carries the agent (plus wave/concurrency under the wave
        # scheduler — passed as creation kwargs: exports sort keys, so
        # folding them in is byte-identical and skips two set_attribute
        # calls per scheduled node).
        if wave is not None:
            node_span = context.span(
                f"node:{node.node_id}",
                kind="node",
                agent=node.agent,
                wave=wave,
                concurrency=concurrency,
            )
        else:
            node_span = context.span(f"node:{node.node_id}", kind="node", agent=node.agent)
        with node_span as span:
            policy = self.retry_policy
            breaker = self._breakers.for_agent(node.agent) if self._breakers else None
            failure: NodeFailure | None = None
            attempts = 0

            if breaker is not None and not breaker.allow():
                # Short-circuit: do NOT emit EXECUTE_AGENT to the failing agent.
                tally = self._short_circuit_tally
                tally[node.agent] = tally.get(node.agent, 0) + 1
                span.set_attribute("short_circuited", True)
                failure = NodeFailure(
                    error=f"circuit breaker open for agent {node.agent}",
                    error_type="CircuitOpenError",
                    transient=True,
                    attempts=0,
                )
            else:
                while True:
                    attempts += 1
                    outputs, attempt_failure = self._attempt_node(
                        node, resolved, node.agent, node.model, run
                    )
                    if attempt_failure is None:
                        if breaker is not None:
                            breaker.record_success()
                        span.set_attribute("attempts", attempts)
                        if self._h_node_attempts is not None:
                            self._h_node_attempts.observe(attempts)
                        return outputs
                    if breaker is not None:
                        breaker.record_failure()
                    attempt_failure.attempts = attempts
                    failure = attempt_failure
                    error = _failure_as_error(attempt_failure)
                    if not policy.should_retry(error, attempts):
                        break
                    policy.charge_backoff(
                        attempts,
                        key=f"{run.plan_id}/{node.node_id}",
                        clock=context.clock,
                        budget=budget,
                        metrics=context.metrics,
                    )

            span.set_attribute("attempts", attempts)
            if self._h_node_attempts is not None:
                self._h_node_attempts.observe(attempts)
            span.set_error(failure.describe() if failure else "node failed")
            run.node_errors[node.node_id] = failure
            rescued = self._execute_fallback(node, resolved, run)
            if rescued is not None:
                span.set_attribute("rescued_by", node.fallback_agent)
                tally = self._rescue_tally
                tally[node.agent] = tally.get(node.agent, 0) + 1
                return rescued
            self._quarantine(node, resolved, run, failure)
            return None

    def _execute_fallback(
        self, node: TaskNode, resolved: dict[str, Any], run: PlanRun
    ) -> dict[str, Any] | None:
        """Route the node to its fallback agent (graceful degradation)."""
        if node.fallback_agent is None:
            return None
        context = self._require_context()
        if node.fallback_agent not in context.session.participants():
            return None
        outputs, failure = self._attempt_node(
            node, resolved, node.fallback_agent, node.fallback_model, run
        )
        if failure is None and outputs is not None:
            run.fallbacks[node.node_id] = node.fallback_agent
            return outputs
        return None

    def _attempt_node(
        self,
        node: TaskNode,
        resolved: dict[str, Any],
        agent: str,
        model: str | None,
        run: PlanRun | None = None,
    ) -> tuple[dict[str, Any] | None, NodeFailure | None]:
        """One EXECUTE_AGENT emission plus output/error collection."""
        context = self._require_context()
        marker = len(context.store.trace())
        started = context.clock.now()
        extra: dict[str, Any] = {}
        if model is not None:
            extra["model"] = model
        if self._plan_no_cache:
            extra["no_cache"] = True
        context.store.publish_control(
            context.session.session_stream.stream_id,
            Instruction.EXECUTE_AGENT,
            producer=self.name,
            agent=agent,
            inputs=resolved,
            node=node.node_id,
            **extra,
        )
        outputs, failure = self._collect_outputs(node.node_id, agent, marker)
        elapsed = context.clock.now() - started
        if (
            failure is None
            and node.deadline is not None
            and elapsed > node.deadline
        ):
            # The node's modeled latency blew its slice: outputs are late,
            # discard them and report the deadline breach.
            failure = NodeFailure(
                error=(
                    f"node {node.node_id} exceeded deadline "
                    f"({elapsed:.3f}s > {node.deadline:.3f}s)"
                ),
                error_type="DeadlineExceededError",
                transient=False,
            )
            outputs = None
        if failure is not None and outputs is not None and run is not None:
            run.partial_outputs[node.node_id] = outputs
        if failure is not None:
            return None, failure
        return outputs if outputs is not None else {}, None

    def _collect_outputs(
        self, node_id: str, agent: str, marker: int
    ) -> tuple[dict[str, Any] | None, NodeFailure | None]:
        """Outputs and/or failure for *node_id* since trace position *marker*.

        An ``AGENT_ERROR`` takes precedence over any partial outputs the
        agent emitted before failing — both are returned so the caller can
        surface the partials in the run record.  An agent that produced
        neither outputs nor an error is an empty success only if it is
        still subscribed (alive); a crashed agent's silence is a transient
        failure, not a success.

        The trace is the store-wide arrival log: under the thread backend
        other sessions' plans append to it concurrently, and node ids
        repeat across plans (every diamond plan has an ``m1``).  Matching
        is therefore restricted to this coordinator's session streams —
        all named ``{session_id}:...`` — which is a no-op for the serial
        path (the marker slice already contains only this session's
        messages there).
        """
        context = self._require_context()
        session_prefix = f"{context.session.session_id}:"
        outputs: dict[str, Any] = {}
        failure: NodeFailure | None = None
        for message in context.store.trace()[marker:]:
            if not message.stream_id.startswith(session_prefix):
                continue
            if message.is_data and message.metadata.get("node") == node_id:
                param = message.metadata.get("param")
                if param:
                    outputs[param] = message.payload
            if (
                message.is_control
                and message.instruction() == "AGENT_ERROR"
                and message.payload.get("node") == node_id
            ):
                failure = NodeFailure(
                    error=str(message.payload.get("error", "agent error")),
                    error_type=str(message.payload.get("error_type", "")),
                    transient=bool(message.payload.get("transient", False)),
                )
        if failure is not None:
            return (outputs or None), failure
        if outputs:
            return outputs, None
        if not self._agent_listening(agent):
            return None, NodeFailure(
                error=f"agent {agent} is not listening (crashed container?)",
                error_type="AgentUnreachableError",
                transient=True,
            )
        # The agent ran but chose to emit nothing: an empty success.
        return {}, None

    def _agent_listening(self, agent: str) -> bool:
        """Liveness probe: a crashed agent has no active subscriptions."""
        context = self._require_context()
        return any(s.subscriber == agent for s in context.store.subscriptions())

    def _quarantine(
        self,
        node: TaskNode,
        resolved: dict[str, Any],
        run: PlanRun,
        failure: NodeFailure | None,
    ) -> None:
        if not self._dead_letters_enabled:
            return
        failure = failure or NodeFailure(error="unknown failure")
        entry = self.dead_letter_queue().quarantine(
            plan=run.plan_id,
            node=node.node_id,
            agent=node.agent,
            inputs=resolved,
            error=failure.error,
            error_type=failure.error_type,
            transient=failure.transient,
            attempts=failure.attempts,
            fallback_agent=node.fallback_agent,
        )
        run.dead_letters.append(entry.message_id)

    # ------------------------------------------------------------------
    # Binding resolution (with data-planner transformations)
    # ------------------------------------------------------------------
    def _resolve_bindings(self, node: TaskNode, run: PlanRun) -> dict[str, Any]:
        context = self._require_context()
        resolved: dict[str, Any] = {}
        for param, binding in node.bindings.items():
            if binding.stream is not None:
                value = self._latest_payload(binding.stream)
            elif binding.node is not None:
                upstream = run.outputs_of(binding.node)
                if binding.param not in upstream:
                    raise CoordinationError(
                        f"node {node.node_id!r} needs {binding.node}.{binding.param} "
                        f"but upstream produced {sorted(upstream)}"
                    )
                value = upstream[binding.param]
            else:
                value = binding.value
            if binding.transform is not None:
                value = self._transform(binding.transform, value)
            resolved[param] = value
        return resolved

    def _transform(self, transform: str, value: Any) -> Any:
        """Apply a named data-plan transformation to a bound value."""
        if self._data_planner is None:
            raise CoordinationError(
                f"binding requires transform {transform!r} but the coordinator "
                "has no data planner"
            )
        context = self._require_context()
        if transform.startswith("extract:"):
            fields = tuple(transform.split(":", 1)[1].split("+"))
            plan = self._data_planner.plan_transform(str(value), fields)
            result = self._data_planner.execute(plan, budget=context.budget)
            extracted = result.final()
            if isinstance(extracted, dict):
                if len(fields) == 1:
                    return extracted.get(fields[0])
                return {f: extracted.get(f) for f in fields}
            return extracted
        if transform == "summarize":
            plan_goal = str(value)
            summary_plan = self._data_planner.plan_knowledge("generate", plan_goal)
            result = self._data_planner.execute(summary_plan, budget=context.budget)
            return result.final()
        raise CoordinationError(f"unknown transform: {transform!r}")

    # ------------------------------------------------------------------
    # Violation handling
    # ------------------------------------------------------------------
    def _replan(self, plan: TaskPlan, blown: Budget, attempt: int) -> PlanRun:
        """Re-execute under an escalated fresh budget (one level only)."""
        context = self._require_context()
        escalated_qos = QoSSpec(
            max_cost=blown.qos.max_cost * self._replan_budget_factor,
            max_latency=blown.qos.max_latency * self._replan_budget_factor,
            min_quality=blown.qos.min_quality,
            objective=blown.qos.objective,
        )
        escalated = Budget(escalated_qos, clock=context.clock)
        return self.execute_plan(plan, budget=escalated, _attempt=attempt + 1)

    def _abort(self, run: PlanRun, plan: TaskPlan, reason: str) -> None:
        context = self._require_context()
        run.status = "aborted"
        run.abort_reason = reason
        context.store.publish_control(
            context.session.session_stream.stream_id,
            Instruction.ABORT_PLAN,
            producer=self.name,
            plan=plan.plan_id,
            reason=reason,
        )
        if self._replan_on_violation:
            context.store.publish_control(
                context.session.session_stream.stream_id,
                Instruction.REPLAN,
                producer=self.name,
                plan=plan.plan_id,
                goal=plan.goal,
                reason=reason,
            )

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("RESULT",)


def _failure_as_error(failure: NodeFailure) -> BaseException:
    """Rebuild an exception-shaped object for retry classification."""
    from ..errors import ReproError, TransientError

    if failure.transient:
        return TransientError(failure.error)
    return ReproError(failure.error)
