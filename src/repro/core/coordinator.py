"""The task coordinator (Section V-H).

"The task planner is concerned with interpreting tasks, while the task
coordinator handles execution."  The coordinator:

* listens to any stream carrying a plan (tag ``PLAN``), unrolls the DAG,
* drives each node by emitting ``EXECUTE_AGENT`` control messages,
* resolves parameter bindings — constants, stream reads, upstream node
  outputs — invoking the **data planner** for transformations
  (``PROFILER.CRITERIA <- USER.TEXT`` becomes an extract data plan),
* monitors the **budget** after every step, aborting the plan (and
  optionally requesting a replan) when QoS thresholds are exceeded,
* publishes the final result to its ``RESULT`` stream.

Because the stream store delivers messages depth-first, the agent executes
synchronously inside the coordinator's control publish, so outputs are
visible immediately afterwards.  (Consequently, agents the coordinator
drives should run inline — ``workers=0``, the default; worker-pool agents
are for decentralized tag-triggered fan-out, where no one waits on them.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import CoordinationError
from ..streams import Instruction
from .agent import Agent
from .budget import Budget
from .params import Parameter
from .plan.task_plan import TaskNode, TaskPlan
from .planners.data_planner import DataPlanner
from .qos import QoSSpec


@dataclass
class PlanRun:
    """Execution record of one plan."""

    plan_id: str
    goal: str
    status: str = "running"  # running | completed | aborted | failed
    node_outputs: dict[str, dict[str, Any]] = field(default_factory=dict)
    executed: list[str] = field(default_factory=list)
    abort_reason: str | None = None

    def outputs_of(self, node_id: str) -> dict[str, Any]:
        return self.node_outputs.get(node_id, {})

    def final_outputs(self) -> dict[str, Any]:
        """Outputs of the last executed node (the plan's answer)."""
        if not self.executed:
            return {}
        return self.node_outputs.get(self.executed[-1], {})


class TaskCoordinator(Agent):
    """Executes task plans by streaming instructions to agents."""

    name = "TASK_COORDINATOR"
    description = (
        "Coordinates and monitors execution of agentic workflow plans, "
        "tracking the budget and aborting on QoS violations"
    )
    inputs = (Parameter("PLAN", "plan", "a task plan DAG payload"),)
    outputs = (Parameter("RESULT", "json", "final plan outputs"),)
    listen_tags = ("PLAN",)
    gate_mode = "any"

    def __init__(
        self,
        data_planner: DataPlanner | None = None,
        replan_on_violation: bool = False,
        replan_budget_factor: float = 2.0,
        max_replans: int = 1,
        max_node_retries: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self._data_planner = data_planner
        self._replan_on_violation = replan_on_violation
        self._replan_budget_factor = replan_budget_factor
        self._max_replans = max_replans
        self._max_node_retries = max_node_retries
        self.runs: list[PlanRun] = []

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def processor(self, inputs: dict[str, Any]) -> dict[str, Any] | None:
        payload = inputs["PLAN"]
        plan = TaskPlan.from_payload(payload) if isinstance(payload, dict) else payload
        run = self.execute_plan(plan)
        if run.status != "completed":
            return None
        return {"RESULT": run.final_outputs()}

    # ------------------------------------------------------------------
    # Plan execution (also callable directly)
    # ------------------------------------------------------------------
    def execute_plan(
        self, plan: TaskPlan, budget: Budget | None = None, _attempt: int = 0
    ) -> PlanRun:
        """Unroll and drive *plan*; returns the execution record.

        On a budget violation the run aborts; with replanning enabled the
        coordinator re-executes once under an escalated budget (the
        paper's "prompt the user to confirm budget violations before
        proceeding", with the confirmation simulated as policy).
        """
        context = self._require_context()
        budget = budget or context.budget
        plan.validate()
        run = PlanRun(plan_id=plan.plan_id, goal=plan.goal)
        self.runs.append(run)
        # A control message addressed to an absent agent would dissolve
        # silently; require every planned agent to be in the session.
        participants = set(context.session.participants())
        absent = sorted({n.agent for n in plan.nodes()} - participants)
        if absent:
            run.status = "failed"
            run.abort_reason = f"agents not present in session: {absent}"
            return run
        for node in plan.order():
            violation = budget.violation() if budget is not None else None
            if violation is not None:
                self._abort(run, plan, f"budget violated on {violation}")
                if self._replan_on_violation and _attempt < self._max_replans:
                    return self._replan(plan, budget, _attempt)
                return run
            try:
                resolved = self._resolve_bindings(node, run)
            except CoordinationError as error:
                run.status = "failed"
                run.abort_reason = str(error)
                return run
            outputs = self._execute_node(node, resolved)
            if outputs is None:
                run.status = "failed"
                run.abort_reason = f"agent {node.agent} failed on node {node.node_id}"
                return run
            run.node_outputs[node.node_id] = outputs
            run.executed.append(node.node_id)
        run.status = "completed"
        return run

    def _execute_node(
        self, node: TaskNode, resolved: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Emit the control instruction and collect the node's outputs."""
        context = self._require_context()
        for attempt in range(self._max_node_retries + 1):
            marker = len(context.store.trace())
            context.store.publish_control(
                context.session.session_stream.stream_id,
                Instruction.EXECUTE_AGENT,
                producer=self.name,
                agent=node.agent,
                inputs=resolved,
                node=node.node_id,
            )
            outputs = self._collect_outputs(node.node_id, marker)
            if outputs is not None:
                return outputs
        return None

    def _collect_outputs(self, node_id: str, marker: int) -> dict[str, Any] | None:
        """Outputs emitted for *node_id* since trace position *marker*.

        Returns None when the agent reported an error and produced nothing.
        """
        context = self._require_context()
        outputs: dict[str, Any] = {}
        errored = False
        for message in context.store.trace()[marker:]:
            if message.is_data and message.metadata.get("node") == node_id:
                param = message.metadata.get("param")
                if param:
                    outputs[param] = message.payload
            if (
                message.is_control
                and message.instruction() == "AGENT_ERROR"
                and message.payload.get("node") == node_id
            ):
                errored = True
        if outputs:
            return outputs
        if errored:
            return None
        # The agent ran but chose to emit nothing: an empty success.
        return {}

    # ------------------------------------------------------------------
    # Binding resolution (with data-planner transformations)
    # ------------------------------------------------------------------
    def _resolve_bindings(self, node: TaskNode, run: PlanRun) -> dict[str, Any]:
        context = self._require_context()
        resolved: dict[str, Any] = {}
        for param, binding in node.bindings.items():
            if binding.stream is not None:
                value = self._latest_payload(binding.stream)
            elif binding.node is not None:
                upstream = run.outputs_of(binding.node)
                if binding.param not in upstream:
                    raise CoordinationError(
                        f"node {node.node_id!r} needs {binding.node}.{binding.param} "
                        f"but upstream produced {sorted(upstream)}"
                    )
                value = upstream[binding.param]
            else:
                value = binding.value
            if binding.transform is not None:
                value = self._transform(binding.transform, value)
            resolved[param] = value
        return resolved

    def _transform(self, transform: str, value: Any) -> Any:
        """Apply a named data-plan transformation to a bound value."""
        if self._data_planner is None:
            raise CoordinationError(
                f"binding requires transform {transform!r} but the coordinator "
                "has no data planner"
            )
        context = self._require_context()
        if transform.startswith("extract:"):
            fields = tuple(transform.split(":", 1)[1].split("+"))
            plan = self._data_planner.plan_transform(str(value), fields)
            result = self._data_planner.execute(plan, budget=context.budget)
            extracted = result.final()
            if isinstance(extracted, dict):
                if len(fields) == 1:
                    return extracted.get(fields[0])
                return {f: extracted.get(f) for f in fields}
            return extracted
        if transform == "summarize":
            plan_goal = str(value)
            summary_plan = self._data_planner.plan_knowledge("generate", plan_goal)
            result = self._data_planner.execute(summary_plan, budget=context.budget)
            return result.final()
        raise CoordinationError(f"unknown transform: {transform!r}")

    # ------------------------------------------------------------------
    # Violation handling
    # ------------------------------------------------------------------
    def _replan(self, plan: TaskPlan, blown: Budget, attempt: int) -> PlanRun:
        """Re-execute under an escalated fresh budget (one level only)."""
        context = self._require_context()
        escalated_qos = QoSSpec(
            max_cost=blown.qos.max_cost * self._replan_budget_factor,
            max_latency=blown.qos.max_latency * self._replan_budget_factor,
            min_quality=blown.qos.min_quality,
            objective=blown.qos.objective,
        )
        escalated = Budget(escalated_qos, clock=context.clock)
        return self.execute_plan(plan, budget=escalated, _attempt=attempt + 1)

    def _abort(self, run: PlanRun, plan: TaskPlan, reason: str) -> None:
        context = self._require_context()
        run.status = "aborted"
        run.abort_reason = reason
        context.store.publish_control(
            context.session.session_stream.stream_id,
            Instruction.ABORT_PLAN,
            producer=self.name,
            plan=plan.plan_id,
            reason=reason,
        )
        if self._replan_on_violation:
            context.store.publish_control(
                context.session.session_stream.stream_id,
                Instruction.REPLAN,
                producer=self.name,
                plan=plan.plan_id,
                goal=plan.goal,
                reason=reason,
            )

    def output_tags(self, param: str) -> tuple[str, ...]:
        return ("RESULT",)
