"""The shared context handed to agents when they attach to the runtime.

Bundles the substrate handles an agent may need: the streams database, its
session, the simulated clock, the model catalog, both registries, and the
active budget.  Passing one context object keeps agent constructors small
and lets the runtime swap substrates in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..clock import SimClock
from ..llm import ModelCatalog
from ..streams import StreamStore
from .budget import Budget
from .session import Session

if TYPE_CHECKING:  # avoid import cycles; registries import params only
    from ..observability import MetricsRegistry, Observability
    from .registries import AgentRegistry, DataRegistry


@dataclass
class AgentContext:
    """Everything an attached agent can reach."""

    store: StreamStore
    session: Session
    clock: SimClock
    catalog: ModelCatalog | None = None
    budget: Budget | None = None
    agent_registry: "AgentRegistry | None" = None
    data_registry: "DataRegistry | None" = None
    observability: "Observability | None" = None
    extras: dict[str, Any] = field(default_factory=dict)

    def charge(
        self, source: str, cost: float = 0.0, latency: float = 0.0, quality: float | None = None
    ) -> None:
        """Record a charge on the active budget, if any."""
        if self.budget is not None:
            self.budget.charge(source, cost=cost, latency=latency, quality=quality)

    # ------------------------------------------------------------------
    # Instrumentation (no-ops when observability is absent or disabled)
    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "internal", **attributes: Any):
        """A trace span context manager, or a no-op context when untraced.

        The no-op context still yields a (shared, discarding) span so
        call sites can set attributes unconditionally.
        """
        if self.observability is None:
            from ..observability.span import NOOP_SPAN

            return NOOP_SPAN
        return self.observability.span(name, kind=kind, **attributes)

    @property
    def metrics(self) -> "MetricsRegistry | None":
        """The session's metrics registry, if observability is wired."""
        if self.observability is None:
            return None
        return self.observability.metrics

    def metric_inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.inc(name, value, **labels)

    def metric_observe(self, name: str, value: float) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.observe(name, value)

    def extra(self, key: str, default: Any = None) -> Any:
        return self.extras.get(key, default)
