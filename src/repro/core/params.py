"""Typed input/output parameters for agents.

"Each agent is structured with input and output parameters, alongside
properties that dictate its behavior" (Section V-B).  Parameters carry the
metadata the registries index and the planners match on when they connect
one agent's outputs to another's inputs (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import AgentError


@dataclass(frozen=True)
class Parameter:
    """One named input or output of an agent.

    Attributes:
        name: parameter identifier, upper-case by convention (``CRITERIA``).
        type_name: informal type label used for plan wiring (``text``,
            ``json``, ``rows``, ``profile``, ``jobs``, ...).
        description: registry-searchable description.
        required: whether the agent can fire without it.
        default: value used when not required and absent.
    """

    name: str
    type_name: str = "text"
    description: str = ""
    required: bool = True
    default: Any = None

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": self.type_name,
            "description": self.description,
            "required": self.required,
            "default": self.default,
        }


def validate_inputs(
    parameters: tuple[Parameter, ...], inputs: dict[str, Any], agent: str
) -> dict[str, Any]:
    """Check *inputs* against parameter specs; fill defaults.

    Raises:
        AgentError: on missing required parameters or unknown names.
    """
    known = {p.name for p in parameters}
    unknown = set(inputs) - known
    if unknown:
        raise AgentError(f"unknown inputs for agent {agent!r}: {sorted(unknown)}")
    resolved: dict[str, Any] = {}
    for parameter in parameters:
        if parameter.name in inputs:
            resolved[parameter.name] = inputs[parameter.name]
        elif parameter.required:
            raise AgentError(
                f"missing required input {parameter.name!r} for agent {agent!r}"
            )
        else:
            resolved[parameter.name] = parameter.default
    return resolved
