"""PetriNet-inspired multi-stream triggering (Figure 4).

"We consider each input stream as a 'place' holding one or more tokens
(input data).  Transitions occur when all places contain at least a token,
allowing formation of a tuple with all input data for the processor
function" (Section V-B).

:class:`InputGate` implements exactly that: one *place* per input
parameter; offering a token to a place may complete one or more input
tuples, which are returned so the agent can fire its processor.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..errors import AgentError


class InputGate:
    """Collects tokens per place and fires complete input tuples.

    Modes:
        * ``join`` (default) — fire once every place holds a token,
          consuming one token per place (PetriNet transition semantics).
          Queued tokens pair up in FIFO order across firings.
        * ``any`` — fire immediately on each offered token with a partial
          tuple (the single offered place); used by single-input agents
          and by agents that react to whichever stream speaks first.

    Example:
        >>> gate = InputGate(["PROFILE", "JOBS"])
        >>> gate.offer("PROFILE", {"name": "a"})
        []
        >>> gate.offer("JOBS", [1, 2])
        [{'PROFILE': {'name': 'a'}, 'JOBS': [1, 2]}]
    """

    def __init__(self, places: list[str], mode: str = "join") -> None:
        if not places:
            raise AgentError("an input gate needs at least one place")
        if mode not in {"join", "any"}:
            raise AgentError(f"unknown gate mode: {mode!r}")
        self.mode = mode
        self._places: dict[str, deque[Any]] = {place: deque() for place in places}

    @property
    def places(self) -> list[str]:
        return list(self._places)

    def offer(self, place: str, token: Any) -> list[dict[str, Any]]:
        """Deposit *token* in *place*; returns the input tuples that fire."""
        if place not in self._places:
            raise AgentError(f"unknown place: {place!r} (have {self.places})")
        if self.mode == "any":
            return [{place: token}]
        self._places[place].append(token)
        fired: list[dict[str, Any]] = []
        while all(self._places[p] for p in self._places):
            fired.append({p: self._places[p].popleft() for p in self._places})
        return fired

    def pending(self) -> dict[str, int]:
        """Tokens waiting per place (for observability)."""
        return {place: len(queue) for place, queue in self._places.items()}

    def clear(self) -> None:
        for queue in self._places.values():
            queue.clear()
