"""The Blueprint runtime: one object wiring every component together.

This is the library's main entry point.  It owns the simulated clock, the
streams database, the model catalog, both registries, the session manager,
the planners, and the optimizer — the full Figure-1 component inventory —
and provides the attach/bootstrap conveniences applications use.

Example:
    >>> from repro.core.runtime import Blueprint
    >>> bp = Blueprint()
    >>> session = bp.create_session()
    >>> sorted(bp.describe()["components"])[:3]
    ['agent_registry', 'agents', 'clock']
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from ..clock import SimClock
from ..llm import (
    LLMBatcher,
    LLMCache,
    ModelCapacity,
    ModelCatalog,
    SingleFlight,
    UsageTracker,
)
from ..observability import Observability
from ..streams import FlowTrace, StreamStore
from .agent import Agent
from .budget import Budget, Projection
from .context import AgentContext
from .coordinator import TaskCoordinator
from .engine import ExecutionBackend, SERIAL, resolve_backend
from .factory import AgentFactory
from .fleet import FleetEntry, FleetOffer, FleetResult, FleetScheduler, FleetSubmission
from .overload import Arrival, TrafficGenerator
from .plan.task_plan import TaskPlan
from .scheduler import VirtualTimeline
from .planners.data_planner import DataPlanner
from .planners.task_planner import TaskPlanner, TaskPlannerAgent
from .qos import QoSSpec
from .recovery import CompensationRegistry, RecoveryManager, WriteAheadJournal
from .registries import AgentRegistry, DataRegistry
from .session import Session, SessionManager


class Blueprint:
    """The assembled blueprint architecture."""

    def __init__(
        self,
        clock: SimClock | None = None,
        catalog: ModelCatalog | None = None,
        agent_registry: AgentRegistry | None = None,
        data_registry: DataRegistry | None = None,
        planner_model: str = "hr-ft",
        observability: Observability | None = None,
        llm_cache: LLMCache | bool = False,
    ) -> None:
        self.clock = clock or SimClock()
        #: Tracing + metrics over the whole runtime; on by default because
        #: it is the measurement substrate every perf decision reads from.
        #: Pass ``Observability(clock, enabled=False)`` to strip it.
        self.observability = observability or Observability(self.clock)
        self.store = StreamStore(self.clock)
        self.store.observability = self.observability
        self.tracker = UsageTracker()
        self.catalog = catalog or ModelCatalog(clock=self.clock, tracker=self.tracker)
        if self.catalog.clock is None:
            self.catalog.clock = self.clock
        self.catalog.observability = self.observability
        #: LLM result cache: opt-in (``llm_cache=True`` or a configured
        #: :class:`~repro.llm.LLMCache`) so default runs keep byte-identical
        #: traces and call-for-call chaos determinism.
        if isinstance(llm_cache, LLMCache):
            # isinstance, not truthiness: a configured-but-empty cache has
            # len() == 0 and would be dropped by a bare ``if llm_cache``.
            self.catalog.cache = llm_cache
        elif llm_cache:
            self.catalog.cache = LLMCache()
        self.llm_cache = self.catalog.cache
        self.agent_registry = agent_registry or AgentRegistry()
        self.data_registry = data_registry or DataRegistry()
        self.sessions = SessionManager(self.store)
        self.data_planner = DataPlanner(
            self.data_registry, self.catalog, planner_model=planner_model
        )
        self.task_planner = TaskPlanner(self.agent_registry, self.catalog)
        self.factory = AgentFactory()
        self._attached: dict[str, list[Agent]] = {}

    # ------------------------------------------------------------------
    # Sessions and contexts
    # ------------------------------------------------------------------
    def create_session(self, session_id: str | None = None) -> Session:
        return self.sessions.create(session_id)

    def budget(self, qos: QoSSpec | None = None, projection: Projection | None = None) -> Budget:
        return Budget(
            qos=qos,
            clock=self.clock,
            projection=projection,
            metrics=self.observability.metrics,
        )

    def context(self, session: Session, budget: Budget | None = None) -> AgentContext:
        return AgentContext(
            store=self.store,
            session=session,
            clock=self.clock,
            catalog=self.catalog,
            budget=budget,
            agent_registry=self.agent_registry,
            data_registry=self.data_registry,
            observability=self.observability,
        )

    # ------------------------------------------------------------------
    # Agents
    # ------------------------------------------------------------------
    def attach(
        self,
        agent: Agent,
        session: Session,
        budget: Budget | None = None,
        register: bool = True,
    ) -> Agent:
        """Attach *agent* to *session* and (optionally) register it."""
        agent.attach(self.context(session, budget))
        if register and not self.agent_registry.has(agent.name):
            self.agent_registry.register_agent(agent)
        self._attached.setdefault(session.session_id, []).append(agent)
        return agent

    def attach_planner_and_coordinator(
        self,
        session: Session,
        budget: Budget | None = None,
        user_stream: str | None = None,
        journal: WriteAheadJournal | None = None,
        parallel: bool = False,
    ) -> tuple[TaskPlannerAgent, TaskCoordinator]:
        """Bootstrap the standard orchestration pair for a session.

        *user_stream* names the stream plans read user input from
        (defaults to the session's ``user`` stream).  With *journal*
        (see :meth:`journal`), the coordinator write-ahead journals plan
        execution so crashed plans can be resumed.  With *parallel*, the
        coordinator schedules plans in dependency waves and accounts
        latency as the critical path.
        """
        planner_agent = TaskPlannerAgent(self.task_planner, user_stream=user_stream)
        coordinator = TaskCoordinator(
            data_planner=self.data_planner, journal=journal, parallel=parallel
        )
        self.attach(planner_agent, session, budget)
        self.attach(coordinator, session, budget)
        return planner_agent, coordinator

    # ------------------------------------------------------------------
    # Fleet execution
    # ------------------------------------------------------------------
    def run_fleet(
        self,
        submissions: Sequence["TaskPlan | FleetSubmission"],
        max_inflight: int = 4,
        max_backlog: int | None = None,
        journal: bool = True,
        single_flight: bool = True,
        capacity: "ModelCapacity | dict[str, int] | None" = None,
        batching: "bool | LLMBatcher" = False,
        backend: "str | ExecutionBackend" = "serial",
    ) -> FleetResult:
        """Run many plans concurrently on one shared virtual timeline.

        Each submission gets its own session, coordinator, and (with
        *journal*) write-ahead journal stream, so crash recovery works
        per plan exactly as in single-plan runs.  Up to *max_inflight*
        plans execute at once, round-robined wave by wave; the rest wait
        in a FIFO backlog of at most *max_backlog* (unbounded when None)
        or are rejected.  With *single_flight*, timeline-overlapping
        identical LLM calls across plans coalesce into one; *capacity*
        (a :class:`~repro.llm.ModelCapacity` or a ``{model: slots}``
        mapping) bounds per-model concurrency, queueing excess calls with
        deterministic delay.  With *batching* (``True`` for defaults, or
        a configured :class:`~repro.llm.LLMBatcher`), distinct-but-
        batchable calls to the same model — same params, different
        prompts — coalesce into micro-batch windows: joiners keep their
        own cost attribution but share the window's capacity slot and
        pay only the residual latency.

        Plain :class:`TaskPlan` submissions run unbudgeted with no extra
        agents; wrap in :class:`~repro.core.fleet.FleetSubmission` to
        attach agents and a QoS budget.

        *backend* selects the execution backend: ``"serial"`` (default;
        single-threaded, byte-identical deterministic traces),
        ``"threads"`` (wave nodes and fleet rounds run on real worker
        threads — result-identical, wall-clock faster when agent work
        blocks), or ``"async"`` (the same concurrency gathered as
        coroutines on an asyncio event loop).  An
        :class:`~repro.core.engine.ExecutionBackend` instance may be
        passed directly (the caller then owns its lifecycle);
        string-built concurrent backends are closed on return.
        """
        self._wire_fleet_contention(single_flight, capacity, batching)
        engine = resolve_backend(backend)
        owns_backend = isinstance(backend, str) and engine is not SERIAL
        entries = [self._prepare_entry(item, journal) for item in submissions]
        timeline = VirtualTimeline(self.clock)
        scheduler = FleetScheduler(
            timeline,
            self.clock,
            max_inflight=max_inflight,
            max_backlog=max_backlog,
            observability=self.observability,
            backend=engine,
        )
        try:
            return scheduler.run(entries)
        finally:
            if owns_backend:
                engine.close()

    def run_traffic(
        self,
        traffic: "TrafficGenerator | Sequence[Arrival]",
        submission_factory: Any,
        max_inflight: int = 4,
        max_backlog: int | None = None,
        admission: Any = None,
        brownout: Any = None,
        journal: bool = True,
        single_flight: bool = True,
        capacity: "ModelCapacity | dict[str, int] | None" = None,
        batching: "bool | LLMBatcher" = False,
        backend: "str | ExecutionBackend" = "serial",
    ) -> FleetResult:
        """Serve an open-loop arrival stream through the overload plane.

        *traffic* is a :class:`~repro.core.overload.TrafficGenerator`
        (its trace is generated here) or a pre-built arrival sequence;
        *submission_factory* maps each
        :class:`~repro.core.overload.Arrival` to a
        :class:`~repro.core.fleet.FleetSubmission` (or a bare
        :class:`TaskPlan`).  Arrival times are relative to the trace
        origin and are shifted onto the shared clock at submission.

        *admission* is an
        :class:`~repro.core.overload.AdmissionController` (None = the
        PR-5 FIFO backlog bounded by *max_backlog* — the naive
        ablation); *brownout* an optional
        :class:`~repro.core.overload.BrownoutController`.  Everything
        else matches :meth:`run_fleet`.
        """
        self._wire_fleet_contention(single_flight, capacity, batching)
        arrivals = (
            traffic.generate()
            if isinstance(traffic, TrafficGenerator)
            else list(traffic)
        )
        origin = self.clock.now()
        offers = []
        for arrival in arrivals:
            sub = submission_factory(arrival)
            if not isinstance(sub, FleetSubmission):
                sub = FleetSubmission(
                    plan=sub, tenant=arrival.tenant, tier=arrival.tier
                )
            offers.append(
                FleetOffer(
                    entry=self._prepare_entry(sub, journal),
                    arrival=origin + arrival.time,
                )
            )
        engine = resolve_backend(backend)
        owns_backend = isinstance(backend, str) and engine is not SERIAL
        timeline = VirtualTimeline(self.clock)
        scheduler = FleetScheduler(
            timeline,
            self.clock,
            max_inflight=max_inflight,
            max_backlog=max_backlog,
            observability=self.observability,
            admission=admission,
            brownout=brownout,
            backend=engine,
        )
        try:
            return scheduler.run_offers(offers)
        finally:
            if owns_backend:
                engine.close()

    def _wire_fleet_contention(
        self,
        single_flight: bool,
        capacity: "ModelCapacity | dict[str, int] | None",
        batching: "bool | LLMBatcher" = False,
    ) -> None:
        if single_flight and self.catalog.single_flight is None:
            self.catalog.single_flight = SingleFlight()
        if capacity is not None:
            self.catalog.capacity = (
                capacity
                if isinstance(capacity, ModelCapacity)
                else ModelCapacity(dict(capacity))
            )
        if isinstance(batching, LLMBatcher):
            self.catalog.batcher = batching
        elif batching and self.catalog.batcher is None:
            self.catalog.batcher = LLMBatcher()

    def _prepare_entry(
        self, item: "TaskPlan | FleetSubmission", journal: bool
    ) -> FleetEntry:
        """One submission's session, coordinator, budget, and agents."""
        sub = (
            item if isinstance(item, FleetSubmission) else FleetSubmission(plan=item)
        )
        session = self.create_session()
        plan_journal = self.journal(session) if journal else None
        coordinator = TaskCoordinator(
            data_planner=self.data_planner, journal=plan_journal, parallel=True
        )
        budget = self.budget(sub.qos) if sub.qos is not None else None
        for agent in sub.agents:
            self.attach(agent, session, budget)
        self.attach(coordinator, session, budget)
        return FleetEntry(
            plan=sub.plan,
            coordinator=coordinator,
            budget=budget,
            tenant=sub.tenant,
            tier=sub.tier,
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def journal(
        self, session: Session, barrier_hook: Any = None
    ) -> WriteAheadJournal:
        """A write-ahead journal on *session*'s durable ``journal`` stream.

        Idempotent per session (the stream is ``ensure_stream``-ed), so a
        coordinator recreated after a crash journals onto the same stream
        the dead one wrote.
        """
        return WriteAheadJournal(
            self.store,
            session=session,
            barrier_hook=barrier_hook,
            metrics=self.observability.metrics,
        )

    def recovery_manager(
        self,
        session: Session,
        coordinator: Any = None,
        compensations: CompensationRegistry | None = None,
        journal: WriteAheadJournal | None = None,
    ) -> RecoveryManager:
        """A recovery manager over *session*'s journal.

        *coordinator* may be a live :class:`TaskCoordinator` or a
        zero-argument factory returning the current one (the supervisor
        pattern, where restarts replace the instance).
        """
        return RecoveryManager(
            journal or self.journal(session),
            coordinator=coordinator,
            compensations=compensations,
        )

    def agents_in(self, session: Session) -> list[Agent]:
        return list(self._attached.get(session.session_id, []))

    def close_session(self, session: Session) -> None:
        """Detach every agent attached through this runtime, then close."""
        for agent in self._attached.pop(session.session_id, []):
            if agent.context is not None:
                agent.detach()
        session.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def flow_trace(self) -> FlowTrace:
        return FlowTrace(self.store)

    def trace_export(self) -> str:
        """The canonical JSON artifact: span tree + metrics snapshot.

        When the opt-in reuse machinery is attached, its savings tallies
        ride along — notably the cache's *saved token* counts, which the
        zeroed usage on hits would otherwise hide from any throughput
        read of the artifact (charged usage is untouched; these are
        side-channel tallies).
        """
        report = self.observability.export_json()
        extras: dict[str, Any] = {}
        if self.catalog.cache is not None:
            stats = self.catalog.cache.stats()
            extras["llm_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "entries": stats.entries,
                "saved_cost": stats.saved_cost,
                "saved_latency": stats.saved_latency,
                "saved_input_tokens": stats.saved_input_tokens,
                "saved_output_tokens": stats.saved_output_tokens,
            }
        if self.catalog.single_flight is not None:
            stats = self.catalog.single_flight.stats()
            extras["llm_single_flight"] = {
                "leaders": stats.leaders,
                "joins": stats.joins,
                "saved_cost": stats.saved_cost,
                "saved_latency": stats.saved_latency,
            }
        if self.catalog.batcher is not None:
            stats = self.catalog.batcher.stats()
            extras["llm_batching"] = {
                "windows": stats.batches,
                "joins": stats.joins,
                "peak_batch": stats.peak_batch,
                "saved_latency": stats.saved_latency,
                "attributed_cost": stats.attributed_cost,
            }
        if not extras:
            return report
        payload = json.loads(report)
        payload.update(extras)
        return json.dumps(payload, sort_keys=True, allow_nan=False, default=str)

    def describe(self) -> dict[str, Any]:
        """Component inventory (the Figure-1 architecture view)."""
        return {
            "components": {
                "clock": {"now": self.clock.now()},
                "streams": self.store.stats(),
                "model_catalog": {"models": self.catalog.names()},
                "agent_registry": {"entries": self.agent_registry.names()},
                "data_registry": {"entries": self.data_registry.names()},
                "sessions": {"active": self.sessions.active()},
                "task_planner": {"templates": [t.intent for t in self.task_planner.templates()]},
                "data_planner": {"planner_model": self.data_planner.planner_model},
                "optimizer": {"type": type(self.data_planner.optimizer).__name__},
                "agents": {
                    session_id: [agent.name for agent in agents]
                    for session_id, agents in self._attached.items()
                },
                "observability": {
                    "enabled": self.observability.enabled,
                    "spans": len(self.observability.tracer.spans()),
                    "metrics": len(self.observability.metrics.snapshot()),
                },
            },
            "usage": {
                "llm_calls": self.tracker.calls,
                "llm_cost": self.tracker.cost,
            },
        }
