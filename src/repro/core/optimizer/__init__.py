"""Plan optimization: cost model and multi-objective optimizer."""

from .cost_model import CostModel, OpEstimate
from .optimizer import Assignment, PlanOptimizer, PlanProfile

__all__ = ["CostModel", "OpEstimate", "Assignment", "PlanOptimizer", "PlanProfile"]
