"""Cost model: estimated cost/latency/quality per data-plan operator.

The optimizer needs pre-execution estimates; the executor needs actual
charges.  Both draw on the same constants here so that estimates track
actuals — the property that makes budget projections meaningful.

LLM-backed operators derive their numbers from the chosen model's spec
(token pricing, latency model, quality).  Storage-backed operators use
per-row micro-costs calibrated to an in-memory engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import OptimizationError
from ...llm import ModelCatalog
from ..plan.data_plan import DataOperator, Op, OperatorChoice

#: Fixed per-operator latencies (seconds) for storage-backed operators.
BASE_LATENCY = {
    Op.DISCOVER: 0.002,
    Op.SQL: 0.001,
    Op.DOC_FIND: 0.001,
    Op.GRAPH_QUERY: 0.001,
    Op.TAXONOMY: 0.001,
    Op.KV_GET: 0.0002,
    Op.SELECT: 0.0005,
    Op.PROJECT: 0.0002,
    Op.JOIN: 0.002,
    Op.UNION: 0.0002,
    Op.RANK: 0.0005,
    Op.LIMIT: 0.0001,
    Op.VERIFY: 0.001,
    Op.VECTOR_SEARCH: 0.002,
}

#: Marginal latency per input/output row for storage-backed operators.
PER_ROW_LATENCY = 1e-5

#: Infrastructure cost (dollars) per storage operator execution — tiny but
#: nonzero so cost-optimal plans still prefer fewer operators.
STORAGE_OP_COST = 1e-6

#: Typical token footprints for LLM-backed operators, used for estimation
#: (actual calls meter real tokens).
LLM_TOKEN_ESTIMATES = {
    Op.LLM_CALL: (24, 40),
    Op.Q2NL: (20, 15),
    Op.NL2Q: (60, 30),
    Op.EXTRACT: (50, 25),
    Op.SUMMARIZE: (220, 60),
    # TAXONOMY is storage-backed when its choice names a graph source and
    # LLM-backed when it names a model; the estimator dispatches on that.
    Op.TAXONOMY: (20, 30),
}

#: Operators that run on a model when their choice names one.
LLM_OPS = frozenset(LLM_TOKEN_ESTIMATES)


@dataclass(frozen=True)
class OpEstimate:
    """Estimated execution profile of one operator under one choice."""

    cost: float
    latency: float
    quality: float

    def dominates(self, other: "OpEstimate") -> bool:
        """Pareto dominance: at least as good everywhere, better somewhere."""
        at_least = (
            self.cost <= other.cost
            and self.latency <= other.latency
            and self.quality >= other.quality
        )
        strictly = (
            self.cost < other.cost
            or self.latency < other.latency
            or self.quality > other.quality
        )
        return at_least and strictly


class CostModel:
    """Estimates operator execution profiles from catalog + registry stats."""

    def __init__(self, catalog: ModelCatalog) -> None:
        self._catalog = catalog

    def estimate(
        self,
        operator: DataOperator,
        choice: OperatorChoice,
        rows_in: int = 100,
    ) -> OpEstimate:
        """Profile of running *operator* with *choice* on ~rows_in rows."""
        if operator.op in LLM_OPS and choice.model is not None:
            return self._estimate_llm(operator, choice)
        if operator.op in BASE_LATENCY:
            latency = BASE_LATENCY[operator.op] + rows_in * PER_ROW_LATENCY
            return OpEstimate(cost=STORAGE_OP_COST, latency=latency, quality=1.0)
        if operator.op in LLM_OPS:
            # LLM-shaped operator without a model: treated as a pure
            # rule-based transform (e.g. deterministic Q2NL templating).
            return OpEstimate(cost=STORAGE_OP_COST, latency=0.0005, quality=1.0)
        raise OptimizationError(f"no cost model for operator {operator.op}")

    def _estimate_llm(self, operator: DataOperator, choice: OperatorChoice) -> OpEstimate:
        spec = self._catalog.spec(choice.model)
        input_tokens, output_tokens = LLM_TOKEN_ESTIMATES[operator.op]
        domain = operator.params.get("domain", "general")
        return OpEstimate(
            cost=spec.cost_of(input_tokens, output_tokens),
            latency=spec.latency_of(input_tokens, output_tokens),
            quality=spec.quality_for(domain),
        )

    def estimates_for(self, operator: DataOperator, rows_in: int = 100) -> list[tuple[OperatorChoice, OpEstimate]]:
        """All (choice, estimate) pairs for an operator."""
        choices = operator.choices or (operator.choice(),)
        return [(choice, self.estimate(operator, choice, rows_in)) for choice in choices]
