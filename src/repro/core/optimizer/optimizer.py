"""Multi-objective plan optimization (Sections V-G/H).

Given a data plan whose operators carry alternative (source, model)
choices, the optimizer assigns one choice per operator such that the
plan-level profile — total cost, total latency, compound quality —
satisfies the QoS constraints, optimizing the QoS objective among the
feasible assignments.

Plan-level metrics compose per operator: cost and latency add (operators
execute sequentially in the reference executor) and quality multiplies
(each lossy step compounds).  The optimizer runs a dynamic program over
operators in topological order, carrying the Pareto frontier of partial
profiles and pruning dominated states; this is exact for these separable
metrics and fast for realistic plan sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import OptimizationError
from ..plan.data_plan import DataPlan, OperatorChoice
from ..qos import QoSSpec
from .cost_model import CostModel, OpEstimate


@dataclass(frozen=True)
class PlanProfile:
    """Plan-level aggregate of per-operator estimates."""

    cost: float = 0.0
    latency: float = 0.0
    quality: float = 1.0

    def extend(self, estimate: OpEstimate) -> "PlanProfile":
        return PlanProfile(
            cost=self.cost + estimate.cost,
            latency=self.latency + estimate.latency,
            quality=self.quality * estimate.quality,
        )

    def dominates(self, other: "PlanProfile") -> bool:
        at_least = (
            self.cost <= other.cost
            and self.latency <= other.latency
            and self.quality >= other.quality
        )
        strictly = (
            self.cost < other.cost
            or self.latency < other.latency
            or self.quality > other.quality
        )
        return at_least and strictly


@dataclass(frozen=True)
class Assignment:
    """One full choice assignment with its plan profile."""

    choices: tuple[tuple[str, OperatorChoice], ...]  # (op_id, choice) in order
    profile: PlanProfile

    def choice_for(self, op_id: str) -> OperatorChoice | None:
        for assigned_id, choice in self.choices:
            if assigned_id == op_id:
                return choice
        return None


class PlanOptimizer:
    """Chooses operator configurations under QoS constraints."""

    def __init__(self, cost_model: CostModel, rows_in: int = 100, max_states: int = 256) -> None:
        self._cost_model = cost_model
        self._rows_in = rows_in
        self._max_states = max_states

    # ------------------------------------------------------------------
    # Frontier construction
    # ------------------------------------------------------------------
    def frontier(self, plan: DataPlan) -> list[Assignment]:
        """Pareto-optimal assignments over the whole plan."""
        states: list[Assignment] = [Assignment(choices=(), profile=PlanProfile())]
        for operator in plan.order():
            options = self._cost_model.estimates_for(operator, rows_in=self._rows_in)
            extended: list[Assignment] = []
            for state in states:
                for choice, estimate in options:
                    extended.append(
                        Assignment(
                            choices=state.choices + ((operator.op_id, choice),),
                            profile=state.profile.extend(estimate),
                        )
                    )
            states = self._prune(extended)
        return sorted(states, key=lambda a: (a.profile.cost, a.profile.latency))

    def _prune(self, states: list[Assignment]) -> list[Assignment]:
        """Keep the Pareto frontier (bounded by max_states for safety)."""
        frontier: list[Assignment] = []
        for candidate in sorted(
            states, key=lambda a: (a.profile.cost, a.profile.latency, -a.profile.quality)
        ):
            if any(kept.profile.dominates(candidate.profile) for kept in frontier):
                continue
            frontier = [
                kept for kept in frontier if not candidate.profile.dominates(kept.profile)
            ]
            frontier.append(candidate)
        if len(frontier) > self._max_states:
            # Keep a spread across the cost axis rather than truncating one end.
            frontier.sort(key=lambda a: a.profile.cost)
            step = len(frontier) / self._max_states
            frontier = [frontier[int(i * step)] for i in range(self._max_states)]
        return frontier

    # ------------------------------------------------------------------
    # Constrained choice
    # ------------------------------------------------------------------
    def optimize(self, plan: DataPlan, qos: QoSSpec | None = None) -> Assignment:
        """Pick the best feasible assignment and apply it to the plan.

        Raises:
            OptimizationError: when no assignment satisfies the QoS.
        """
        qos = qos or QoSSpec.unconstrained()
        feasible = [
            assignment
            for assignment in self.frontier(plan)
            if qos.admits(
                assignment.profile.cost,
                assignment.profile.latency,
                assignment.profile.quality,
            )
        ]
        if not feasible:
            raise OptimizationError(
                f"no feasible assignment for plan {plan.plan_id!r} under "
                f"cost<={qos.max_cost} latency<={qos.max_latency} "
                f"quality>={qos.min_quality}"
            )
        best = self._pick(feasible, qos.objective)
        self.apply(plan, best)
        return best

    @staticmethod
    def _pick(assignments: list[Assignment], objective: str) -> Assignment:
        if objective == "cost":
            return min(assignments, key=lambda a: (a.profile.cost, -a.profile.quality))
        if objective == "latency":
            return min(assignments, key=lambda a: (a.profile.latency, -a.profile.quality))
        return max(assignments, key=lambda a: (a.profile.quality, -a.profile.cost))

    @staticmethod
    def apply(plan: DataPlan, assignment: Assignment) -> None:
        """Write the assignment's choices onto the plan's operators."""
        for op_id, choice in assignment.choices:
            plan.operator(op_id).chosen = choice

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def project(self, plan: DataPlan, parallel: bool = False) -> PlanProfile:
        """Profile of the plan as currently configured (for budgets).

        With ``parallel=True`` latency is the DAG's critical path (an
        executor running independent operators concurrently) instead of
        the sequential sum; cost and quality are schedule-independent.
        """
        profile = PlanProfile()
        latencies: dict[str, float] = {}
        for operator in plan.order():
            estimate = self._cost_model.estimate(
                operator, operator.choice(), rows_in=self._rows_in
            )
            latencies[operator.op_id] = estimate.latency
            profile = profile.extend(estimate)
        if parallel:
            profile = PlanProfile(
                cost=profile.cost,
                latency=plan.critical_path(latencies),
                quality=profile.quality,
            )
        return profile
