"""Sessions: the context and scope for agents' collaborative work.

"Each agent signals its entry and exit from the session and creates output
streams by posting instructions to the session stream ... Additional
context can be established by extending the current context ... analogous
to scoping in programming" (Section V-E).

A session owns a *session stream* where lifecycle instructions are posted,
names all of its work streams under its id (``sess-000001:profile``), and
exposes hierarchical :class:`Scope` contexts for grouped interactions.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from ..errors import SessionError
from ..ids import IdGenerator
from ..streams import Instruction, Stream, StreamStore


class Scope:
    """A hierarchical key-value context (``SESSION:ID:PROFILE`` style)."""

    def __init__(self, path: str, parent: "Scope | None" = None) -> None:
        self.path = path
        self.parent = parent
        self._values: dict[str, Any] = {}
        self._children: dict[str, "Scope"] = {}
        self._lock = threading.RLock()

    def child(self, name: str) -> "Scope":
        """Get or create the child scope *name* (extends the context)."""
        with self._lock:
            if name not in self._children:
                self._children[name] = Scope(f"{self.path}:{name}", parent=self)
            return self._children[name]

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._values[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """Look up *key* here, falling back through enclosing scopes."""
        with self._lock:
            if key in self._values:
                return self._values[key]
        if self.parent is not None:
            return self.parent.get(key, default)
        return default

    def local_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._values)

    def children(self) -> list[str]:
        with self._lock:
            return sorted(self._children)


class Session:
    """One unit of collaborative agent work over the stream store."""

    def __init__(self, session_id: str, store: StreamStore) -> None:
        self.session_id = session_id
        self.store = store
        self.scope = Scope(f"SESSION:{session_id}")
        self._participants: list[str] = []
        self._closed = False
        self._lock = threading.RLock()
        self._session_stream = store.create_stream(
            self.stream_id("session"), tags=("SESSION",), creator=session_id
        )

    # ------------------------------------------------------------------
    # Stream naming
    # ------------------------------------------------------------------
    def stream_id(self, name: str) -> str:
        return f"{self.session_id}:{name}"

    @property
    def session_stream(self) -> Stream:
        return self._session_stream

    def create_stream(self, name: str, tags: Iterable[str] = (), creator: str = "") -> Stream:
        """Create a session-scoped stream, announcing it on the session stream."""
        self._ensure_open()
        stream = self.store.create_stream(self.stream_id(name), tags=tags, creator=creator)
        self.store.publish_control(
            self._session_stream.stream_id,
            Instruction.CREATE_STREAM,
            producer=creator or self.session_id,
            stream=stream.stream_id,
            tags=sorted(tags),
        )
        return stream

    def ensure_stream(self, name: str, creator: str = "") -> Stream:
        stream_id = self.stream_id(name)
        if self.store.has_stream(stream_id):
            return self.store.get_stream(stream_id)
        return self.create_stream(name, creator=creator)

    def streams(self) -> list[str]:
        prefix = f"{self.session_id}:"
        return [s for s in self.store.list_streams() if s.startswith(prefix)]

    # ------------------------------------------------------------------
    # Participation
    # ------------------------------------------------------------------
    def enter(self, agent_name: str) -> None:
        """Signal *agent_name*'s entry into the session."""
        self._ensure_open()
        with self._lock:
            if agent_name in self._participants:
                return
            self._participants.append(agent_name)
        self.store.publish_control(
            self._session_stream.stream_id,
            Instruction.ENTER_SESSION,
            producer=agent_name,
            agent=agent_name,
        )

    def exit(self, agent_name: str) -> None:
        """Signal *agent_name*'s exit from the session."""
        with self._lock:
            if agent_name not in self._participants:
                raise SessionError(f"agent {agent_name!r} is not in session {self.session_id}")
            self._participants.remove(agent_name)
        self.store.publish_control(
            self._session_stream.stream_id,
            Instruction.EXIT_SESSION,
            producer=agent_name,
            agent=agent_name,
        )

    def participants(self) -> list[str]:
        with self._lock:
            return list(self._participants)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.store.close_stream(self._session_stream.stream_id, producer=self.session_id)

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError(f"session {self.session_id} is closed")


class SessionManager:
    """Creates and looks up sessions on one stream store."""

    def __init__(self, store: StreamStore) -> None:
        self.store = store
        self._ids = IdGenerator()
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()

    def create(self, session_id: str | None = None) -> Session:
        with self._lock:
            if session_id is None:
                session_id = self._ids.next("sess")
            if session_id in self._sessions:
                raise SessionError(f"session already exists: {session_id!r}")
            session = Session(session_id, self.store)
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session: {session_id!r}")
        return session

    def active(self) -> list[str]:
        with self._lock:
            return sorted(sid for sid, s in self._sessions.items() if not s.closed)
