"""Budgets: live QoS accounting during plan execution.

"The task coordinator ... receives a plan ... along with an initial budget
and projected costs ... monitoring the execution ... and updating the
budget with actual costs incurred as the execution progresses"
(Section V-H).  :class:`Budget` is that record: a ledger of charges per
source, projections from the optimizer, and violation checks the
coordinator consults after every step.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..clock import SimClock
from ..errors import BudgetExceededError
from .qos import QoSSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability import MetricsRegistry
    from ..observability.metrics import CollectorSink

#: The calling thread's active charge-attribution key (see
#: :meth:`Budget.scoped`).  Module-level thread-local, like the id scope:
#: one scope covers every budget the task charges.
_CHARGE_SCOPE = threading.local()


class _ChargeScope:
    """Context manager attributing this thread's charges to one owner."""

    __slots__ = ("_key", "_saved")

    def __init__(self, key: str) -> None:
        self._key = key

    def __enter__(self) -> "_ChargeScope":
        self._saved = getattr(_CHARGE_SCOPE, "key", None)
        _CHARGE_SCOPE.key = self._key
        return self

    def __exit__(self, *exc_info: object) -> bool:
        _CHARGE_SCOPE.key = self._saved
        return False


@dataclass(frozen=True)
class Charge:
    """One ledger entry."""

    source: str
    cost: float
    latency: float
    quality: float | None
    timestamp: float
    note: str = ""


@dataclass
class Projection:
    """The optimizer's pre-execution estimate for the whole plan."""

    cost: float = 0.0
    latency: float = 0.0
    quality: float = 1.0


class Budget:
    """Tracks actual cost/latency/quality against a :class:`QoSSpec`."""

    def __init__(
        self,
        qos: QoSSpec | None = None,
        clock: SimClock | None = None,
        projection: Projection | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.qos = qos or QoSSpec.unconstrained()
        self._clock = clock or SimClock()
        self.projection = projection or Projection()
        self.metrics = metrics
        self._charges: list[Charge] = []
        self._scoped_charges: dict[str, list[Charge]] = {}
        self._spent_cost = 0.0
        self._cost_by_source: dict[str, float] = {}
        self._latency_by_source: dict[str, float] = {}
        self._start = self._clock.now()
        self._lock = threading.Lock()
        # Charging is a hot path, so the registry pulls from the ledger at
        # snapshot time (``budget.cost``/``budget.latency`` counters and
        # remaining-headroom gauges) instead of being pushed per charge.
        if metrics is not None:
            metrics.register_collector(self._collect_metrics)

    @property
    def clock(self) -> SimClock:
        return self._clock

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def charge(
        self,
        source: str,
        cost: float = 0.0,
        latency: float = 0.0,
        quality: float | None = None,
        note: str = "",
    ) -> Charge:
        """Record a charge; latency also advances the simulated clock.

        Clock-advance and ledger-append happen atomically under the
        budget lock: two threads charging concurrently each get a ledger
        position consistent with their timestamp (an interleaved
        advance/append could otherwise record timestamps out of order
        relative to the ledger).
        """
        if cost < 0 or latency < 0:
            raise ValueError("charges must be non-negative")
        with self._lock:
            if latency:
                self._clock.advance(latency)
            entry = Charge(
                source=source,
                cost=cost,
                latency=latency,
                quality=quality,
                timestamp=self._clock.now(),
                note=note,
            )
            self._charges.append(entry)
            scope = getattr(_CHARGE_SCOPE, "key", None)
            if scope is not None:
                self._scoped_charges.setdefault(scope, []).append(entry)
            self._spent_cost += cost
            self._cost_by_source[source] = (
                self._cost_by_source.get(source, 0.0) + cost
            )
            self._latency_by_source[source] = (
                self._latency_by_source.get(source, 0.0) + latency
            )
        return entry

    def scoped(self, key: str) -> _ChargeScope:
        """Attribute this thread's charges to *key* for one scope.

        The concurrent backend wraps each node task in a scope so the
        journal's effect record can slice out exactly that node's charges
        (:meth:`charges_of`) — the serial ledger-position marker is
        meaningless once other nodes append to the ledger concurrently.
        """
        return _ChargeScope(key)

    def charges_of(self, key: str) -> list[Charge]:
        """Ledger entries recorded under ``scoped(key)``, in charge order."""
        with self._lock:
            return list(self._scoped_charges.get(key, ()))

    @staticmethod
    def current_scope() -> str | None:
        """The calling thread's active charge-attribution key, if any."""
        return getattr(_CHARGE_SCOPE, "key", None)

    def restore(
        self,
        entries: "list[dict[str, float | str | None]]",
        started_at: float | None = None,
    ) -> None:
        """Replay journaled ledger entries into this (fresh) budget.

        Crash recovery rebuilds a dead coordinator's budget from the
        write-ahead journal: each entry is appended with its *original*
        timestamp and the clock is **not** advanced — the shared durable
        clock already moved when the charge was first paid, and advancing
        it again would double-count latency on replay.  ``started_at``
        rewinds the budget's epoch to the journaled plan start so
        :meth:`elapsed_latency` spans the whole execution, not just the
        post-crash tail.
        """
        with self._lock:
            for raw in entries:
                quality = raw.get("quality")
                entry = Charge(
                    source=str(raw.get("source", "restored")),
                    cost=float(raw.get("cost", 0.0) or 0.0),
                    latency=float(raw.get("latency", 0.0) or 0.0),
                    quality=None if quality is None else float(quality),
                    timestamp=float(raw.get("timestamp", 0.0) or 0.0),
                    note=str(raw.get("note", "")),
                )
                self._charges.append(entry)
                self._spent_cost += entry.cost
                self._cost_by_source[entry.source] = (
                    self._cost_by_source.get(entry.source, 0.0) + entry.cost
                )
                self._latency_by_source[entry.source] = (
                    self._latency_by_source.get(entry.source, 0.0) + entry.latency
                )
            if started_at is not None:
                self._start = started_at

    def _collect_metrics(self, sink: "CollectorSink") -> None:
        """Report the ledger into a metrics snapshot being assembled.

        Headroom gauges are only reported while finite: an unconstrained
        QoS (``max_cost = inf``) must never push ``inf`` into a snapshot
        (the sink skips non-finite values, so the normal unconstrained
        case stays quiet without even bumping the drop counter).
        """
        with self._lock:
            cost_by_source = dict(self._cost_by_source)
            latency_by_source = dict(self._latency_by_source)
            n_charges = len(self._charges)
        for source, cost in cost_by_source.items():
            sink.inc("budget.cost", cost, source=source)
        for source, latency in latency_by_source.items():
            sink.inc("budget.latency", latency, source=source)
        sink.inc("budget.charges", float(n_charges))
        sink.set_gauge("budget.remaining_cost", self.remaining_cost())
        sink.set_gauge("budget.remaining_latency", self.remaining_latency())

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def spent_cost(self) -> float:
        # Maintained incrementally under the charge lock; reading a float
        # attribute is atomic, and this is consulted per violation check.
        return self._spent_cost

    def elapsed_latency(self) -> float:
        return self._clock.now() - self._start

    def quality_estimate(self) -> float:
        """Product of recorded step qualities (1.0 when none recorded).

        Chained non-deterministic steps compound: a plan is only as good as
        the product of its steps' fidelities, which is the pessimistic
        estimate the coordinator uses for violation checks.
        """
        with self._lock:
            product = 1.0
            for entry in self._charges:
                if entry.quality is not None:
                    product *= entry.quality
            return product

    def remaining_cost(self) -> float:
        return self.qos.max_cost - self.spent_cost()

    def remaining_latency(self) -> float:
        return self.qos.max_latency - self.elapsed_latency()

    def charges(self) -> list[Charge]:
        with self._lock:
            return list(self._charges)

    def by_source(self) -> dict[str, float]:
        """Total cost per charging source."""
        with self._lock:
            return dict(self._cost_by_source)

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------
    def violation(self) -> str | None:
        """The violated QoS dimension, or None when within budget."""
        if self.spent_cost() > self.qos.max_cost:
            return "cost"
        if self.elapsed_latency() > self.qos.max_latency:
            return "latency"
        if self.quality_estimate() < self.qos.min_quality:
            return "quality"
        return None

    def check(self) -> None:
        """Raise :class:`BudgetExceededError` when any bound is violated."""
        dimension = self.violation()
        if dimension is not None:
            raise BudgetExceededError(
                f"budget violated on {dimension}: "
                f"cost={self.spent_cost():.4f}/{self.qos.max_cost} "
                f"latency={self.elapsed_latency():.2f}/{self.qos.max_latency} "
                f"quality={self.quality_estimate():.3f}>={self.qos.min_quality}",
                dimension=dimension,
            )

    def projected_overrun(self) -> str | None:
        """The dimension the *projection* (or spend, if already higher)
        would violate, or None when the plan looks affordable."""
        if max(self.spent_cost(), self.projection.cost) > self.qos.max_cost:
            return "cost"
        if max(self.elapsed_latency(), self.projection.latency) > self.qos.max_latency:
            return "latency"
        if self.projection.quality < self.qos.min_quality:
            return "quality"
        return None

    def summary(self) -> dict[str, float]:
        return {
            "cost": self.spent_cost(),
            "latency": self.elapsed_latency(),
            "quality": self.quality_estimate(),
            "charges": float(len(self.charges())),
        }
