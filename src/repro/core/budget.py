"""Budgets: live QoS accounting during plan execution.

"The task coordinator ... receives a plan ... along with an initial budget
and projected costs ... monitoring the execution ... and updating the
budget with actual costs incurred as the execution progresses"
(Section V-H).  :class:`Budget` is that record: a ledger of charges per
source, projections from the optimizer, and violation checks the
coordinator consults after every step.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..clock import SimClock
from ..errors import BudgetExceededError
from .qos import QoSSpec


@dataclass(frozen=True)
class Charge:
    """One ledger entry."""

    source: str
    cost: float
    latency: float
    quality: float | None
    timestamp: float
    note: str = ""


@dataclass
class Projection:
    """The optimizer's pre-execution estimate for the whole plan."""

    cost: float = 0.0
    latency: float = 0.0
    quality: float = 1.0


class Budget:
    """Tracks actual cost/latency/quality against a :class:`QoSSpec`."""

    def __init__(
        self,
        qos: QoSSpec | None = None,
        clock: SimClock | None = None,
        projection: Projection | None = None,
    ) -> None:
        self.qos = qos or QoSSpec.unconstrained()
        self._clock = clock or SimClock()
        self.projection = projection or Projection()
        self._charges: list[Charge] = []
        self._start = self._clock.now()
        self._lock = threading.Lock()

    @property
    def clock(self) -> SimClock:
        return self._clock

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def charge(
        self,
        source: str,
        cost: float = 0.0,
        latency: float = 0.0,
        quality: float | None = None,
        note: str = "",
    ) -> Charge:
        """Record a charge; latency also advances the simulated clock."""
        if cost < 0 or latency < 0:
            raise ValueError("charges must be non-negative")
        if latency:
            self._clock.advance(latency)
        entry = Charge(
            source=source,
            cost=cost,
            latency=latency,
            quality=quality,
            timestamp=self._clock.now(),
            note=note,
        )
        with self._lock:
            self._charges.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def spent_cost(self) -> float:
        with self._lock:
            return sum(entry.cost for entry in self._charges)

    def elapsed_latency(self) -> float:
        return self._clock.now() - self._start

    def quality_estimate(self) -> float:
        """Product of recorded step qualities (1.0 when none recorded).

        Chained non-deterministic steps compound: a plan is only as good as
        the product of its steps' fidelities, which is the pessimistic
        estimate the coordinator uses for violation checks.
        """
        with self._lock:
            product = 1.0
            for entry in self._charges:
                if entry.quality is not None:
                    product *= entry.quality
            return product

    def remaining_cost(self) -> float:
        return self.qos.max_cost - self.spent_cost()

    def remaining_latency(self) -> float:
        return self.qos.max_latency - self.elapsed_latency()

    def charges(self) -> list[Charge]:
        with self._lock:
            return list(self._charges)

    def by_source(self) -> dict[str, float]:
        """Total cost per charging source."""
        totals: dict[str, float] = {}
        for entry in self.charges():
            totals[entry.source] = totals.get(entry.source, 0.0) + entry.cost
        return totals

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------
    def violation(self) -> str | None:
        """The violated QoS dimension, or None when within budget."""
        if self.spent_cost() > self.qos.max_cost:
            return "cost"
        if self.elapsed_latency() > self.qos.max_latency:
            return "latency"
        if self.quality_estimate() < self.qos.min_quality:
            return "quality"
        return None

    def check(self) -> None:
        """Raise :class:`BudgetExceededError` when any bound is violated."""
        dimension = self.violation()
        if dimension is not None:
            raise BudgetExceededError(
                f"budget violated on {dimension}: "
                f"cost={self.spent_cost():.4f}/{self.qos.max_cost} "
                f"latency={self.elapsed_latency():.2f}/{self.qos.max_latency} "
                f"quality={self.quality_estimate():.3f}>={self.qos.min_quality}",
                dimension=dimension,
            )

    def projected_overrun(self) -> str | None:
        """The dimension the *projection* (or spend, if already higher)
        would violate, or None when the plan looks affordable."""
        if max(self.spent_cost(), self.projection.cost) > self.qos.max_cost:
            return "cost"
        if max(self.elapsed_latency(), self.projection.latency) > self.qos.max_latency:
            return "latency"
        if self.projection.quality < self.qos.min_quality:
            return "quality"
        return None

    def summary(self) -> dict[str, float]:
        return {
            "cost": self.spent_cost(),
            "latency": self.elapsed_latency(),
            "quality": self.quality_estimate(),
            "charges": float(len(self.charges())),
        }
