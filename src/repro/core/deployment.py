"""Simulated cluster deployment (Figure 2).

"In production setting, these components are distributed across different
clusters with varying compute and networking configurations ... deployed in
a distributed system with containers running each component, configured to
scale and restart on failure" (Sections IV, V-B).

This module simulates that story: a :class:`Cluster` of :class:`ClusterNode`
machines hosts :class:`Container` instances placed by resource profile;
each container runs an :class:`~repro.core.factory.AgentFactory` that spawns
its agents; a :class:`Supervisor` restarts failed containers, respawning
and re-attaching their agents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from ..clock import SimClock
from ..errors import DeploymentError
from .agent import Agent
from .context import AgentContext
from .factory import AgentFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .recovery import RecoveryManager

ContextFactory = Callable[[], AgentContext]


@dataclass(frozen=True)
class ResourceProfile:
    """Compute requirements/capacity (cpu cores, gpus, memory GB)."""

    cpu: float = 1.0
    gpu: int = 0
    memory_gb: float = 2.0

    def fits_into(self, capacity: "ResourceProfile") -> bool:
        return (
            self.cpu <= capacity.cpu
            and self.gpu <= capacity.gpu
            and self.memory_gb <= capacity.memory_gb
        )

    def minus(self, used: "ResourceProfile") -> "ResourceProfile":
        return ResourceProfile(
            cpu=self.cpu - used.cpu,
            gpu=self.gpu - used.gpu,
            memory_gb=self.memory_gb - used.memory_gb,
        )


class Container:
    """A container image running an AgentFactory with its agents."""

    def __init__(
        self,
        container_id: str,
        image: str,
        profile: ResourceProfile,
        factory: AgentFactory,
        context_factory: ContextFactory,
        agent_specs: tuple[tuple[str, dict[str, Any]], ...],
        restart_on_failure: bool = True,
    ) -> None:
        self.container_id = container_id
        self.image = image
        self.profile = profile
        self.restart_on_failure = restart_on_failure
        self._factory = factory
        self._context_factory = context_factory
        self._agent_specs = agent_specs
        self._agents: list[Agent] = []
        self.state = "created"  # created | running | failed | stopped
        self.restarts = 0
        self._lock = threading.RLock()

    def start(self) -> None:
        """Spawn and attach every configured agent.

        A failure partway through (an agent constructor or attach raising)
        rolls back the partially started agents and leaves the container
        ``failed`` — recoverable via :meth:`restart` — never stuck in
        ``created`` with orphaned agents.
        """
        with self._lock:
            if self.state == "running":
                raise DeploymentError(f"container {self.container_id} already running")
            self._agents = []
            try:
                for type_name, kwargs in self._agent_specs:
                    agent = self._factory.spawn(type_name, **kwargs)
                    self._agents.append(agent)
                    agent.attach(self._context_factory())
            except Exception:
                for agent in self._agents:
                    if agent.context is not None:
                        agent.crash()
                    self._factory.forget(agent)
                self._agents = []
                self.state = "failed"
                raise
            self.state = "running"

    def fail(self) -> None:
        """Simulate a crash: agents stop abruptly, no exit signals."""
        with self._lock:
            if self.state != "running":
                raise DeploymentError(
                    f"cannot fail container {self.container_id} in state {self.state}"
                )
            for agent in self._agents:
                agent.crash()
                self._factory.forget(agent)
            self._agents = []
            self.state = "failed"

    def stop(self) -> None:
        """Graceful shutdown: agents detach (exit their sessions)."""
        with self._lock:
            for agent in self._agents:
                agent.detach()
                self._factory.forget(agent)
            self._agents = []
            self.state = "stopped"

    def restart(self) -> None:
        """Respawn after a failure (the supervisor's recovery action).

        Re-entrant: ``restarts`` counts *attempts* and is committed under
        the lock before starting, and a failed start leaves the container
        ``failed`` so recovery can simply be tried again.  A ``stopped``
        container may also restart — that is how a quarantined container
        returns to service after :meth:`Supervisor.release`.
        """
        with self._lock:
            if self.state not in ("failed", "created", "stopped"):
                raise DeploymentError(
                    f"cannot restart container {self.container_id} in state {self.state}"
                )
            self.restarts += 1
            self.state = "created"
            self.start()

    def healthy(self) -> bool:
        """Liveness probe: running with every agent still attached."""
        with self._lock:
            return self.state == "running" and all(
                agent.context is not None for agent in self._agents
            )

    def agents(self) -> list[Agent]:
        with self._lock:
            return list(self._agents)


class ClusterNode:
    """One machine with fixed capacity."""

    def __init__(self, node_id: str, capacity: ResourceProfile) -> None:
        self.node_id = node_id
        self.capacity = capacity
        self.containers: list[Container] = []

    def available(self) -> ResourceProfile:
        remaining = self.capacity
        for container in self.containers:
            remaining = remaining.minus(container.profile)
        return remaining

    def can_host(self, profile: ResourceProfile) -> bool:
        return profile.fits_into(self.available())

    def host(self, container: Container) -> None:
        if not self.can_host(container.profile):
            raise DeploymentError(
                f"node {self.node_id} cannot host container {container.container_id}"
            )
        self.containers.append(container)


class Cluster:
    """Nodes plus first-fit placement by resource profile."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: list[ClusterNode] = []
        self._containers: dict[str, Container] = {}
        self._counter = 0
        self._lock = threading.Lock()

    def add_node(self, capacity: ResourceProfile, node_id: str | None = None) -> ClusterNode:
        with self._lock:
            if node_id is None:
                node_id = f"{self.name}-node-{len(self._nodes) + 1}"
            node = ClusterNode(node_id, capacity)
            self._nodes.append(node)
            return node

    def nodes(self) -> list[ClusterNode]:
        with self._lock:
            return list(self._nodes)

    def deploy(
        self,
        image: str,
        factory: AgentFactory,
        context_factory: ContextFactory,
        agent_specs: tuple[tuple[str, dict[str, Any]], ...],
        profile: ResourceProfile | None = None,
        restart_on_failure: bool = True,
    ) -> Container:
        """Create, place (first fit), and start a container."""
        profile = profile or ResourceProfile()
        with self._lock:
            self._counter += 1
            container = Container(
                container_id=f"{self.name}-ctr-{self._counter}",
                image=image,
                profile=profile,
                factory=factory,
                context_factory=context_factory,
                agent_specs=agent_specs,
                restart_on_failure=restart_on_failure,
            )
            placed = False
            for node in self._nodes:
                if node.can_host(profile):
                    node.host(container)
                    placed = True
                    break
            if not placed:
                raise DeploymentError(
                    f"no node in cluster {self.name} can host profile {profile}"
                )
            self._containers[container.container_id] = container
        container.start()
        return container

    def container(self, container_id: str) -> Container:
        with self._lock:
            container = self._containers.get(container_id)
        if container is None:
            raise DeploymentError(f"unknown container: {container_id!r}")
        return container

    def containers(self, state: str | None = None) -> list[Container]:
        with self._lock:
            found = list(self._containers.values())
        if state is not None:
            found = [c for c in found if c.state == state]
        return found

    def placement(self) -> dict[str, list[str]]:
        """node id -> hosted container ids (the Figure-2 view)."""
        return {
            node.node_id: [c.container_id for c in node.containers]
            for node in self.nodes()
        }


class Supervisor:
    """Restarts failed containers (the 'restart on failure' loop).

    Beyond the naive restart loop, the supervisor implements the
    production discipline the blueprint's "configured to scale and restart
    on failure" implies:

    * **health probes** — running containers whose agents have silently
      crashed are marked failed so the restart path picks them up,
    * **crash-loop detection** — consecutive restart attempts per
      container are budgeted (``max_restarts``); a container that keeps
      dying is *quarantined* (stopped) instead of thrashing forever.  A
      container observed healthy again has its attempt counter reset.
    * **restart backoff** — with a clock, successive restart attempts are
      spaced exponentially (``backoff_base * multiplier^attempts``), so a
      crash-looping container does not consume every supervision pass.
    * **crash-loop discrimination** — with a clock and a
      ``crash_loop_window``, a container that ran for at least the window
      since its last restart is treated as externally killed (a chaos
      kill, a spot reclaim) rather than crash-looping: its attempt counter
      resets before the restart is counted.  Only rapid-fire deaths —
      uptime shorter than the window — accumulate toward quarantine.
    * **plan recovery handoff** — with a :class:`RecoveryManager`, each
      pass ends by resuming any journaled plans the crashed containers'
      coordinators left incomplete, instead of dropping them.
    """

    def __init__(
        self,
        cluster: Cluster,
        clock: "SimClock | None" = None,
        max_restarts: int = 5,
        backoff_base: float = 1.0,
        backoff_multiplier: float = 2.0,
        backoff_max: float = 60.0,
        crash_loop_window: float | None = None,
        recovery: "RecoveryManager | None" = None,
    ) -> None:
        if max_restarts < 1:
            raise DeploymentError(f"max_restarts must be >= 1: {max_restarts}")
        self.cluster = cluster
        self.clock = clock
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.crash_loop_window = crash_loop_window
        self.recovery = recovery
        self.recoveries = 0
        #: Plan runs resumed through the recovery manager by tick().
        self.plan_recoveries = 0
        #: Containers whose restart budget ran out, now stopped.
        self.quarantined: list[str] = []
        self._attempts: dict[str, int] = {}
        self._not_before: dict[str, float] = {}
        self._last_restart_at: dict[str, float] = {}

    def probe(self, container: Container) -> bool:
        """Health-check one container; an unhealthy runner is failed."""
        if container.state != "running":
            return False
        if container.healthy():
            return True
        container.fail()
        return False

    def _backoff(self, attempts: int) -> float:
        return min(
            self.backoff_base * self.backoff_multiplier**attempts, self.backoff_max
        )

    def release(self, container_id: str) -> None:
        """Lift a quarantine: restore the container's restart eligibility.

        The operator's intervention after fixing whatever crash-looped.
        All supervision state for the container is reset — attempt
        counter, backoff deadline, uptime bookkeeping — so it re-enters
        service with a clean slate instead of inheriting the stale
        counters that got it quarantined (it would otherwise be
        re-quarantined on its first post-release failure).  The container
        itself stays stopped; the caller (or the next failure path)
        restarts it.
        """
        if container_id not in self.quarantined:
            raise DeploymentError(f"container not quarantined: {container_id!r}")
        self.quarantined.remove(container_id)
        self._attempts.pop(container_id, None)
        self._not_before.pop(container_id, None)
        self._last_restart_at.pop(container_id, None)

    def tick(self) -> list[str]:
        """One supervision pass; returns the ids of restarted containers."""
        # Probe pass: demote unhealthy runners, clear attempt counters of
        # containers that stayed healthy (a recovered service is no longer
        # crash-looping).
        for container in self.cluster.containers(state="running"):
            if self.probe(container):
                self._attempts.pop(container.container_id, None)
                self._not_before.pop(container.container_id, None)
        restarted = []
        for container in self.cluster.containers(state="failed"):
            if not container.restart_on_failure:
                continue
            container_id = container.container_id
            if container_id in self.quarantined:
                continue
            now = self.clock.now() if self.clock is not None else None
            attempts = self._attempts.get(container_id, 0)
            if (
                attempts
                and now is not None
                and self.crash_loop_window is not None
                and now - self._last_restart_at.get(container_id, now)
                >= self.crash_loop_window
            ):
                # The container ran for at least the window before dying:
                # an external kill, not a crash loop.  Forgive its history.
                attempts = 0
                self._not_before.pop(container_id, None)
            if attempts >= self.max_restarts:
                container.stop()  # quarantine: stop thrashing
                self.quarantined.append(container_id)
                continue
            if now is not None and now < self._not_before.get(container_id, 0.0):
                continue  # still backing off
            self._attempts[container_id] = attempts + 1
            if now is not None:
                self._not_before[container_id] = now + self._backoff(attempts)
            try:
                container.restart()
            except Exception:  # noqa: BLE001 - a failed restart is an attempt
                continue
            if now is not None:
                self._last_restart_at[container_id] = now
            self.recoveries += 1
            restarted.append(container_id)
        # Recovery handoff, last so restarted coordinators are back in the
        # session: resume any journaled plans still incomplete.  (A re-kill
        # during resume unwinds this tick; later ticks converge.)
        if self.recovery is not None and self.recovery.has_incomplete():
            self.plan_recoveries += len(self.recovery.resume_incomplete())
        return restarted
