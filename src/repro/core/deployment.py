"""Simulated cluster deployment (Figure 2).

"In production setting, these components are distributed across different
clusters with varying compute and networking configurations ... deployed in
a distributed system with containers running each component, configured to
scale and restart on failure" (Sections IV, V-B).

This module simulates that story: a :class:`Cluster` of :class:`ClusterNode`
machines hosts :class:`Container` instances placed by resource profile;
each container runs an :class:`~repro.core.factory.AgentFactory` that spawns
its agents; a :class:`Supervisor` restarts failed containers, respawning
and re-attaching their agents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import DeploymentError
from .agent import Agent
from .context import AgentContext
from .factory import AgentFactory

ContextFactory = Callable[[], AgentContext]


@dataclass(frozen=True)
class ResourceProfile:
    """Compute requirements/capacity (cpu cores, gpus, memory GB)."""

    cpu: float = 1.0
    gpu: int = 0
    memory_gb: float = 2.0

    def fits_into(self, capacity: "ResourceProfile") -> bool:
        return (
            self.cpu <= capacity.cpu
            and self.gpu <= capacity.gpu
            and self.memory_gb <= capacity.memory_gb
        )

    def minus(self, used: "ResourceProfile") -> "ResourceProfile":
        return ResourceProfile(
            cpu=self.cpu - used.cpu,
            gpu=self.gpu - used.gpu,
            memory_gb=self.memory_gb - used.memory_gb,
        )


class Container:
    """A container image running an AgentFactory with its agents."""

    def __init__(
        self,
        container_id: str,
        image: str,
        profile: ResourceProfile,
        factory: AgentFactory,
        context_factory: ContextFactory,
        agent_specs: tuple[tuple[str, dict[str, Any]], ...],
        restart_on_failure: bool = True,
    ) -> None:
        self.container_id = container_id
        self.image = image
        self.profile = profile
        self.restart_on_failure = restart_on_failure
        self._factory = factory
        self._context_factory = context_factory
        self._agent_specs = agent_specs
        self._agents: list[Agent] = []
        self.state = "created"  # created | running | failed | stopped
        self.restarts = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        """Spawn and attach every configured agent."""
        with self._lock:
            if self.state == "running":
                raise DeploymentError(f"container {self.container_id} already running")
            self._agents = []
            for type_name, kwargs in self._agent_specs:
                agent = self._factory.spawn(type_name, **kwargs)
                agent.attach(self._context_factory())
                self._agents.append(agent)
            self.state = "running"

    def fail(self) -> None:
        """Simulate a crash: agents stop abruptly, no exit signals."""
        with self._lock:
            if self.state != "running":
                raise DeploymentError(
                    f"cannot fail container {self.container_id} in state {self.state}"
                )
            for agent in self._agents:
                agent.crash()
                self._factory.forget(agent)
            self._agents = []
            self.state = "failed"

    def stop(self) -> None:
        """Graceful shutdown: agents detach (exit their sessions)."""
        with self._lock:
            for agent in self._agents:
                agent.detach()
                self._factory.forget(agent)
            self._agents = []
            self.state = "stopped"

    def restart(self) -> None:
        """Respawn after a failure (the supervisor's recovery action)."""
        with self._lock:
            if self.state != "failed":
                raise DeploymentError(
                    f"cannot restart container {self.container_id} in state {self.state}"
                )
            self.state = "created"
        self.start()
        self.restarts += 1

    def agents(self) -> list[Agent]:
        with self._lock:
            return list(self._agents)


class ClusterNode:
    """One machine with fixed capacity."""

    def __init__(self, node_id: str, capacity: ResourceProfile) -> None:
        self.node_id = node_id
        self.capacity = capacity
        self.containers: list[Container] = []

    def available(self) -> ResourceProfile:
        remaining = self.capacity
        for container in self.containers:
            remaining = remaining.minus(container.profile)
        return remaining

    def can_host(self, profile: ResourceProfile) -> bool:
        return profile.fits_into(self.available())

    def host(self, container: Container) -> None:
        if not self.can_host(container.profile):
            raise DeploymentError(
                f"node {self.node_id} cannot host container {container.container_id}"
            )
        self.containers.append(container)


class Cluster:
    """Nodes plus first-fit placement by resource profile."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: list[ClusterNode] = []
        self._containers: dict[str, Container] = {}
        self._counter = 0
        self._lock = threading.Lock()

    def add_node(self, capacity: ResourceProfile, node_id: str | None = None) -> ClusterNode:
        with self._lock:
            if node_id is None:
                node_id = f"{self.name}-node-{len(self._nodes) + 1}"
            node = ClusterNode(node_id, capacity)
            self._nodes.append(node)
            return node

    def nodes(self) -> list[ClusterNode]:
        with self._lock:
            return list(self._nodes)

    def deploy(
        self,
        image: str,
        factory: AgentFactory,
        context_factory: ContextFactory,
        agent_specs: tuple[tuple[str, dict[str, Any]], ...],
        profile: ResourceProfile | None = None,
        restart_on_failure: bool = True,
    ) -> Container:
        """Create, place (first fit), and start a container."""
        profile = profile or ResourceProfile()
        with self._lock:
            self._counter += 1
            container = Container(
                container_id=f"{self.name}-ctr-{self._counter}",
                image=image,
                profile=profile,
                factory=factory,
                context_factory=context_factory,
                agent_specs=agent_specs,
                restart_on_failure=restart_on_failure,
            )
            placed = False
            for node in self._nodes:
                if node.can_host(profile):
                    node.host(container)
                    placed = True
                    break
            if not placed:
                raise DeploymentError(
                    f"no node in cluster {self.name} can host profile {profile}"
                )
            self._containers[container.container_id] = container
        container.start()
        return container

    def container(self, container_id: str) -> Container:
        with self._lock:
            container = self._containers.get(container_id)
        if container is None:
            raise DeploymentError(f"unknown container: {container_id!r}")
        return container

    def containers(self, state: str | None = None) -> list[Container]:
        with self._lock:
            found = list(self._containers.values())
        if state is not None:
            found = [c for c in found if c.state == state]
        return found

    def placement(self) -> dict[str, list[str]]:
        """node id -> hosted container ids (the Figure-2 view)."""
        return {
            node.node_id: [c.container_id for c in node.containers]
            for node in self.nodes()
        }


class Supervisor:
    """Restarts failed containers (the 'restart on failure' loop)."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.recoveries = 0

    def tick(self) -> list[str]:
        """One supervision pass; returns the ids of restarted containers."""
        restarted = []
        for container in self.cluster.containers(state="failed"):
            if not container.restart_on_failure:
                continue
            container.restart()
            self.recoveries += 1
            restarted.append(container.container_id)
        return restarted
