"""Fleet execution: concurrent multi-plan scheduling.

One :class:`FleetScheduler` interleaves the wave steppers of many
admitted plans over a shared virtual timeline, with admission control
(max in-flight plans, FIFO backlog for batch runs; QoS-tiered weighted
fairness, rate limits, and queue deadlines for open-loop runs — see
:mod:`repro.core.overload`), per-model concurrency limits, and
single-flight LLM coalescing supplied by the shared catalog.  See
DESIGN.md §10 for the execution semantics and §11 for the overload
control plane.
"""

from .scheduler import (
    FleetEntry,
    FleetOffer,
    FleetPlanResult,
    FleetResult,
    FleetScheduler,
    FleetSubmission,
)

__all__ = [
    "FleetEntry",
    "FleetOffer",
    "FleetPlanResult",
    "FleetResult",
    "FleetScheduler",
    "FleetSubmission",
]
