"""Fleet execution: concurrent multi-plan scheduling.

One :class:`FleetScheduler` interleaves the wave steppers of many
admitted plans over a shared virtual timeline, with admission control
(max in-flight plans, FIFO backlog), per-model concurrency limits, and
single-flight LLM coalescing supplied by the shared catalog.  See
DESIGN.md §10 for the execution semantics.
"""

from .scheduler import (
    FleetEntry,
    FleetPlanResult,
    FleetResult,
    FleetScheduler,
    FleetSubmission,
)

__all__ = [
    "FleetEntry",
    "FleetPlanResult",
    "FleetResult",
    "FleetScheduler",
    "FleetSubmission",
]
