"""Deterministic multi-plan scheduling over one shared virtual timeline.

The blueprint is an *enterprise* architecture — many users, many
concurrent sessions — but a single :class:`~repro.core.coordinator.
TaskCoordinator` drives one plan at a time, so N sessions' simulated
makespan is the **sum** of N critical paths.  The fleet scheduler
interleaves the wave steppers of up to ``max_inflight`` admitted plans
over one shared :class:`~repro.core.scheduler.VirtualTimeline`:

* **Round-robin stepping.**  Each round steps every unfinished in-flight
  plan one dependency wave, in admission order.  Execution stays
  single-threaded; concurrency is simulated-time concurrency (each node
  runs on its own timeline branch), so runs are deterministic — the same
  submission order produces byte-identical streams, journals, and
  charges every time.

* **Admission control.**  At most ``max_inflight`` plans run at once;
  excess submissions wait in a FIFO backlog (at most ``max_backlog``
  deep, unbounded when None) and are admitted at the simulated instant
  the plan whose completion freed their slot ended.  Overflow beyond the
  backlog is rejected outright.  Counters: ``fleet.admitted`` /
  ``fleet.queued`` / ``fleet.rejected``; per-plan admission waits feed
  the ``fleet.queue_wait`` histogram.

* **Shared contention.**  Because every plan's LLM calls reserve slots
  against the catalog's shared :class:`~repro.llm.ModelCapacity` and
  coalesce through its shared :class:`~repro.llm.SingleFlight`, the
  fleet's makespan approaches ``max(critical paths)`` plus queueing
  delay — the quantity ``benchmarks/bench_fleet.py`` measures against
  serial execution.

Crash semantics match the plain path: an exception unwinding out of a
step (a chaos kill) closes the dying plan's span with the error, leaves
other in-flight spans open (the process "crashed"), and the shared
timeline still commits — per-plan journals remain resumable through the
ordinary :class:`~repro.core.recovery.RecoveryManager` machinery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence, TYPE_CHECKING

from ...clock import SimClock
from ...observability.span import NOOP_SPAN
from ..budget import Budget
from ..coordinator import PlanExecution, PlanRun, TaskCoordinator
from ..plan.task_plan import TaskPlan
from ..qos import QoSSpec
from ..scheduler import VirtualTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import Observability
    from ..agent import Agent


@dataclass
class FleetSubmission:
    """One plan offered to :meth:`Blueprint.run_fleet`.

    *agents* are attached to the plan's dedicated session before the
    coordinator (every planned agent must be a session participant);
    *qos* builds the plan's budget (None = unmetered).
    """

    plan: TaskPlan
    agents: Sequence["Agent"] = ()
    qos: QoSSpec | None = None


@dataclass
class FleetEntry:
    """A submission prepared for scheduling: plan + its session's driver."""

    plan: TaskPlan
    coordinator: TaskCoordinator
    budget: Budget | None = None


@dataclass
class FleetPlanResult:
    """Outcome of one submitted plan."""

    plan_id: str
    #: ``completed`` / ``failed`` / ``aborted`` (the run's status), or
    #: ``rejected`` when admission control never ran the plan.
    outcome: str
    run: PlanRun | None
    #: Simulated admission instant (None when rejected).
    admitted_at: float | None
    #: Simulated end of the plan's own critical path (None when rejected).
    finished_at: float | None
    #: Simulated seconds spent in the backlog before admission.
    queue_wait: float = 0.0


@dataclass
class FleetResult:
    """Aggregate outcome of one fleet run."""

    origin: float
    #: Simulated seconds from fleet start to the shared timeline horizon
    #: — ≈ max(per-plan critical paths) + contention, vs the serial sum.
    makespan: float
    plans: list[FleetPlanResult] = field(default_factory=list)
    admitted: int = 0
    queued: int = 0
    rejected: int = 0

    def completed(self) -> list[FleetPlanResult]:
        return [p for p in self.plans if p.outcome == "completed"]

    def runs(self) -> list[PlanRun]:
        return [p.run for p in self.plans if p.run is not None]


class _Active:
    """One in-flight plan: its entry, stepper, and admission bookkeeping."""

    __slots__ = ("index", "entry", "execution", "admitted_at")

    def __init__(
        self, index: int, entry: FleetEntry, execution: PlanExecution, admitted_at: float
    ) -> None:
        self.index = index
        self.entry = entry
        self.execution = execution
        self.admitted_at = admitted_at


class FleetScheduler:
    """Round-robins plan-wave steppers over a shared timeline."""

    def __init__(
        self,
        timeline: VirtualTimeline,
        clock: SimClock,
        max_inflight: int = 4,
        max_backlog: int | None = None,
        observability: "Observability | None" = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight}")
        if max_backlog is not None and max_backlog < 0:
            raise ValueError(f"max_backlog must be >= 0: {max_backlog}")
        self._timeline = timeline
        self._clock = clock
        self._max_inflight = max_inflight
        self._max_backlog = max_backlog
        self._observability = observability

    def run(self, entries: Sequence[FleetEntry]) -> FleetResult:
        """Drive every entry to an outcome; returns the aggregate result."""
        obs = self._observability
        metrics = (
            obs.metrics if obs is not None and obs.metrics.enabled else None
        )
        origin = self._timeline.origin
        results: dict[int, FleetPlanResult] = {}
        counts = {"admitted": 0, "queued": 0, "rejected": 0}
        span = (
            obs.span(
                "fleet",
                kind="fleet",
                plans=len(entries),
                max_inflight=self._max_inflight,
            )
            if obs is not None
            else NOOP_SPAN
        )
        with span:
            inflight: list[_Active] = []
            backlog: deque[tuple[int, FleetEntry]] = deque()
            # Intake in submission order: fill the in-flight window, then
            # the backlog, then reject (deterministic FIFO).
            for index, entry in enumerate(entries):
                if len(inflight) < self._max_inflight:
                    inflight.append(
                        self._admit(index, entry, origin, metrics, counts)
                    )
                elif (
                    self._max_backlog is None or len(backlog) < self._max_backlog
                ):
                    backlog.append((index, entry))
                    counts["queued"] += 1
                    if metrics is not None:
                        metrics.inc("fleet.queued")
                else:
                    counts["rejected"] += 1
                    if metrics is not None:
                        metrics.inc("fleet.rejected")
                    results[index] = FleetPlanResult(
                        plan_id=entry.plan.plan_id,
                        outcome="rejected",
                        run=None,
                        admitted_at=None,
                        finished_at=None,
                    )
            try:
                while inflight:
                    for active in inflight:
                        execution = active.execution
                        if execution.finished:
                            continue
                        try:
                            execution.step()
                        except BaseException as error:
                            # The dying plan's span closes with the error
                            # (as the plain path's ``with`` would); other
                            # plans' spans stay open — the process
                            # "crashed" mid-fleet.
                            execution.abandon(
                                f"{type(error).__name__}: {error}"
                            )
                            raise
                    done = [a for a in inflight if a.execution.finished]
                    # Free slots in simulated completion order (ties by
                    # admission index) so backlog admission times are
                    # deterministic and physically sensible.
                    done.sort(key=lambda a: (a.execution.plan_end, a.index))
                    for active in done:
                        inflight.remove(active)
                        results[active.index] = self._result_of(active, origin)
                        if backlog:
                            index, entry = backlog.popleft()
                            inflight.append(
                                self._admit(
                                    index,
                                    entry,
                                    active.execution.plan_end,
                                    metrics,
                                    counts,
                                )
                            )
            finally:
                # Land the shared clock on the fleet's critical path —
                # idempotent and kill-safe, exactly like the plain
                # path's per-plan commit.
                self._timeline.commit()
            makespan = self._timeline.horizon - origin
            span.set_attribute("makespan", makespan)
            span.set_attribute("admitted", counts["admitted"])
            span.set_attribute("queued", counts["queued"])
            span.set_attribute("rejected", counts["rejected"])
            return FleetResult(
                origin=origin,
                makespan=makespan,
                plans=[results[i] for i in sorted(results)],
                admitted=counts["admitted"],
                queued=counts["queued"],
                rejected=counts["rejected"],
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(
        self,
        index: int,
        entry: FleetEntry,
        at: float,
        metrics,
        counts: dict[str, int],
    ) -> _Active:
        # Rebase to the admission instant so the journal's plan_started
        # stamp (and everything else admission touches) reads it — a
        # backlog plan starts when its slot freed, not wherever the last
        # branch left the clock.
        self._clock.rebase(at)
        execution = entry.coordinator.begin_plan(
            entry.plan,
            budget=entry.budget,
            timeline=self._timeline,
            start_at=at,
        )
        counts["admitted"] += 1
        if metrics is not None:
            metrics.inc("fleet.admitted")
            metrics.histogram("fleet.queue_wait").observe(
                at - self._timeline.origin
            )
        return _Active(index, entry, execution, at)

    def _result_of(self, active: _Active, origin: float) -> FleetPlanResult:
        run = active.execution.result
        return FleetPlanResult(
            plan_id=active.entry.plan.plan_id,
            outcome=run.status if run is not None else "failed",
            run=run,
            admitted_at=active.admitted_at,
            finished_at=active.execution.plan_end,
            queue_wait=active.admitted_at - origin,
        )
