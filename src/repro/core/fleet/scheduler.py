"""Deterministic multi-plan scheduling over one shared virtual timeline.

The blueprint is an *enterprise* architecture — many users, many
concurrent sessions — but a single :class:`~repro.core.coordinator.
TaskCoordinator` drives one plan at a time, so N sessions' simulated
makespan is the **sum** of N critical paths.  The fleet scheduler
interleaves the wave steppers of up to ``max_inflight`` admitted plans
over one shared :class:`~repro.core.scheduler.VirtualTimeline`:

* **Round-robin stepping.**  Each round steps every unfinished in-flight
  plan one dependency wave, in admission order.  Execution stays
  single-threaded; concurrency is simulated-time concurrency (each node
  runs on its own timeline branch), so runs are deterministic — the same
  submission order produces byte-identical streams, journals, and
  charges every time.

* **Admission control.**  At most ``max_inflight`` plans run at once;
  excess submissions wait in a FIFO backlog (at most ``max_backlog``
  deep, unbounded when None) and are admitted at the simulated instant
  the plan whose completion freed their slot ended.  Overflow beyond the
  backlog is rejected outright.  Counters: ``fleet.admitted`` /
  ``fleet.queued`` / ``fleet.rejected``; per-plan admission waits feed
  the ``fleet.queue_wait`` histogram.

* **Shared contention.**  Because every plan's LLM calls reserve slots
  against the catalog's shared :class:`~repro.llm.ModelCapacity` and
  coalesce through its shared :class:`~repro.llm.SingleFlight`, the
  fleet's makespan approaches ``max(critical paths)`` plus queueing
  delay — the quantity ``benchmarks/bench_fleet.py`` measures against
  serial execution.

Crash semantics match the plain path: an exception unwinding out of a
step (a chaos kill) closes the dying plan's span with the error, leaves
other in-flight spans open (the process "crashed"), and the shared
timeline still commits — per-plan journals remain resumable through the
ordinary :class:`~repro.core.recovery.RecoveryManager` machinery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence, TYPE_CHECKING

from ...clock import SimClock
from ...observability.span import NOOP_SPAN
from ..budget import Budget
from ..coordinator import PlanExecution, PlanRun, TaskCoordinator
from ..engine import SERIAL, ExecutionBackend
from ..plan.task_plan import TaskPlan
from ..qos import QoSSpec
from ..scheduler import VirtualTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import Observability
    from ..agent import Agent
    from ..overload import AdmissionController, BrownoutController, FifoAdmission


@dataclass
class FleetSubmission:
    """One plan offered to :meth:`Blueprint.run_fleet`.

    *agents* are attached to the plan's dedicated session before the
    coordinator (every planned agent must be a session participant);
    *qos* builds the plan's budget (None = unmetered).  *tenant* /
    *tier* feed the overload control plane (rate limits, weighted-fair
    admission, shed eligibility); the defaults keep single-tenant runs
    unchanged.
    """

    plan: TaskPlan
    agents: Sequence["Agent"] = ()
    qos: QoSSpec | None = None
    tenant: str = "default"
    tier: int = 0


@dataclass
class FleetEntry:
    """A submission prepared for scheduling: plan + its session's driver."""

    plan: TaskPlan
    coordinator: TaskCoordinator
    budget: Budget | None = None
    tenant: str = "default"
    tier: int = 0


@dataclass
class FleetOffer:
    """One open-loop submission: an entry plus its arrival instant.

    ``arrival`` is absolute simulated time (at or after the shared
    timeline's origin) — normally the trace time of an
    :class:`~repro.core.overload.Arrival` shifted onto the clock.
    """

    entry: FleetEntry
    arrival: float


@dataclass
class FleetPlanResult:
    """Outcome of one submitted plan."""

    plan_id: str
    #: ``completed`` / ``failed`` / ``aborted`` (the run's status), or
    #: ``rejected`` when admission control never ran the plan.
    outcome: str
    run: PlanRun | None
    #: Simulated admission instant (None when rejected).
    admitted_at: float | None
    #: Simulated end of the plan's own critical path (None when rejected).
    finished_at: float | None
    #: Simulated seconds spent in the backlog before admission.
    queue_wait: float = 0.0
    #: Why admission refused the plan: ``backlog_full`` / ``rate_limited``
    #: / ``shed`` / ``deadline_expired`` (None unless ``rejected``).
    rejection_reason: str | None = None
    tenant: str = "default"
    tier: int = 0
    #: Open-loop arrival instant (equals ``admitted_at - queue_wait``
    #: for admitted plans; batch runs use the fleet origin).
    arrived_at: float | None = None


@dataclass
class FleetResult:
    """Aggregate outcome of one fleet run."""

    origin: float
    #: Simulated seconds from fleet start to the shared timeline horizon
    #: — ≈ max(per-plan critical paths) + contention, vs the serial sum.
    makespan: float
    plans: list[FleetPlanResult] = field(default_factory=list)
    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    #: Rejections by typed reason (sums to ``rejected``).
    rejected_by: dict[str, int] = field(default_factory=dict)

    def completed(self) -> list[FleetPlanResult]:
        return [p for p in self.plans if p.outcome == "completed"]

    def runs(self) -> list[PlanRun]:
        return [p.run for p in self.plans if p.run is not None]

    def by_tier(self) -> dict[int, list[FleetPlanResult]]:
        tiers: dict[int, list[FleetPlanResult]] = {}
        for plan in self.plans:
            tiers.setdefault(plan.tier, []).append(plan)
        return {tier: tiers[tier] for tier in sorted(tiers)}


class _Active:
    """One in-flight plan: its entry, stepper, and admission bookkeeping."""

    __slots__ = ("index", "entry", "execution", "admitted_at", "arrived_at")

    def __init__(
        self,
        index: int,
        entry: FleetEntry,
        execution: PlanExecution,
        admitted_at: float,
        arrived_at: float | None = None,
    ) -> None:
        self.index = index
        self.entry = entry
        self.execution = execution
        self.admitted_at = admitted_at
        self.arrived_at = arrived_at


class FleetScheduler:
    """Round-robins plan-wave steppers over a shared timeline."""

    def __init__(
        self,
        timeline: VirtualTimeline,
        clock: SimClock,
        max_inflight: int = 4,
        max_backlog: int | None = None,
        observability: "Observability | None" = None,
        admission: "AdmissionController | FifoAdmission | None" = None,
        brownout: "BrownoutController | None" = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight}")
        if max_backlog is not None and max_backlog < 0:
            raise ValueError(f"max_backlog must be >= 0: {max_backlog}")
        self._timeline = timeline
        self._clock = clock
        #: How in-flight plans' steps execute: the serial backend steps
        #: them in admission order on this thread (deterministic,
        #: byte-identical); a concurrent backend overlaps the round's
        #: steps on real threads.  Each round is still a barrier, so
        #: completion handling and backlog admission stay on this thread.
        self._backend: ExecutionBackend = backend if backend is not None else SERIAL
        self._max_inflight = max_inflight
        self._max_backlog = max_backlog
        self._observability = observability
        #: Open-loop admission gate (see :meth:`run_offers`); None builds
        #: a plain FIFO gate bounded by ``max_backlog`` — the pre-overload
        #: behavior, kept as the benchmark ablation.
        self._admission = admission
        #: Optional graceful-degradation state machine for open-loop runs.
        self._brownout = brownout
        # Admission accounting, pre-bound at wiring time: the unlabeled
        # queued/admitted counters become plain tallies pulled by a
        # collector (several schedulers on one registry sum on key
        # collision, matching the old always-accumulating counters), and
        # the queue-wait histogram is resolved once instead of per
        # admission.  Labeled rejection counters stay push-based — they
        # are cold and their label sets vary.
        self._queued_tally = 0
        self._admitted_tally = 0
        self._h_queue_wait = None
        if observability is not None and observability.metrics.enabled:
            metrics = observability.metrics
            self._h_queue_wait = metrics.histogram("fleet.queue_wait")
            metrics.register_collector(self._collect_metrics)

    def _collect_metrics(self, sink) -> None:
        # Never-incremented tallies stay out of the snapshot, exactly as
        # a never-touched counter never appeared.
        if self._queued_tally:
            sink.inc("fleet.queued", float(self._queued_tally))
        if self._admitted_tally:
            sink.inc("fleet.admitted", float(self._admitted_tally))

    def run(self, entries: Sequence[FleetEntry]) -> FleetResult:
        """Drive every entry to an outcome; returns the aggregate result."""
        obs = self._observability
        metrics = (
            obs.metrics if obs is not None and obs.metrics.enabled else None
        )
        origin = self._timeline.origin
        results: dict[int, FleetPlanResult] = {}
        counts = {"admitted": 0, "queued": 0, "rejected": 0}
        span = (
            obs.span(
                "fleet",
                kind="fleet",
                plans=len(entries),
                max_inflight=self._max_inflight,
            )
            if obs is not None
            else NOOP_SPAN
        )
        with span:
            inflight: list[_Active] = []
            backlog: deque[tuple[int, FleetEntry]] = deque()
            # Intake in submission order: fill the in-flight window, then
            # the backlog, then reject (deterministic FIFO).
            for index, entry in enumerate(entries):
                if len(inflight) < self._max_inflight:
                    inflight.append(
                        self._admit(index, entry, origin, metrics, counts)
                    )
                elif (
                    self._max_backlog is None or len(backlog) < self._max_backlog
                ):
                    backlog.append((index, entry))
                    counts["queued"] += 1
                    if metrics is not None:
                        self._queued_tally += 1
                else:
                    counts["rejected"] += 1
                    if metrics is not None:
                        metrics.inc(
                            "fleet.rejected",
                            reason="backlog_full",
                            tenant=entry.tenant,
                        )
                    results[index] = FleetPlanResult(
                        plan_id=entry.plan.plan_id,
                        outcome="rejected",
                        run=None,
                        admitted_at=None,
                        finished_at=None,
                        rejection_reason="backlog_full",
                        tenant=entry.tenant,
                        tier=entry.tier,
                        arrived_at=origin,
                    )
            try:
                while inflight:
                    # One round: every unfinished in-flight plan advances
                    # one wave.  The serial backend steps them in
                    # admission order (a crash — the dying plan's span
                    # closing with the error, as the plain path's ``with``
                    # would — re-raises immediately); the thread backend
                    # overlaps them and re-raises after the round barrier.
                    self._backend.step_round(
                        [a.execution for a in inflight if not a.execution.finished]
                    )
                    # Single-pass partition instead of a finished-scan
                    # plus per-item remove() — the round loop runs once
                    # per wave across the whole fleet.
                    done: list[_Active] = []
                    still: list[_Active] = []
                    for a in inflight:
                        (done if a.execution.finished else still).append(a)
                    if done:
                        inflight[:] = still
                    # Free slots in simulated completion order (ties by
                    # admission index) so backlog admission times are
                    # deterministic and physically sensible.
                    done.sort(key=lambda a: (a.execution.plan_end, a.index))
                    for active in done:
                        results[active.index] = self._result_of(active, origin)
                        if backlog:
                            index, entry = backlog.popleft()
                            inflight.append(
                                self._admit(
                                    index,
                                    entry,
                                    active.execution.plan_end,
                                    metrics,
                                    counts,
                                )
                            )
            finally:
                # Land the shared clock on the fleet's critical path —
                # idempotent and kill-safe, exactly like the plain
                # path's per-plan commit.
                self._timeline.commit()
            makespan = self._timeline.horizon - origin
            span.set_attribute("makespan", makespan)
            span.set_attribute("admitted", counts["admitted"])
            span.set_attribute("queued", counts["queued"])
            span.set_attribute("rejected", counts["rejected"])
            return FleetResult(
                origin=origin,
                makespan=makespan,
                plans=[results[i] for i in sorted(results)],
                admitted=counts["admitted"],
                queued=counts["queued"],
                rejected=counts["rejected"],
                rejected_by=(
                    {"backlog_full": counts["rejected"]}
                    if counts["rejected"]
                    else {}
                ),
            )

    def run_offers(self, offers: Sequence[FleetOffer]) -> FleetResult:
        """Drive an open-loop arrival stream through tiered admission.

        Unlike :meth:`run` (a fixed batch, all present at the origin),
        offers land at their own simulated arrival instants and flow
        through the overload control plane:

        1. **Intake** — at each scheduling instant, arrivals up to that
           instant hit the admission gate: the brownout controller may
           shed sheddable tiers at the door, the tenant's token bucket
           may refuse (``rate_limited``), the backlog may be full
           (``backlog_full``); otherwise the offer queues.
        2. **Expiry** — queued entries whose tier deadline passed are
           quarantined on their session's dead-letter stream
           (``deadline_expired``) instead of running hopelessly stale.
        3. **Fill** — free slots drain the queues by weighted fairness;
           the brownout controller degrades each admitted plan (model
           downshift, optional-node pruning) per its current level.

        Scheduling instants are the fleet origin, every plan completion,
        and — whenever slots are free and nothing is queued — each next
        arrival itself, so free capacity never idles past offered work.
        Everything is deterministic: same offers, same decisions, same
        bytes.  With no admission controller configured the gate is the
        PR-5 FIFO backlog, which is exactly the naive ablation the
        overload benchmark measures against.
        """
        from ..overload import FifoAdmission

        obs = self._observability
        metrics = (
            obs.metrics if obs is not None and obs.metrics.enabled else None
        )
        origin = self._timeline.origin
        gate = (
            self._admission
            if self._admission is not None
            else FifoAdmission(self._max_backlog)
        )
        brownout = self._brownout
        results: dict[int, FleetPlanResult] = {}
        counts = {"admitted": 0, "queued": 0, "rejected": 0}
        rejected_by: dict[str, int] = {}
        pending: deque[tuple[int, FleetOffer]] = deque(
            sorted(enumerate(offers), key=lambda pair: (pair[1].arrival, pair[0]))
        )
        span = (
            obs.span(
                "fleet",
                kind="fleet",
                plans=len(offers),
                max_inflight=self._max_inflight,
                mode="open-loop",
            )
            if obs is not None
            else NOOP_SPAN
        )
        with span:
            inflight: list[_Active] = []

            def reject(index: int, offer: FleetOffer, reason: str, at: float) -> None:
                counts["rejected"] += 1
                rejected_by[reason] = rejected_by.get(reason, 0) + 1
                if metrics is not None:
                    metrics.inc(
                        "fleet.rejected", reason=reason, tenant=offer.entry.tenant
                    )
                results[index] = FleetPlanResult(
                    plan_id=offer.entry.plan.plan_id,
                    outcome="rejected",
                    run=None,
                    admitted_at=None,
                    finished_at=None,
                    rejection_reason=reason,
                    tenant=offer.entry.tenant,
                    tier=offer.entry.tier,
                    arrived_at=offer.arrival,
                )

            def intake(upto: float) -> None:
                while pending and pending[0][1].arrival <= upto:
                    index, offer = pending.popleft()
                    entry = offer.entry
                    if brownout is not None and brownout.should_shed(
                        entry.tier, gate.sheddable(entry.tier)
                    ):
                        brownout.record_shed(
                            entry.plan.plan_id, entry.tenant, entry.tier, offer.arrival
                        )
                        reject(index, offer, "shed", offer.arrival)
                        continue
                    verdict = gate.offer(
                        (index, offer), entry.tenant, entry.tier, offer.arrival
                    )
                    if verdict != gate.QUEUED:
                        reject(index, offer, verdict, offer.arrival)

            def expire(at: float) -> None:
                for item, tenant, _tier, arrival in gate.expire(at):
                    index, offer = item
                    entry = offer.entry
                    # Park the stale plan on its session's dead-letter
                    # stream — replayable once pressure drains, exactly
                    # like a node that exhausted its retries.  Rebase
                    # first so the quarantine message is stamped at the
                    # expiry instant.
                    self._clock.rebase(at)
                    entry.coordinator.dead_letter_queue().quarantine(
                        plan=entry.plan.plan_id,
                        node="<backlog>",
                        agent="<fleet>",
                        inputs={"plan": entry.plan.to_payload()},
                        error=(
                            "queue deadline expired after waiting "
                            f"{at - arrival:.3f}s in the fleet backlog"
                        ),
                        error_type="QueueDeadlineExpired",
                        transient=True,
                    )
                    if metrics is not None:
                        metrics.inc("overload.expired", tenant=tenant)
                    reject(index, offer, "deadline_expired", at)

            def fill(at: float) -> None:
                while len(inflight) < self._max_inflight:
                    popped = gate.pop(at)
                    if popped is None:
                        return
                    (index, offer), _tenant, tier, arrival = popped
                    entry = offer.entry
                    start = max(at, arrival)
                    plan, actions = (
                        brownout.admit_plan(entry.plan, tier, start)
                        if brownout is not None
                        else (entry.plan, {})
                    )
                    if plan is not entry.plan:
                        entry = FleetEntry(
                            plan=plan,
                            coordinator=entry.coordinator,
                            budget=entry.budget,
                            tenant=entry.tenant,
                            tier=entry.tier,
                        )
                    if start > arrival:
                        counts["queued"] += 1
                        if metrics is not None:
                            self._queued_tally += 1
                    active = self._admit(
                        index, entry, start, metrics, counts, arrived_at=arrival
                    )
                    if actions:
                        plan_span = active.execution.span
                        plan_span.set_attribute("brownout_level", actions["level"])
                        if "downshifted" in actions:
                            plan_span.set_attribute(
                                "downshifted",
                                ",".join(
                                    f"{a}->{b}"
                                    for a, b in actions["downshifted"].items()
                                ),
                            )
                        if "pruned" in actions:
                            plan_span.set_attribute(
                                "pruned", ",".join(actions["pruned"])
                            )
                    inflight.append(active)

            def on_event(at: float) -> None:
                intake(at)
                expire(at)
                if brownout is not None:
                    brownout.observe(gate.depth(), at)
                fill(at)

            on_event(origin)
            try:
                while inflight or pending or gate.depth():
                    if not inflight:
                        if pending:
                            # Idle fleet: jump to the next arrival.
                            on_event(pending[0][1].arrival)
                            continue
                        # Queued entries with every slot free should have
                        # drained via fill(); never spin on a stuck gate.
                        break
                    # Free slots never idle past offered work: with the
                    # queues empty, pull the next arrivals in at their own
                    # instants until the window fills.
                    while (
                        pending
                        and gate.depth() == 0
                        and len(inflight) < self._max_inflight
                    ):
                        on_event(pending[0][1].arrival)
                    self._backend.step_round(
                        [a.execution for a in inflight if not a.execution.finished]
                    )
                    done = [a for a in inflight if a.execution.finished]
                    done.sort(key=lambda a: (a.execution.plan_end, a.index))
                    for active in done:
                        inflight.remove(active)
                        results[active.index] = self._result_of(active, origin)
                        on_event(active.execution.plan_end)
            finally:
                self._timeline.commit()
            makespan = self._timeline.horizon - origin
            span.set_attribute("makespan", makespan)
            span.set_attribute("admitted", counts["admitted"])
            span.set_attribute("queued", counts["queued"])
            span.set_attribute("rejected", counts["rejected"])
            for reason in sorted(rejected_by):
                span.set_attribute(f"rejected_{reason}", rejected_by[reason])
            if brownout is not None:
                span.set_attribute("brownout_level", brownout.level)
                span.set_attribute(
                    "brownout_transitions", len(brownout.transitions)
                )
            return FleetResult(
                origin=origin,
                makespan=makespan,
                plans=[results[i] for i in sorted(results)],
                admitted=counts["admitted"],
                queued=counts["queued"],
                rejected=counts["rejected"],
                rejected_by=rejected_by,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(
        self,
        index: int,
        entry: FleetEntry,
        at: float,
        metrics,
        counts: dict[str, int],
        arrived_at: float | None = None,
    ) -> _Active:
        # Rebase to the admission instant so the journal's plan_started
        # stamp (and everything else admission touches) reads it — a
        # backlog plan starts when its slot freed, not wherever the last
        # branch left the clock.
        self._clock.rebase(at)
        execution = entry.coordinator.begin_plan(
            entry.plan,
            budget=entry.budget,
            timeline=self._timeline,
            start_at=at,
            backend=self._backend,
        )
        counts["admitted"] += 1
        if metrics is not None:
            self._admitted_tally += 1
            # Batch runs measure waits from the fleet origin; open-loop
            # runs from each plan's own arrival instant.
            wait_base = (
                arrived_at if arrived_at is not None else self._timeline.origin
            )
            self._h_queue_wait.observe(at - wait_base)
        return _Active(index, entry, execution, at, arrived_at=arrived_at)

    def _result_of(self, active: _Active, origin: float) -> FleetPlanResult:
        run = active.execution.result
        arrived = active.arrived_at if active.arrived_at is not None else origin
        return FleetPlanResult(
            plan_id=active.entry.plan.plan_id,
            outcome=run.status if run is not None else "failed",
            run=run,
            admitted_at=active.admitted_at,
            finished_at=active.execution.plan_end,
            queue_wait=active.admitted_at - arrived,
            tenant=active.entry.tenant,
            tier=active.entry.tier,
            arrived_at=arrived,
        )
