"""Write-ahead journaling of plan-node lifecycle events.

The blueprint's streams "represent and persist the flow of data and
control" (Section III-B) — which is exactly what crash recovery needs:
execution state that outlives the process executing it.  The
:class:`WriteAheadJournal` records every plan-node lifecycle transition
(``plan_started`` / ``node_scheduled`` / ``node_started`` / ``effect`` /
``node_completed`` / ``node_compensated`` / ``plan_finished``) as ordinary
data messages on a per-session ``journal`` stream.  Because the stream
store is the durable substrate (it survives coordinator death the way a
database survives a client crash), a journal rebuilt over the same store
after a crash sees exactly the same history — the stream *is* the record,
the same discipline :class:`~repro.core.resilience.DeadLetterQueue` uses.

Journal messages are stamped by the store from the shared
:class:`~repro.clock.SimClock`, so two same-seed runs journal
byte-identically — the property the kill/resume determinism suite pins.

**Barriers.**  Between any two journal writes the coordinator crosses a
*barrier*: a named point where a crash is survivable with zero duplicate
effects.  :meth:`WriteAheadJournal.barrier` invokes an optional hook with
the barrier's site name; the chaos harness installs a hook that raises
:class:`~repro.errors.CoordinatorKilledError` to simulate a hard kill at
exactly that point (``boundary:`` sites before a node is scheduled,
``midnode:`` sites between its effect record and its completion record).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, TYPE_CHECKING

from .effects import EffectTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import MetricsRegistry
    from ...streams import Message, StreamStore
    from ..plan.task_plan import TaskPlan
    from ..qos import QoSSpec
    from ..session import Session

#: Tag carried by every journal record.
JOURNAL_TAG = "JOURNAL"

#: A barrier hook receives the site name; it may raise to simulate a kill.
BarrierHook = Callable[[str], None]

#: Terminal statuses a ``plan_finished`` record may carry.
TERMINAL_STATUSES = ("completed", "failed", "aborted", "compensated")


class WriteAheadJournal:
    """Durable, replayable log of plan execution on a session stream."""

    def __init__(
        self,
        store: "StreamStore",
        session: "Session | None" = None,
        stream_name: str = "journal",
        stream_id: str | None = None,
        producer: str = "RECOVERY_JOURNAL",
        barrier_hook: BarrierHook | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.store = store
        self.session = session
        self.producer = producer
        self.barrier_hook = barrier_hook
        self.metrics = metrics
        # Hot-path accounting: ``record`` bumps a plain tally and the
        # registry pulls it at snapshot time (several journals may share
        # a registry — collector sums merge on key collision).
        self._event_tally: dict[str, int] = {}
        if metrics is not None:
            metrics.register_collector(self._collect_metrics)
        if session is not None:
            self.stream = session.ensure_stream(stream_name, creator=producer)
        elif stream_id is not None:
            self.stream = store.get_stream(stream_id)
        else:
            raise ValueError("WriteAheadJournal needs a session or a stream_id")
        #: The idempotent-effect view over this journal.
        self.effects = EffectTable(self)

    @classmethod
    def over_stream(cls, store: "StreamStore", stream_id: str) -> "WriteAheadJournal":
        """Attach to an existing journal stream (post-hoc analysis over a
        replayed store: ``repro recover --export``)."""
        return cls(store, session=None, stream_id=stream_id)

    # ------------------------------------------------------------------
    # Barriers (the chaos kill sites)
    # ------------------------------------------------------------------
    def barrier(self, site: str) -> None:
        """Cross a named checkpoint barrier; the hook may kill us here."""
        if self.barrier_hook is not None:
            self.barrier_hook(site)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _collect_metrics(self, sink: Any) -> None:
        for event, count in self._event_tally.items():
            sink.inc("journal.records", count, event=event)

    def record(self, event: str, plan_id: str, **fields: Any) -> "Message":
        """Append one journal record (a durable stream message)."""
        if self.metrics is not None:
            tally = self._event_tally
            tally[event] = tally.get(event, 0) + 1
        return self.store.publish_data(
            self.stream.stream_id,
            {"event": event, "plan": plan_id, **fields},
            tags=(JOURNAL_TAG,),
            producer=self.producer,
        )

    def plan_started(
        self, plan: "TaskPlan", qos: "QoSSpec | None" = None, attempt: int = 0
    ) -> None:
        """The plan is about to execute; journal everything resume needs:
        the full plan payload and the QoS envelope of its budget."""
        qos_payload = None
        if qos is not None:
            qos_payload = {
                "max_cost": qos.max_cost,
                "max_latency": qos.max_latency,
                "min_quality": qos.min_quality,
                "objective": qos.objective,
            }
        self.record(
            "plan_started",
            plan.plan_id,
            goal=plan.goal,
            payload=plan.to_payload(),
            qos=qos_payload,
            attempt=attempt,
            started_at=self.store.clock.now(),
        )

    def node_scheduled(self, plan_id: str, node_id: str, agent: str) -> None:
        self.record("node_scheduled", plan_id, node=node_id, agent=agent)

    def node_started(self, plan_id: str, node_id: str, agent: str) -> None:
        self.record("node_started", plan_id, node=node_id, agent=agent)

    def node_completed(
        self, plan_id: str, node_id: str, outputs: dict[str, Any]
    ) -> None:
        self.record("node_completed", plan_id, node=node_id, outputs=outputs)

    def node_compensated(self, plan_id: str, node_id: str, agent: str) -> None:
        self.record("node_compensated", plan_id, node=node_id, agent=agent)

    def plan_finished(
        self, plan_id: str, status: str, reason: str | None = None
    ) -> None:
        """Terminal record; a plan without one is *incomplete* (resumable)."""
        if status not in TERMINAL_STATUSES:
            raise ValueError(f"unknown terminal status: {status!r}")
        self.record("plan_finished", plan_id, status=status, reason=reason)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(self, plan_id: str | None = None) -> list[dict[str, Any]]:
        """Journal record payloads in append order (optionally one plan's)."""
        return list(self.iter_entries(plan_id))

    def iter_entries(self, plan_id: str | None = None) -> Iterator[dict[str, Any]]:
        for message in self.stream.messages():
            if not (message.is_data and message.has_tag(JOURNAL_TAG)):
                continue
            payload = message.payload
            if not isinstance(payload, dict) or "event" not in payload:
                continue
            if plan_id is not None and payload.get("plan") != plan_id:
                continue
            yield payload

    def plan_ids(self) -> list[str]:
        """Every plan that ever journaled, in first-seen order."""
        seen: dict[str, None] = {}
        for entry in self.iter_entries():
            seen.setdefault(entry["plan"], None)
        return list(seen)

    def terminal_status(self, plan_id: str) -> str | None:
        """The plan's latest terminal status, or None while incomplete.

        A ``plan_started`` written after a terminal record (a replan)
        re-opens the plan — the scan keeps the *last* transition.
        """
        status: str | None = None
        for entry in self.iter_entries(plan_id):
            if entry["event"] == "plan_started":
                status = None
            elif entry["event"] == "plan_finished":
                status = entry.get("status")
        return status

    def incomplete_plans(self) -> list[str]:
        """Plans with a ``plan_started`` but no terminal record after it."""
        return [p for p in self.plan_ids() if self.terminal_status(p) is None]

    def describe(self) -> dict[str, Any]:
        events: dict[str, int] = {}
        for entry in self.iter_entries():
            events[entry["event"]] = events.get(entry["event"], 0) + 1
        return {
            "stream": self.stream.stream_id,
            "records": sum(events.values()),
            "events": events,
            "plans": len(self.plan_ids()),
            "incomplete": self.incomplete_plans(),
        }
