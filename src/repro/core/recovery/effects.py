"""Idempotency keys and the effect table: exactly-once effects under
at-least-once execution.

A crash-recovered coordinator re-drives its plan from the journal, which
means any node may be *executed* more than once.  Side effects, however,
must land exactly once: an LLM call must not be paid for twice, a storage
write must not duplicate, a stream publish must not re-trigger consumers.
The discipline is the standard one from durable workflow engines: every
side-effecting operation carries a deterministic **idempotency key**, and
its journaled result is consulted *before* re-executing — a replayed
operation returns the journaled result instead of running again.

The :class:`EffectTable` is a view over the write-ahead journal's
``effect`` records, indexed by key.  Because the journal lives on the
durable stream store, the table rebuilt after a crash sees every effect
the dead coordinator recorded — which is exactly the set that must not
re-execute.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .journal import WriteAheadJournal


def idempotency_key(plan_id: str, node_id: str, op: str, attempt: int = 0) -> str:
    """Deterministic key for one side-effecting operation.

    ``plan/node/op`` identifies the operation within a plan execution;
    *attempt* namespaces replan escalations (attempt 0 omits the suffix so
    keys stay stable for the common case), which keeps a replanned
    re-execution from silently reusing the aborted attempt's effects.
    """
    base = f"{plan_id}/{node_id}/{op}"
    if attempt:
        return f"{base}#a{attempt}"
    return base


class EffectTable:
    """Key -> journaled-result index over a journal's ``effect`` records.

    Reads are incremental: the table keeps a cursor into the journal
    stream and folds newly appended records into its index on each lookup,
    so a long-lived coordinator pays O(new records), not O(history), per
    node.  A table constructed over an existing journal stream (crash
    recovery) starts its cursor at zero and therefore absorbs the entire
    pre-crash history on first use.
    """

    EVENT = "effect"

    def __init__(self, journal: "WriteAheadJournal") -> None:
        self._journal = journal
        self._index: dict[str, dict[str, Any]] = {}
        self._offset = 0

    def _refresh(self) -> None:
        messages = self._journal.stream.read(self._offset)
        self._offset += len(messages)
        for message in messages:
            payload = message.payload
            if (
                message.is_data
                and isinstance(payload, dict)
                and payload.get("event") == self.EVENT
                and "key" in payload
            ):
                self._index[payload["key"]] = payload

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The journaled effect record for *key*, or None if never run."""
        self._refresh()
        return self._index.get(key)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        self._refresh()
        return len(self._index)

    def keys(self) -> list[str]:
        self._refresh()
        return list(self._index)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, key: str, plan_id: str, **fields: Any) -> dict[str, Any]:
        """Journal the result of a side-effecting operation under *key*."""
        message = self._journal.record(self.EVENT, plan_id, key=key, **fields)
        self._index[key] = message.payload
        return message.payload

    def execute(
        self, key: str, plan_id: str, fn: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Run *fn* exactly once under *key*.

        Returns ``(result, replayed)``: on a key hit the journaled result
        is returned without calling *fn* (``replayed=True``); otherwise
        *fn* runs and its result is journaled before returning.
        """
        hit = self.get(key)
        if hit is not None:
            return hit.get("result"), True
        result = fn()
        self.record(key, plan_id, result=result)
        return result, False
