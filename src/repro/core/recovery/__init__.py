"""Crash recovery: durable plan checkpointing, idempotent replay, and
saga compensation.

The coordinator write-ahead journals every plan-node lifecycle transition
to a durable session stream; the :class:`EffectTable` makes node effects
exactly-once under at-least-once execution; the :class:`RecoveryManager`
reconstructs coordinator state from the journal after a process death,
resumes only incomplete nodes, and runs saga compensations (reverse
completion order) for plans abandoned past their budget.
"""

from .effects import EffectTable, idempotency_key
from .journal import JOURNAL_TAG, TERMINAL_STATUSES, WriteAheadJournal
from .manager import RecoveredPlan, RecoveryManager
from .saga import Compensation, CompensationRegistry

__all__ = [
    "Compensation",
    "CompensationRegistry",
    "EffectTable",
    "JOURNAL_TAG",
    "RecoveredPlan",
    "RecoveryManager",
    "TERMINAL_STATUSES",
    "WriteAheadJournal",
    "idempotency_key",
]
