"""Saga compensations: undoing committed steps of an abandoned plan.

A plan that cannot be resumed — its budget is already violated, its QoS
latency window has closed — still leaked side effects from the nodes that
*did* complete before the crash.  The saga pattern's answer is a
registered **compensation** per agent: a semantic undo (cancel the
reservation, delete the draft, refund the hold) that the recovery manager
runs for each completed node in *reverse completion order*, the same
order a transaction log is rolled back, so later steps that depended on
earlier ones are undone before their dependencies.
"""

from __future__ import annotations

from typing import Any, Callable

#: A compensation undoes one completed node: ``fn(plan_id, node_id, outputs)``.
Compensation = Callable[[str, str, dict[str, Any]], None]


class CompensationRegistry:
    """Per-agent semantic-undo handlers for saga rollback."""

    def __init__(self) -> None:
        self._by_agent: dict[str, Compensation] = {}

    def register(self, agent_name: str, fn: Compensation) -> None:
        """Register *fn* as the undo for nodes executed by *agent_name*."""
        self._by_agent[agent_name] = fn

    def for_agent(self, agent_name: str) -> Compensation | None:
        return self._by_agent.get(agent_name)

    def agents(self) -> list[str]:
        return sorted(self._by_agent)

    def __contains__(self, agent_name: str) -> bool:
        return agent_name in self._by_agent

    def __len__(self) -> int:
        return len(self._by_agent)
