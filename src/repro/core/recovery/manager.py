"""The recovery manager: journal snapshot -> reconstructed execution.

Given a write-ahead journal (on the durable stream store that outlived
the crashed coordinator), the :class:`RecoveryManager`:

* finds **incomplete plans** — journaled ``plan_started`` with no terminal
  record,
* **reconstructs** each one's coordinator state: the plan DAG (journaled
  in full at start), the completed nodes' outputs, the charges already
  paid, and the QoS envelope,
* **resumes** execution through a live coordinator, which skips completed
  nodes outright and replays in-doubt nodes from their journaled effect
  records (exactly-once effects under at-least-once execution),
* or, when the plan is already past salvaging — its restored budget is
  violated on cost, latency, or quality — runs the registered **saga
  compensations** for its completed nodes in reverse order and closes the
  plan as ``compensated``.

Everything is observable: resumes run under ``recovery``-kind spans and
bump the ``recovery.resumed_plans`` / ``recovery.resumed_nodes`` /
``recovery.replayed_effects`` / ``recovery.compensations`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from ...errors import CoordinationError
from ..budget import Budget
from ..plan.task_plan import TaskPlan
from ..qos import QoSSpec
from .saga import CompensationRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...clock import SimClock
    from ..coordinator import PlanRun, TaskCoordinator
    from .journal import WriteAheadJournal

#: The coordinator handle: an instance, or a factory returning the current
#: instance (a supervisor-restarted container respawns a fresh one).
CoordinatorSource = "TaskCoordinator | Callable[[], TaskCoordinator | None] | None"


@dataclass
class RecoveredPlan:
    """One plan's execution state reconstructed from the journal."""

    plan_id: str
    plan: TaskPlan | None = None
    goal: str = ""
    qos: dict[str, Any] | None = None
    started_at: float | None = None
    attempt: int = 0
    #: Outputs of nodes whose completion record made it to the journal.
    node_outputs: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Completed node ids in completion order (the compensation order,
    #: reversed).
    executed: list[str] = field(default_factory=list)
    #: Journaled charges (ledger entries) already paid by this plan.
    charges: list[dict[str, Any]] = field(default_factory=list)
    #: Terminal status, or None while the plan is incomplete.
    terminal: str | None = None
    #: Node ids of journaled effect records (includes in-doubt nodes).
    effect_nodes: list[str] = field(default_factory=list)

    @property
    def incomplete(self) -> bool:
        return self.terminal is None and self.plan is not None

    def remaining_nodes(self) -> list[str]:
        """Plan nodes with no completion record, in execution order."""
        if self.plan is None:
            return []
        done = set(self.executed)
        return [n.node_id for n in self.plan.order() if n.node_id not in done]

    def describe(self) -> dict[str, Any]:
        return {
            "plan": self.plan_id,
            "goal": self.goal,
            "status": self.terminal or "incomplete",
            "nodes_total": len(self.plan) if self.plan is not None else 0,
            "nodes_completed": len(self.executed),
            "nodes_remaining": self.remaining_nodes(),
            "effects_recorded": len(self.effect_nodes),
            "cost_paid": round(sum(c.get("cost", 0.0) for c in self.charges), 6),
        }


class RecoveryManager:
    """Resumes (or compensates) journaled plans after a coordinator death."""

    def __init__(
        self,
        journal: "WriteAheadJournal",
        coordinator: CoordinatorSource = None,  # type: ignore[valid-type]
        compensations: CompensationRegistry | None = None,
    ) -> None:
        self.journal = journal
        self._coordinator = coordinator
        self.compensations = compensations or CompensationRegistry()

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def snapshot(self, plan_id: str) -> RecoveredPlan:
        """Fold the journal into one plan's reconstructed state.

        A ``plan_started`` after a terminal record (a replan) resets the
        fold — the snapshot describes the *latest* execution attempt.
        """
        snap = RecoveredPlan(plan_id=plan_id)
        for entry in self.journal.iter_entries(plan_id):
            event = entry["event"]
            if event == "plan_started":
                snap = RecoveredPlan(
                    plan_id=plan_id,
                    plan=TaskPlan.from_payload(entry["payload"]),
                    goal=entry.get("goal", ""),
                    qos=entry.get("qos"),
                    attempt=int(entry.get("attempt", 0)),
                    started_at=(
                        float(entry["started_at"])
                        if entry.get("started_at") is not None
                        else None
                    ),
                )
            elif event == "node_completed":
                node = entry["node"]
                snap.node_outputs[node] = dict(entry.get("outputs") or {})
                if node not in snap.executed:
                    snap.executed.append(node)
            elif event == "effect":
                snap.charges.extend(entry.get("charges") or [])
                node = entry.get("node")
                if node and node not in snap.effect_nodes:
                    snap.effect_nodes.append(node)
            elif event == "plan_finished":
                snap.terminal = entry.get("status")
        return snap

    def incomplete_plans(self) -> list[str]:
        return self.journal.incomplete_plans()

    def has_incomplete(self) -> bool:
        return bool(self.incomplete_plans())

    def restore_budget(
        self, snap: RecoveredPlan, clock: "SimClock", metrics: Any = None
    ) -> Budget:
        """A fresh budget carrying everything the dead coordinator's one
        had: the journaled QoS envelope, every journaled charge, and the
        plan's original start time — replayed without advancing the clock
        (the clock is durable; its time already includes those charges)."""
        qos = QoSSpec(**snap.qos) if snap.qos else None
        budget = Budget(qos=qos, clock=clock, metrics=metrics)
        budget.restore(snap.charges, started_at=snap.started_at)
        return budget

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _resolve_coordinator(
        self, coordinator: "TaskCoordinator | None"
    ) -> "TaskCoordinator | None":
        source = coordinator if coordinator is not None else self._coordinator
        if callable(source):
            source = source()
        return source

    def resume(
        self,
        plan_id: str,
        coordinator: "TaskCoordinator | None" = None,
        budget: Budget | None = None,
    ) -> "PlanRun | None":
        """Resume one incomplete plan through *coordinator*.

        Completed nodes are restored from the journal, not re-executed;
        in-doubt nodes replay their journaled effects; only genuinely
        unexecuted nodes are re-scheduled.  A plan whose restored budget
        is already violated is not resumed — its completed nodes are
        compensated (reverse order) and the plan closes ``compensated``.

        Returns the resumed :class:`~repro.core.coordinator.PlanRun`, or
        None when there was nothing to resume (unknown/terminal plan, no
        live coordinator) or the plan was abandoned to compensation.
        """
        coordinator = self._resolve_coordinator(coordinator)
        if coordinator is None or coordinator.context is None:
            return None
        context = coordinator.context
        snap = self.snapshot(plan_id)
        if not snap.incomplete:
            return None
        with context.span(
            f"recover:{plan_id}",
            kind="recovery",
            plan=plan_id,
            completed_nodes=len(snap.executed),
        ) as span:
            if budget is None:
                budget = context.budget or self.restore_budget(
                    snap, context.clock, metrics=context.metrics
                )
            violation = budget.violation()
            if violation is not None:
                span.set_attribute("abandoned", violation)
                compensated = self.compensate(snap, context)
                span.set_attribute("compensated_nodes", len(compensated))
                return None
            remaining = snap.remaining_nodes()
            span.set_attribute("resumed_nodes", len(remaining))
            context.metric_inc("recovery.resumed_plans")
            context.metric_inc("recovery.resumed_nodes", float(len(remaining)))
            run = coordinator.resume_plan(snap, budget=budget)
            span.set_attribute("status", run.status)
            if run.status != "completed":
                span.set_error(run.abort_reason or run.status)
            return run

    def resume_incomplete(
        self,
        coordinator: "TaskCoordinator | None" = None,
        budget: Budget | None = None,
    ) -> list["PlanRun"]:
        """Resume every incomplete journaled plan; returns the runs."""
        runs = []
        for plan_id in self.incomplete_plans():
            run = self.resume(plan_id, coordinator=coordinator, budget=budget)
            if run is not None:
                runs.append(run)
        return runs

    # ------------------------------------------------------------------
    # Saga compensation
    # ------------------------------------------------------------------
    def compensate(self, snap: RecoveredPlan, context: Any = None) -> list[str]:
        """Undo *snap*'s completed nodes in reverse completion order.

        Nodes whose agent has no registered compensation are skipped (an
        effect with no undo is, by definition, not compensable — the
        journal still closes the plan so it stops being re-examined).
        Returns the compensated node ids, in the order they were undone.
        """
        if snap.plan is None:
            raise CoordinationError(
                f"cannot compensate plan {snap.plan_id!r}: no journaled plan payload"
            )
        compensated: list[str] = []
        for node_id in reversed(snap.executed):
            node = snap.plan.node(node_id)
            fn = self.compensations.for_agent(node.agent)
            if fn is None:
                continue
            fn(snap.plan_id, node_id, snap.node_outputs.get(node_id, {}))
            self.journal.node_compensated(snap.plan_id, node_id, node.agent)
            if context is not None:
                context.metric_inc("recovery.compensations")
            compensated.append(node_id)
        self.journal.plan_finished(
            snap.plan_id,
            "compensated",
            reason=f"abandoned with {len(snap.executed)} completed nodes",
        )
        return compensated

    def describe(self) -> dict[str, Any]:
        return {
            "journal": self.journal.describe(),
            "incomplete": [
                self.snapshot(p).describe() for p in self.incomplete_plans()
            ],
            "compensations": self.compensations.agents(),
        }
