"""Retry policies: exponential backoff with deterministic jitter.

"Agents can demonstrate non-deterministic behavior ... requiring error
handling and retry mechanisms" (Section VII).  A :class:`RetryPolicy`
decides *whether* a failure is worth retrying (transient vs fatal, via the
:class:`~repro.errors.ReproError` hierarchy's ``transient`` flag) and *how
long* to back off before the next attempt.  Backoff is charged to the
simulated clock — and, when a budget is supplied, to the budget's latency
ledger — so reliability spends show up in QoS accounting like any other
cost.

Jitter is deterministic: it is derived by hashing ``(seed, key, attempt)``,
never from global randomness, so two runs of the same seeded scenario back
off identically and traces replay byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from ...errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...clock import SimClock
    from ...observability import MetricsRegistry
    from ..budget import Budget


def classify_error(error: BaseException) -> str:
    """``"transient"`` (worth retrying) or ``"fatal"`` (fail fast).

    Library errors carry their own classification; common OS-level blips
    (timeouts, dropped connections) are transient; everything else —
    programming errors, validation failures — is fatal.
    """
    if isinstance(error, ReproError):
        return "transient" if error.transient else "fatal"
    if isinstance(error, (TimeoutError, ConnectionError, InterruptedError)):
        return "transient"
    return "fatal"


def is_transient(error: BaseException) -> bool:
    return classify_error(error) == "transient"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: total tries including the first (1 = no retries).
        base_delay: backoff before the first retry, in simulated seconds.
        multiplier: exponential growth factor per further retry.
        max_delay: backoff ceiling.
        jitter: fraction of the raw delay randomized away (0 = none,
            0.5 = delays land in ``[0.5 * raw, raw]``).
        seed: jitter seed; same seed + key + attempt => same delay.
        retry_all: when True, retry fatal errors too (legacy
            immediate-retry behavior; used by ``max_node_retries``).
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5
    seed: int = 0
    retry_all: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt, no retries."""
        return cls(max_attempts=1, base_delay=0.0)

    @classmethod
    def immediate(cls, retries: int) -> "RetryPolicy":
        """Naive policy: *retries* extra attempts, zero backoff, any error."""
        return cls(max_attempts=retries + 1, base_delay=0.0, retry_all=True)

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether to retry after *attempt* (1-based) failed with *error*."""
        if attempt >= self.max_attempts:
            return False
        return self.retry_all or is_transient(error)

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff (simulated seconds) before retry number *attempt*.

        *attempt* is 1-based: the delay after the first failure is
        ``delay(1)``.  *key* scopes the jitter (e.g. a plan-node id) so
        concurrent retry loops do not share a jitter sequence.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt}")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if raw <= 0.0 or self.jitter == 0.0:
            return raw
        digest = hashlib.md5(
            f"{self.seed}|{key}|{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "little") / 2**64
        return raw * (1.0 - self.jitter * fraction)

    def schedule(self, key: str = "") -> list[float]:
        """All backoff delays this policy would apply, in order."""
        return [self.delay(attempt, key) for attempt in range(1, self.max_attempts)]

    def charge_backoff(
        self,
        attempt: int,
        key: str = "",
        clock: "SimClock | None" = None,
        budget: "Budget | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> float:
        """Apply the backoff for *attempt* to the clock/budget; returns it.

        A budget charge advances the shared clock itself, so only one of
        the two is charged.  With *metrics*, the retry and its backoff
        are recorded (``agent.retries`` counter, ``retry.backoff_seconds``
        histogram).
        """
        pause = self.delay(attempt, key)
        if pause > 0.0:
            if budget is not None:
                budget.charge(f"retry:{key or 'anonymous'}", latency=pause, note="backoff")
            elif clock is not None:
                clock.advance(pause)
        if metrics is not None:
            metrics.inc("agent.retries")
            metrics.observe("retry.backoff_seconds", pause)
        return pause

    def call(
        self,
        fn: Callable[[], Any],
        key: str = "",
        clock: "SimClock | None" = None,
        budget: "Budget | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> Any:
        """Run *fn* under this policy, backing off between attempts.

        Re-raises the last error when attempts are exhausted or the error
        is fatal.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except Exception as error:  # noqa: BLE001 - classified below
                if not self.should_retry(error, attempt):
                    raise
                self.charge_backoff(attempt, key, clock=clock, budget=budget, metrics=metrics)
