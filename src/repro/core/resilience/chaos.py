"""Chaos injection: seeded, replayable fault scenarios.

The resilience benchmarks and tests need failures that are *realistic*
(container kills, LLM transient-error bursts, latency spikes) yet
*deterministic* — two runs with the same seed must produce byte-identical
traces.  :class:`ChaosController` provides that: every fault decision is a
hash of ``(seed, key, per-key counter)``, never global randomness, so the
decision sequence for each fault site is independent of interleaving with
other sites.

A scenario advances in *steps* (one per plan, request, or supervision
tick).  LLM faults model provider brownouts: a base transient rate plus
occasional bursts during which the rate spikes — exactly the regime where
naive immediate-retry melts down and breakers/fallbacks pay off.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from ...clock import SimClock
from ...errors import TransientError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...llm import ModelCatalog
    from ..budget import Budget
    from ..deployment import Cluster


@dataclass(frozen=True)
class ChaosSpec:
    """What to inject, and how hard.

    Attributes:
        container_kill_rate: probability per step of killing each running
            container in a struck cluster.
        llm_transient_rate: baseline probability an LLM call fails
            transiently.
        llm_burst_rate: probability per step that a provider brownout
            starts.
        llm_burst_length: steps a brownout lasts.
        llm_burst_transient_rate: LLM transient rate during a brownout.
        agent_transient_rate: probability a guarded agent work item raises
            :class:`~repro.errors.TransientError` (via :meth:`agent_fault`).
        latency_spike_rate: probability per :meth:`maybe_spike` call of a
            latency spike.
        latency_spike_seconds: size of each spike in simulated seconds.
        plan_kill_rate: probability per journal checkpoint barrier of
            hard-killing the coordinator mid-plan (via
            :meth:`kill_during_plan`, installed as the journal's barrier
            hook) — raised as
            :class:`~repro.errors.CoordinatorKilledError`.
        surge_rate: probability per step that a traffic surge starts —
            the overload analogue of an LLM brownout.  The traffic
            generator steps the controller once per arrival bucket and
            multiplies every tenant's offered rate by
            :meth:`traffic_multiplier` while the surge lasts.
        surge_length: steps a traffic surge lasts.
        surge_multiplier: factor applied to offered traffic during a
            surge (>= 1).
        replica_kill_rate: probability per :meth:`strike_store_cluster`
            call of crashing each live store replica (it restarts after
            the cluster's ``restart_delay_ticks``).
        shard_partition_rate: probability per strike of partitioning a
            minority of each shard's replicas away from the router.
        shard_partition_ticks: cluster ticks a partition lasts.
        replica_latency_rate: probability per strike of degrading each
            live replica's latency.
        replica_latency_seconds: extra simulated seconds a degraded
            replica adds to operations on its shard.
        replica_latency_ticks: cluster ticks the degradation lasts.
    """

    container_kill_rate: float = 0.0
    llm_transient_rate: float = 0.0
    llm_burst_rate: float = 0.0
    llm_burst_length: int = 5
    llm_burst_transient_rate: float = 0.9
    agent_transient_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 2.0
    plan_kill_rate: float = 0.0
    surge_rate: float = 0.0
    surge_length: int = 5
    surge_multiplier: float = 2.0
    replica_kill_rate: float = 0.0
    shard_partition_rate: float = 0.0
    shard_partition_ticks: int = 3
    replica_latency_rate: float = 0.0
    replica_latency_seconds: float = 1.0
    replica_latency_ticks: int = 3

    def __post_init__(self) -> None:
        for name in (
            "container_kill_rate",
            "llm_transient_rate",
            "llm_burst_rate",
            "llm_burst_transient_rate",
            "agent_transient_rate",
            "latency_spike_rate",
            "plan_kill_rate",
            "surge_rate",
            "replica_kill_rate",
            "shard_partition_rate",
            "replica_latency_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {rate}")
        if self.surge_multiplier < 1.0:
            raise ValueError(
                f"surge_multiplier must be >= 1: {self.surge_multiplier}"
            )


class ChaosController:
    """Deterministic fault injector driven by a seed and per-key counters."""

    def __init__(
        self,
        spec: ChaosSpec,
        seed: int = 0,
        clock: SimClock | None = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.clock = clock or SimClock()
        self.events: list[dict[str, Any]] = []
        self._counters: dict[str, int] = {}
        self._steps = 0
        self._burst_remaining = 0
        self._surge_remaining = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Deterministic randomness
    # ------------------------------------------------------------------
    def roll(self, key: str) -> float:
        """Next deterministic uniform draw in [0, 1) for *key*."""
        with self._lock:
            count = self._counters.get(key, 0) + 1
            self._counters[key] = count
        digest = hashlib.md5(f"{self.seed}|{key}|{count}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def _record(self, kind: str, **detail: Any) -> None:
        self.events.append({"time": self.clock.now(), "kind": kind, **detail})

    # ------------------------------------------------------------------
    # Scenario stepping
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance one step; manages LLM brownout and traffic surge state."""
        with self._lock:
            self._steps += 1
            steps = self._steps
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
            if self._surge_remaining > 0:
                self._surge_remaining -= 1
        if (
            self._burst_remaining == 0
            and self.spec.llm_burst_rate > 0
            and self.roll("llm-burst") < self.spec.llm_burst_rate
        ):
            with self._lock:
                self._burst_remaining = self.spec.llm_burst_length
            self._record("llm_burst", length=self.spec.llm_burst_length)
        if (
            self._surge_remaining == 0
            and self.spec.surge_rate > 0
            and self.roll("surge") < self.spec.surge_rate
        ):
            with self._lock:
                self._surge_remaining = self.spec.surge_length
            self._record(
                "traffic_surge",
                length=self.spec.surge_length,
                multiplier=self.spec.surge_multiplier,
            )
        return steps

    def in_burst(self) -> bool:
        with self._lock:
            return self._burst_remaining > 0

    def in_surge(self) -> bool:
        with self._lock:
            return self._surge_remaining > 0

    def current_llm_rate(self) -> float:
        """Effective LLM transient rate at this step (base or brownout)."""
        if self.in_burst():
            return self.spec.llm_burst_transient_rate
        return self.spec.llm_transient_rate

    def traffic_multiplier(self) -> float:
        """Offered-traffic factor at this step (``surge_multiplier`` or 1)."""
        if self.in_surge():
            return self.spec.surge_multiplier
        return 1.0

    # ------------------------------------------------------------------
    # Fault sites
    # ------------------------------------------------------------------
    def infect_catalog(self, catalog: "ModelCatalog") -> float:
        """Point the catalog's default failure rate at the current chaos
        level; call once per step.  Returns the applied rate."""
        rate = self.current_llm_rate()
        catalog.default_failure_rate = rate
        return rate

    def strike_cluster(self, cluster: "Cluster") -> list[str]:
        """Kill each running container with ``container_kill_rate``."""
        killed: list[str] = []
        for container in cluster.containers(state="running"):
            if self.roll(f"kill|{container.container_id}") < self.spec.container_kill_rate:
                container.fail()
                killed.append(container.container_id)
                self._record("container_kill", container=container.container_id)
        return killed

    def strike_store_cluster(self, cluster: Any) -> dict[str, list[Any]]:
        """Roll the storage faults against a :class:`StoreCluster`.

        Call once per cluster tick (before or after ``tick()`` — the
        per-key counters make the decision sequence independent of when).
        Kills roll per live replica; partitions and degradations roll per
        shard / replica with their own keys, so enabling one fault family
        never shifts another family's draws.
        """
        struck: dict[str, list[Any]] = {"killed": [], "partitioned": [], "degraded": []}
        spec = self.spec
        for shard in cluster.shards:
            for replica in shard.replicas:
                if replica.status.value == "dead":
                    continue
                if (
                    spec.replica_kill_rate > 0
                    and self.roll(f"replica-kill|{replica.replica_id}")
                    < spec.replica_kill_rate
                ):
                    cluster.kill_replica(replica.replica_id)
                    struck["killed"].append(replica.replica_id)
                    self._record("replica_kill", replica=replica.replica_id)
                    continue
                if (
                    spec.replica_latency_rate > 0
                    and self.roll(f"replica-latency|{replica.replica_id}")
                    < spec.replica_latency_rate
                ):
                    cluster.degrade_replica(
                        replica.replica_id,
                        spec.replica_latency_seconds,
                        spec.replica_latency_ticks,
                    )
                    struck["degraded"].append(replica.replica_id)
                    self._record("replica_degraded", replica=replica.replica_id)
            if (
                spec.shard_partition_rate > 0
                and self.roll(f"shard-partition|{shard.shard_index}")
                < spec.shard_partition_rate
            ):
                minority = len(shard.replicas) - shard.quorum
                if minority > 0:
                    # Deterministic victim choice: a rolled offset walks
                    # the replica ring so different shards/ticks hide
                    # different minorities.
                    offset = int(
                        self.roll(f"partition-members|{shard.shard_index}")
                        * len(shard.replicas)
                    )
                    members = tuple(
                        (offset + i) % len(shard.replicas) for i in range(minority)
                    )
                    cluster.partition_shard(
                        shard.shard_index, members, spec.shard_partition_ticks
                    )
                    struck["partitioned"].append(shard.shard_index)
                    self._record(
                        "shard_partition",
                        shard=shard.shard_index,
                        members=list(members),
                    )
        return struck

    def agent_fault(self, key: str) -> None:
        """Raise :class:`TransientError` with ``agent_transient_rate``.

        Agents under chaos call this at the top of their processor.
        """
        if (
            self.spec.agent_transient_rate > 0
            and self.roll(f"agent|{key}") < self.spec.agent_transient_rate
        ):
            self._record("agent_fault", key=key)
            raise TransientError(f"chaos-injected transient fault at {key}")

    def kill_during_plan(self, site: str) -> None:
        """Hard-kill the coordinator at a journal checkpoint barrier.

        Install as the journal's ``barrier_hook``; *site* names the
        barrier (``boundary:plan/node`` or ``midnode:plan/node``).  The
        kill is :class:`~repro.errors.CoordinatorKilledError` — a
        ``BaseException`` no runtime handler absorbs — so the whole plan
        unwinds exactly as a process death would, leaving only durable
        state behind.
        """
        from ...errors import CoordinatorKilledError

        if (
            self.spec.plan_kill_rate > 0
            and self.roll(f"plankill|{site}") < self.spec.plan_kill_rate
        ):
            self._record("plan_kill", site=site)
            raise CoordinatorKilledError(f"chaos kill at barrier {site}")

    def maybe_spike(self, key: str, budget: "Budget | None" = None) -> float:
        """Inject a latency spike (charged to the budget when given)."""
        if (
            self.spec.latency_spike_rate > 0
            and self.roll(f"spike|{key}") < self.spec.latency_spike_rate
        ):
            spike = self.spec.latency_spike_seconds
            if budget is not None:
                budget.charge(f"chaos:{key}", latency=spike, note="latency spike")
            else:
                self.clock.advance(spike)
            self._record("latency_spike", key=key, seconds=spike)
            return spike
        return 0.0

    def describe(self) -> dict[str, Any]:
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        return {"seed": self.seed, "steps": self._steps, "events": kinds}


class KillSwitch:
    """One-shot deterministic coordinator kill at the Nth barrier.

    Where :meth:`ChaosController.kill_during_plan` kills probabilistically,
    the kill switch kills at exactly barrier ``kill_at`` (0-based count of
    barriers crossed) — the primitive the kill/resume determinism suite
    sweeps: *for every* barrier index, kill there, resume, and compare the
    final export to the uninterrupted run's.  With ``kill_at`` beyond the
    run's barrier count it never fires and the run is uninterrupted.
    """

    def __init__(self, kill_at: int) -> None:
        self.kill_at = kill_at
        #: Barriers crossed so far (== barrier index about to execute).
        self.seen = 0
        #: The site the switch fired at, or None while armed.
        self.fired_site: str | None = None
        # Under the thread backend, wave siblings cross barriers
        # concurrently; the count-and-compare must be atomic or the
        # switch can skip its index (two threads reading the same
        # ``seen``) and never fire.
        self._lock = threading.Lock()

    @property
    def fired(self) -> bool:
        return self.fired_site is not None

    def __call__(self, site: str) -> None:
        from ...errors import CoordinatorKilledError

        with self._lock:
            index = self.seen
            self.seen += 1
            if self.fired or index != self.kill_at:
                return
            self.fired_site = site
        raise CoordinatorKilledError(
            f"kill switch fired at barrier {index} ({site})"
        )
