"""Circuit breakers: stop hammering agents that are known to be failing.

A breaker wraps calls to one downstream target (an agent, a model).  It is
**closed** in normal operation; after ``failure_threshold`` consecutive
failures it **opens** and short-circuits every call (callers route to
fallbacks instead of wasting budget).  After ``recovery_timeout`` simulated
seconds it becomes **half-open** and admits a limited number of probe
calls: one success closes it again, one failure re-opens it.

All timing runs on the :class:`~repro.clock.SimClock`, so breaker behavior
is deterministic and replayable.  Every state transition is recorded with
its timestamp for tests and observability.
"""

from __future__ import annotations

import threading
from typing import Iterator, TYPE_CHECKING

from ...clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import MetricsRegistry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed/open/half-open breaker over a simulated clock."""

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        half_open_probes: int = 1,
        probe_timeout: float | None = None,
        clock: SimClock | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        if recovery_timeout < 0:
            raise ValueError(f"recovery_timeout must be >= 0: {recovery_timeout}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1: {half_open_probes}")
        if probe_timeout is not None and probe_timeout <= 0:
            raise ValueError(f"probe_timeout must be > 0: {probe_timeout}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_probes = half_open_probes
        #: How long an admitted half-open probe may stay unreported before
        #: its slot is reclaimed (defaults to the recovery timeout).  A
        #: probe whose caller crashed would otherwise hold the slot
        #: forever, wedging the breaker in half-open.
        self.probe_timeout = (
            probe_timeout if probe_timeout is not None else recovery_timeout
        )
        self.clock = clock or SimClock()
        self.metrics = metrics
        self.transitions: list[tuple[float, str]] = []
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Admission timestamps of half-open probes still awaiting an
        #: outcome report; its length is the number of occupied slots.
        self._probe_admissions: list[float] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state(self) -> str:
        """Current state; lazily moves open -> half-open after the timeout."""
        with self._lock:
            self._refresh()
            return self._state

    def _refresh(self) -> None:
        if (
            self._state == OPEN
            and self.clock.now() - self._opened_at >= self.recovery_timeout
        ):
            self._transition(HALF_OPEN)
            self._probe_admissions.clear()
        if self._state == HALF_OPEN and self.probe_timeout > 0:
            # Reclaim slots of abandoned probes (caller crashed or never
            # reported); with every slot leaked the breaker would
            # otherwise wedge in half-open, admitting no one.
            now = self.clock.now()
            alive = [t for t in self._probe_admissions if now - t < self.probe_timeout]
            reclaimed = len(self._probe_admissions) - len(alive)
            if reclaimed:
                self._probe_admissions = alive
                if self.metrics is not None:
                    self.metrics.inc(
                        "breaker.probes_reclaimed", reclaimed, breaker=self.name
                    )

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions.append((self.clock.now(), state))
        if self.metrics is not None:
            self.metrics.inc("breaker.state_changes", breaker=self.name, state=state)

    # ------------------------------------------------------------------
    # Call gating
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the caller may attempt the protected call right now.

        In half-open state only ``half_open_probes`` callers are admitted
        until one of them reports an outcome; an admitted probe that
        never reports is reclaimed after :attr:`probe_timeout` simulated
        seconds so abandoned callers cannot wedge the breaker.
        """
        with self._lock:
            self._refresh()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if len(self._probe_admissions) < self.half_open_probes:
                self._probe_admissions.append(self.clock.now())
                return True
            return False

    def record_success(self) -> None:
        """A protected call succeeded; half-open probes close the breaker."""
        with self._lock:
            self._refresh()
            self._consecutive_failures = 0
            self._probe_admissions.clear()
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A protected call failed; may open (or re-open) the breaker."""
        with self._lock:
            self._refresh()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._open()
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        self._opened_at = self.clock.now()
        self._probe_admissions.clear()
        self._transition(OPEN)

    def force_open(self) -> None:
        """Open immediately (operator action / tests)."""
        with self._lock:
            if self._state != OPEN:
                self._open()

    def reset(self) -> None:
        """Close and forget failure history (operator action)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_admissions.clear()
            if self._state != CLOSED:
                self._transition(CLOSED)

    def outstanding_probes(self) -> int:
        """Half-open probe slots currently held by unreported callers."""
        with self._lock:
            self._refresh()
            return len(self._probe_admissions)

    def describe(self) -> dict[str, object]:
        with self._lock:
            self._refresh()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "outstanding_probes": len(self._probe_admissions),
                "transitions": list(self.transitions),
            }


class BreakerBoard:
    """Per-target breakers sharing one configuration and clock.

    The coordinator keeps one board and consults ``for_agent(name)``
    before emitting ``EXECUTE_AGENT`` to *name*.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        half_open_probes: int = 1,
        probe_timeout: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_probes = half_open_probes
        self.probe_timeout = probe_timeout
        self.metrics = metrics
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def for_agent(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=name,
                    failure_threshold=self.failure_threshold,
                    recovery_timeout=self.recovery_timeout,
                    half_open_probes=self.half_open_probes,
                    probe_timeout=self.probe_timeout,
                    clock=self.clock,
                    metrics=self.metrics,
                )
                self._breakers[name] = breaker
            return breaker

    def __iter__(self) -> Iterator[CircuitBreaker]:
        with self._lock:
            return iter(list(self._breakers.values()))

    def states(self) -> dict[str, str]:
        return {b.name: b.state() for b in self}

    def open_targets(self) -> list[str]:
        return sorted(name for name, state in self.states().items() if state == OPEN)
