"""Dead-letter streams: quarantine for messages from failed plan nodes.

When a node exhausts its retries (and its fallback, if any), the work item
is not dropped — the coordinator quarantines it on a per-session
``deadletter`` stream with full failure metadata: plan, node, agent, the
resolved inputs, the error and its transient/fatal classification, and the
attempt count.  After recovery (a container restart, a fixed agent) the
queue is **replayable**: each pending entry is re-executed and, on success,
marked replayed by a marker message referencing it.

State lives entirely on the stream (entries + replay markers), so a queue
rebuilt over the same store after a crash sees exactly the same pending
set — the stream *is* the durable record.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TYPE_CHECKING

from ...streams import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import MetricsRegistry
    from ...streams import StreamStore
    from ..session import Session

#: Tag on quarantined entries.
DEAD_LETTER_TAG = "DEAD_LETTER"
#: Tag on replay markers acknowledging an entry.
REPLAYED_TAG = "DEAD_LETTER_REPLAYED"

#: An executor re-runs one quarantined payload; truthy return = success.
ReplayExecutor = Callable[[dict[str, Any]], Any]


class DeadLetterQueue:
    """A session's quarantine stream plus replay bookkeeping."""

    def __init__(
        self,
        store: "StreamStore",
        session: "Session",
        stream_name: str = "deadletter",
        producer: str = "DEAD_LETTER_QUEUE",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.store = store
        self.session = session
        self.producer = producer
        self.metrics = metrics
        self.stream = session.ensure_stream(stream_name, creator=producer)
        self._replay_lock = threading.Lock()
        self._in_flight: set[str] = set()

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(
        self,
        plan: str,
        node: str,
        agent: str,
        inputs: dict[str, Any],
        error: str,
        error_type: str = "",
        transient: bool = False,
        attempts: int = 0,
        fallback_agent: str | None = None,
    ) -> Message:
        """Park one failed work item with its failure metadata."""
        if self.metrics is not None:
            self.metrics.inc("deadletter.quarantined", agent=agent)
        return self.store.publish_data(
            self.stream.stream_id,
            {
                "plan": plan,
                "node": node,
                "agent": agent,
                "inputs": dict(inputs),
                "error": error,
                "error_type": error_type,
                "transient": transient,
                "attempts": attempts,
                "fallback_agent": fallback_agent,
            },
            tags=(DEAD_LETTER_TAG,),
            producer=self.producer,
            metadata={"session": self.session.session_id},
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def entries(self) -> list[Message]:
        """Every quarantined entry ever recorded, in order."""
        return [m for m in self.stream.messages() if m.has_tag(DEAD_LETTER_TAG)]

    def replayed_ids(self) -> set[str]:
        return {
            m.payload["ref"]
            for m in self.stream.messages()
            if m.has_tag(REPLAYED_TAG)
        }

    def pending(self) -> list[Message]:
        """Quarantined entries not yet successfully replayed."""
        acked = self.replayed_ids()
        return [m for m in self.entries() if m.message_id not in acked]

    def __len__(self) -> int:
        return len(self.pending())

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, executor: ReplayExecutor) -> list[Message]:
        """Re-run every pending entry through *executor*.

        Entries whose executor call returns truthy are acknowledged with a
        replay marker (and disappear from :meth:`pending`); failing entries
        stay quarantined for the next replay.  Returns the acknowledged
        entries.

        Replaying is guarded against the double-replay hazard: an entry is
        claimed (under a lock, against both the acked set and entries other
        replayers currently hold in flight) before its executor runs, so
        concurrent or re-entrant ``replay()`` calls — an executor that
        itself triggers a replay, two supervisors recovering at once —
        cannot re-execute the same side-effecting work item twice.
        """
        recovered: list[Message] = []
        for entry in self.pending():
            with self._replay_lock:
                if (
                    entry.message_id in self._in_flight
                    or entry.message_id in self.replayed_ids()
                ):
                    continue
                self._in_flight.add(entry.message_id)
            try:
                if executor(dict(entry.payload)):
                    self.store.publish_data(
                        self.stream.stream_id,
                        {"ref": entry.message_id},
                        tags=(REPLAYED_TAG,),
                        producer=self.producer,
                    )
                    recovered.append(entry)
            finally:
                with self._replay_lock:
                    self._in_flight.discard(entry.message_id)
        if self.metrics is not None and recovered:
            self.metrics.inc("deadletter.replayed", len(recovered))
        return recovered

    def describe(self) -> dict[str, Any]:
        entries = self.entries()
        return {
            "stream": self.stream.stream_id,
            "total": len(entries),
            "pending": len(self.pending()),
            "by_agent": _count_by(entries, "agent"),
            "by_error_type": _count_by(entries, "error_type"),
        }


def _count_by(entries: list[Message], key: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for entry in entries:
        value = str(entry.payload.get(key, ""))
        counts[value] = counts.get(value, 0) + 1
    return counts
