"""Resilience: retries, circuit breaking, dead letters, chaos injection.

The enterprise-grade execution story of Sections IV/V-H/VII — coordinators
that monitor budgets, containers that restart on failure, agents whose
nondeterminism demands error handling — needs first-class reliability
primitives.  This package provides them:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  transient/fatal classification, charged to the simulated clock/budget.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-agent breakers the
  coordinator consults before emitting ``EXECUTE_AGENT``.
* :class:`DeadLetterQueue` — per-session quarantine stream for failed work
  items, replayable after recovery.
* :class:`ChaosController` / :class:`ChaosSpec` — seeded fault injection
  (container kills, LLM brownouts, latency spikes) for benchmarks/tests.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from .chaos import ChaosController, ChaosSpec, KillSwitch
from .deadletter import DEAD_LETTER_TAG, REPLAYED_TAG, DeadLetterQueue
from .retry import RetryPolicy, classify_error, is_transient

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ChaosController",
    "ChaosSpec",
    "KillSwitch",
    "DeadLetterQueue",
    "DEAD_LETTER_TAG",
    "REPLAYED_TAG",
    "RetryPolicy",
    "classify_error",
    "is_transient",
]
