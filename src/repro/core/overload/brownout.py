"""Brownout control: graceful degradation under sustained overload.

When offered load exceeds capacity, an enterprise serving stack does not
fail uniformly — it *browns out*: sheds optional work first, cheapens
what it keeps, and protects its highest-QoS traffic to the end.  The
:class:`BrownoutController` is that state machine for the fleet.  It
watches backlog depth at every scheduling instant and moves through four
levels:

====  ============  ====================================================
0     normal        nothing degraded
1     downshift     non-protected plans' model hints rewrite one tier
                    cheaper (PR 1's model-routing path does the rest)
2     degrade       level 1, plus nodes marked ``optional`` are pruned
                    from admitted plans
3     shed          levels 1–2, plus arrivals on sheddable tiers are
                    rejected outright with a typed ``shed`` verdict
====  ============  ====================================================

Transitions are **hysteretic**: the depth that enters a level is higher
than the depth that exits it (``enter_depths[i] > exit_depths[i]``), so
the controller does not flap when the backlog oscillates around a
threshold.  Every transition and per-plan decision is appended to a
decision log — the artifact the determinism property test compares
byte-for-byte across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...observability import MetricsRegistry
    from ..plan.task_plan import TaskPlan

#: Default model downshift map: each catalog tier steps to the next
#: cheaper one; the floor tier and domain fine-tunes stay put.
DEFAULT_DOWNSHIFT: Mapping[str, str] = {
    "mega-xl": "mega-m",
    "mega-m": "mega-s",
    "mega-s": "mega-nano",
}

LEVEL_NAMES = ("normal", "downshift", "degrade", "shed")


@dataclass(frozen=True)
class BrownoutSpec:
    """Thresholds and degradation knobs for the brownout state machine.

    ``enter_depths[i]`` is the backlog depth at which level ``i + 1``
    engages; ``exit_depths[i]`` the depth at which it releases.  Both
    must be non-decreasing and each exit strictly below its enter —
    that gap is the hysteresis band.
    """

    enter_depths: tuple[int, int, int] = (8, 16, 32)
    exit_depths: tuple[int, int, int] = (4, 10, 24)
    protect_tier: int = 0
    downshift: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_DOWNSHIFT)
    )

    def __post_init__(self) -> None:
        if len(self.enter_depths) != 3 or len(self.exit_depths) != 3:
            raise ValueError("brownout specs take exactly three levels")
        for i in range(3):
            if self.exit_depths[i] >= self.enter_depths[i]:
                raise ValueError(
                    "exit depth must sit below enter depth (hysteresis): "
                    f"level {i + 1} has exit {self.exit_depths[i]} >= "
                    f"enter {self.enter_depths[i]}"
                )
        if list(self.enter_depths) != sorted(self.enter_depths):
            raise ValueError(f"enter_depths must be non-decreasing: {self.enter_depths}")
        if list(self.exit_depths) != sorted(self.exit_depths):
            raise ValueError(f"exit_depths must be non-decreasing: {self.exit_depths}")


class BrownoutController:
    """Hysteretic overload level tracking plus per-plan degradation."""

    def __init__(
        self,
        spec: BrownoutSpec | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.spec = spec or BrownoutSpec()
        self.metrics = metrics
        self.level = 0
        #: ``(at, old_level, new_level, depth)`` per transition.
        self.transitions: list[tuple[float, int, int, int]] = []
        #: Every degradation decision, in decision order — the byte-level
        #: determinism artifact.
        self.decisions: list[dict[str, Any]] = []

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    # ------------------------------------------------------------------
    # Signal input
    # ------------------------------------------------------------------
    def observe(self, depth: int, at: float) -> int:
        """Update the level from the backlog depth at instant *at*."""
        old = self.level
        level = self.level
        while level < 3 and depth >= self.spec.enter_depths[level]:
            level += 1
        while level > 0 and depth <= self.spec.exit_depths[level - 1]:
            level -= 1
        if level != old:
            self.level = level
            self.transitions.append((at, old, level, depth))
            if self.metrics is not None:
                self.metrics.inc(
                    "overload.brownout_transitions",
                    direction="up" if level > old else "down",
                    level=LEVEL_NAMES[level],
                )
                self.metrics.gauge("overload.brownout_level").set(level)
        return self.level

    # ------------------------------------------------------------------
    # Degradation decisions
    # ------------------------------------------------------------------
    def should_shed(self, tier: int, sheddable: bool) -> bool:
        """Whether an arrival on *tier* is dropped at the door right now."""
        return (
            self.level >= 3
            and sheddable
            and tier > self.spec.protect_tier
        )

    def record_shed(self, plan_id: str, tenant: str, tier: int, at: float) -> None:
        self.decisions.append(
            {
                "at": at,
                "action": "shed",
                "plan": plan_id,
                "tenant": tenant,
                "tier": tier,
                "level": self.level,
            }
        )
        if self.metrics is not None:
            self.metrics.inc("overload.shed", tenant=tenant)

    def admit_plan(
        self, plan: "TaskPlan", tier: int, at: float
    ) -> tuple["TaskPlan", dict[str, Any]]:
        """Degrade *plan* per the current level; returns (plan, actions).

        Protected tiers pass through untouched at every level.  The
        returned actions dict is empty when nothing changed (the common
        case, so callers can skip span attributes cheaply).
        """
        if self.level == 0 or tier <= self.spec.protect_tier:
            return plan, {}
        model_map = self.spec.downshift if self.level >= 1 else None
        drop_optional = self.level >= 2
        pruned = (
            sorted(n.node_id for n in plan.nodes() if n.optional)
            if drop_optional
            else []
        )
        downshifted = sorted(
            {
                node.model
                for node in plan.nodes()
                if model_map and node.model in model_map
            }
        )
        if not downshifted and not pruned:
            return plan, {}
        derived = plan.derived(model_map=model_map, drop_optional=drop_optional)
        actions: dict[str, Any] = {"level": self.level}
        if downshifted:
            actions["downshifted"] = {m: model_map[m] for m in downshifted}
        if pruned:
            actions["pruned"] = pruned
        self.decisions.append(
            {
                "at": at,
                "action": "degrade",
                "plan": plan.plan_id,
                "tier": tier,
                **actions,
            }
        )
        if self.metrics is not None:
            if downshifted:
                self.metrics.inc("overload.downshifted")
            if pruned:
                self.metrics.inc("overload.pruned", len(pruned))
        return derived, actions

    def describe(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "level_name": self.level_name,
            "transitions": len(self.transitions),
            "decisions": len(self.decisions),
        }
