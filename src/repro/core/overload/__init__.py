"""Overload control plane: traffic, tiered admission, brownout.

Production serving defends itself in three layers, and this package
provides each as a deterministic, seed-stable component the fleet
scheduler threads together (see DESIGN.md §11):

* :mod:`~repro.core.overload.traffic` — open-loop arrival generation:
  per-tenant Poisson/diurnal processes, surge windows, chaos surges.
* :mod:`~repro.core.overload.admission` — per-tenant token buckets,
  weighted-fair tier queues, queue deadlines (plus the naive FIFO gate
  kept as the benchmark ablation).
* :mod:`~repro.core.overload.brownout` — hysteretic degradation: model
  downshift, optional-node pruning, lowest-tier shedding.
"""

from .admission import AdmissionController, FifoAdmission, TierPolicy, TokenBucket
from .brownout import (
    BrownoutController,
    BrownoutSpec,
    DEFAULT_DOWNSHIFT,
    LEVEL_NAMES,
)
from .traffic import Arrival, TenantSpec, TrafficGenerator

__all__ = [
    "AdmissionController",
    "Arrival",
    "BrownoutController",
    "BrownoutSpec",
    "DEFAULT_DOWNSHIFT",
    "FifoAdmission",
    "LEVEL_NAMES",
    "TenantSpec",
    "TierPolicy",
    "TokenBucket",
    "TrafficGenerator",
]
