"""The canonical overload scenario: three tenants, one surge.

Shared by ``repro surge`` and ``benchmarks/bench_overload.py`` so the CLI
demo and the gated benchmark exercise the same workload:

* ``enterprise`` (tier 0) — the contracted, latency-SLO tenant; modest
  steady rate, never rate-limited, never shed, never expired.
* ``standard`` (tier 1) — mid-tier traffic; downshiftable and prunable
  under brownout, bounded queue wait.
* ``batch`` (tier 2) — elastic bulk traffic; rate-limited, short queue
  deadline, and sheddable — the load the fleet drops first.

Each arrival becomes a three-stage plan (intake → enrich → resolve) whose
stages call the shared catalog through :meth:`Agent.complete`, so the
plan-node ``model`` hints — and therefore the brownout controller's
downshift rewrites — take effect through PR 1's model-routing path.  The
``enrich`` stage is marked ``optional``: at brownout level 2+ it is
pruned, shortening the degraded plans' critical path.
"""

from __future__ import annotations

from typing import Any, Callable

from ..agent import Agent
from ..fleet import FleetSubmission
from ..params import Parameter
from ..plan import Binding, TaskPlan
from .admission import AdmissionController, TierPolicy
from .brownout import BrownoutController, BrownoutSpec
from .traffic import Arrival, TenantSpec, TrafficGenerator

#: Tier policies for the scenario (see the module docstring).
DEMO_TIERS: dict[int, TierPolicy] = {
    0: TierPolicy(weight=6.0),
    1: TierPolicy(weight=3.0, rate=1.5, burst=6.0, max_queue_wait=20.0),
    2: TierPolicy(
        weight=1.0, rate=1.2, burst=5.0, max_queue_wait=10.0, sheddable=True
    ),
}

#: Simulated seconds from arrival to completion the tier-0 contract allows.
TIER0_LATENCY_SLO = 6.0


def demo_tenants(scale: float = 1.0) -> list[TenantSpec]:
    """The three tenant populations, rates scaled by *scale*.

    Populations are deliberately large (hundreds of thousands of users
    at tiny per-user rates) — the generator only ever sees the product,
    which is what lets the same machinery model millions of users.
    """
    return [
        TenantSpec(
            name="enterprise", tier=0, users=60_000, rate_per_user=5e-6 * scale
        ),
        TenantSpec(
            name="standard",
            tier=1,
            users=300_000,
            rate_per_user=2e-6 * scale,
            pattern="diurnal",
            diurnal_period=120.0,
            diurnal_amplitude=0.3,
        ),
        TenantSpec(
            name="batch", tier=2, users=800_000, rate_per_user=1e-6 * scale
        ),
    ]


def demo_traffic(
    seed: int = 0,
    horizon: float = 60.0,
    surge: tuple[float, float, float] | None = (20.0, 40.0, 2.4),
    scale: float = 1.0,
    chaos: Any = None,
) -> TrafficGenerator:
    """The scenario's arrival trace: steady load plus one surge window.

    The default window multiplies offered load to roughly 2× the fleet's
    service rate — the regime the overload benchmark gates on.  Pass
    ``surge=None`` for steady traffic, or *chaos* (a
    :class:`~repro.core.resilience.ChaosController` with ``surge_rate``
    set) for probabilistic surges instead of a scripted window.
    """
    return TrafficGenerator(
        demo_tenants(scale),
        seed=seed,
        horizon=horizon,
        surges=[surge] if surge is not None else [],
        chaos=chaos,
    )


def demo_admission(max_backlog: int | None = None) -> AdmissionController:
    return AdmissionController(tiers=dict(DEMO_TIERS), max_backlog=max_backlog)


def demo_brownout(metrics: Any = None) -> BrownoutController:
    return BrownoutController(
        BrownoutSpec(enter_depths=(6, 12, 20), exit_depths=(3, 8, 14)),
        metrics=metrics,
    )


class StageAgent(Agent):
    """One LLM-backed plan stage routed through :meth:`Agent.complete`.

    Unlike a :class:`~repro.core.agent.FunctionAgent` closing over a
    fixed catalog client, this subclass resolves its model per call —
    explicit argument, then the driving plan node's ``model`` hint, then
    the default — which is exactly the seam the brownout controller's
    downshift rewrites.
    """

    def __init__(
        self,
        name: str,
        default_model: str,
        template: Callable[[dict[str, Any]], str],
        inputs: tuple[Parameter, ...],
    ) -> None:
        self.name = name
        super().__init__()
        self.inputs = inputs
        self.outputs = (Parameter("OUT", "text"),)
        self.default_model = default_model
        self._template = template

    def processor(self, inputs: dict[str, Any]) -> dict[str, Any]:
        return {"OUT": self.complete(self._template(inputs)).text}


def demo_agents() -> list[Agent]:
    """Fresh stage agents for one submission's session."""
    return [
        StageAgent(
            "INTAKE",
            "mega-s",
            lambda i: f"TASK: EXTRACT\nFIELDS: intent\nTEXT: {i['IN']}",
            inputs=(Parameter("IN", "text"),),
        ),
        StageAgent(
            "ENRICH",
            "mega-m",
            lambda i: f"TASK: RELATED_TITLES\nTITLE: {i['IN'][:40]}",
            inputs=(Parameter("IN", "text"),),
        ),
        StageAgent(
            "RESOLVE",
            "mega-s",
            lambda i: (
                f"TASK: SUMMARIZE\nTEXT: {i['IN']} | {i.get('CONTEXT', '')}"
            ),
            inputs=(
                Parameter("IN", "text"),
                Parameter("CONTEXT", "text", required=False),
            ),
        ),
    ]


def demo_plan(arrival: Arrival) -> TaskPlan:
    """Intake → enrich (optional) → resolve, with per-tier model hints."""
    plan = TaskPlan(
        f"{arrival.tenant}-{arrival.index:04d}",
        goal=f"serve {arrival.tenant} request {arrival.index}",
    )
    plan.add_step(
        "intake",
        "INTAKE",
        {"IN": Binding.const(f"request #{arrival.index} from {arrival.tenant}")},
        model="mega-s",
    )
    plan.add_step(
        "enrich",
        "ENRICH",
        {"IN": Binding.from_node("intake", "OUT")},
        model="mega-m",
        optional=True,
    )
    plan.add_step(
        "resolve",
        "RESOLVE",
        {
            "IN": Binding.from_node("intake", "OUT"),
            "CONTEXT": Binding.from_node("enrich", "OUT"),
        },
        model="mega-m" if arrival.tier == 0 else "mega-s",
    )
    return plan


def demo_submission(arrival: Arrival) -> FleetSubmission:
    """The factory :meth:`Blueprint.run_traffic` maps arrivals through."""
    return FleetSubmission(
        plan=demo_plan(arrival),
        agents=demo_agents(),
        tenant=arrival.tenant,
        tier=arrival.tier,
    )


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def tier_summary(result: Any) -> dict[int, dict[str, Any]]:
    """Per-tier offered/completed/latency/rejection digest of a fleet run.

    Latency is arrival-to-completion (``finished_at - arrived_at``), the
    quantity the tier-0 SLO is written against — it includes queue wait,
    unlike the plan's own critical path.
    """
    summary: dict[int, dict[str, Any]] = {}
    for tier, plans in result.by_tier().items():
        completed = [p for p in plans if p.outcome == "completed"]
        latencies = sorted(
            p.finished_at - p.arrived_at
            for p in completed
            if p.finished_at is not None and p.arrived_at is not None
        )
        rejected: dict[str, int] = {}
        for p in plans:
            if p.rejection_reason is not None:
                rejected[p.rejection_reason] = (
                    rejected.get(p.rejection_reason, 0) + 1
                )
        summary[tier] = {
            "offered": len(plans),
            "completed": len(completed),
            "completion": (len(completed) / len(plans)) if plans else 1.0,
            "p50_latency": _quantile(latencies, 0.50),
            "p99_latency": _quantile(latencies, 0.99),
            "rejected": rejected,
        }
    return summary
