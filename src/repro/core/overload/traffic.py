"""Open-loop traffic generation: seeded per-tenant arrival processes.

A production fleet does not receive a fixed batch of plans — it receives
an *open-loop* arrival stream whose rate is set by the outside world, not
by the system's completion rate.  That distinction is what makes overload
possible at all: a closed-loop benchmark self-throttles, an open-loop one
keeps offering load while the backlog grows.

:class:`TrafficGenerator` produces a deterministic arrival trace over the
simulated timeline from per-tenant specs: each tenant is a population of
``users`` issuing requests at ``rate_per_user`` per simulated second,
optionally modulated by a diurnal sinusoid, explicit surge windows, and
the chaos controller's ``surge`` fault.  Counts per (tenant, bucket) are
Poisson draws inverted from hashed uniforms — the same ``seed|key``
digest scheme as :class:`~repro.core.resilience.ChaosController.roll` —
so the same seed always yields the byte-identical trace regardless of
how many other random consumers run beside it.

Populations scale to millions of simulated users without enumerating
them: only the aggregate rate ``users * rate_per_user`` matters, and
bucket counts for large rates come from a normal approximation to the
Poisson (still a pure function of the seed).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.chaos import ChaosController


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's population and arrival pattern.

    ``tier`` is the tenant's QoS class (0 = highest); admission maps it
    to a :class:`~repro.core.overload.TierPolicy`.  ``pattern`` is
    ``"poisson"`` (stationary) or ``"diurnal"`` (sinusoidal rate swing of
    ``diurnal_amplitude`` around the mean over ``diurnal_period``).
    """

    name: str
    tier: int = 1
    users: int = 1000
    rate_per_user: float = 0.001
    pattern: str = "poisson"
    diurnal_period: float = 86400.0
    diurnal_amplitude: float = 0.5
    diurnal_phase: float = 0.0

    def __post_init__(self) -> None:
        if self.users < 0:
            raise ValueError(f"users must be >= 0: {self.users}")
        if self.rate_per_user < 0:
            raise ValueError(f"rate_per_user must be >= 0: {self.rate_per_user}")
        if self.pattern not in ("poisson", "diurnal"):
            raise ValueError(f"unknown arrival pattern: {self.pattern!r}")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1]: {self.diurnal_amplitude}"
            )

    @property
    def offered_rate(self) -> float:
        """Mean aggregate arrivals per simulated second."""
        return self.users * self.rate_per_user

    def rate_at(self, t: float) -> float:
        """Instantaneous rate at simulated time *t* (pattern applied)."""
        rate = self.offered_rate
        if self.pattern == "diurnal" and self.diurnal_period > 0:
            phase = 2.0 * math.pi * (t / self.diurnal_period + self.diurnal_phase)
            rate *= 1.0 + self.diurnal_amplitude * math.sin(phase)
        return max(0.0, rate)


@dataclass(frozen=True)
class Arrival:
    """One plan request landing on the fleet at a simulated instant."""

    time: float
    tenant: str
    tier: int
    index: int
    #: Traffic multiplier in force when this arrival was generated (> 1
    #: during a surge window or chaos surge) — purely diagnostic.
    multiplier: float = 1.0


def _probit(u: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    u = min(max(u, 1e-12), 1.0 - 1e-12)
    a = (-39.69683028665376, 220.9460984245205, -275.9285104469687,
         138.3577518672690, -30.66479806614716, 2.506628277459239)
    b = (-54.47609879822406, 161.5858368580409, -155.6989798598866,
         66.80131188771972, -13.28068155288572)
    c = (-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
         -2.549732539343734, 4.374664141464968, 2.938163982698783)
    d = (0.007784695709041462, 0.3224671290700398, 2.445134137142996,
         3.754408661907416)
    plow, phigh = 0.02425, 1 - 0.02425
    if u < plow:
        q = math.sqrt(-2 * math.log(u))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if u > phigh:
        q = math.sqrt(-2 * math.log(1 - u))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = u - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


def _poisson(u: float, lam: float) -> int:
    """Poisson draw by inverting CDF at *u*; normal approx for large λ.

    The switch at λ = 64 keeps the inversion loop short while the
    approximation error is far below one arrival per bucket at that
    scale — and either branch is a pure function of (u, λ), so the trace
    stays seed-deterministic across population sizes.
    """
    if lam <= 0:
        return 0
    if lam > 64.0:
        return max(0, int(round(lam + math.sqrt(lam) * _probit(u))))
    k = 0
    p = math.exp(-lam)
    cumulative = p
    while u > cumulative and k < 10_000:
        k += 1
        p *= lam / k
        cumulative += p
    return k


class TrafficGenerator:
    """Seeded open-loop arrival trace over the simulated timeline.

    Arrivals are generated bucket by bucket over ``[0, horizon)``:
    per-tenant counts are Poisson in the tenant's instantaneous rate
    (pattern × surge windows × chaos surge), and each arrival's offset
    within its bucket is an independent uniform draw.  Times are
    relative to the trace origin; the fleet runtime shifts them onto the
    shared clock at submission.

    *surges* are explicit ``(start, end, multiplier)`` windows — the
    deterministic overload scenario benchmarks script.  *chaos* injects
    probabilistic surges instead: the generator steps the controller
    once per bucket and applies :meth:`~repro.core.resilience.
    ChaosController.traffic_multiplier`.
    """

    def __init__(
        self,
        tenants: Iterable[TenantSpec],
        seed: int = 0,
        horizon: float = 60.0,
        bucket: float = 1.0,
        surges: Sequence[tuple[float, float, float]] = (),
        chaos: "ChaosController | None" = None,
    ) -> None:
        self.tenants = list(tenants)
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0: {horizon}")
        if bucket <= 0:
            raise ValueError(f"bucket must be > 0: {bucket}")
        names = [t.name for t in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        for start, end, multiplier in surges:
            if end <= start:
                raise ValueError(f"empty surge window: ({start}, {end})")
            if multiplier < 0:
                raise ValueError(f"surge multiplier must be >= 0: {multiplier}")
        self.seed = seed
        self.horizon = horizon
        self.bucket = bucket
        self.surges = list(surges)
        self.chaos = chaos

    def _roll(self, key: str) -> float:
        digest = hashlib.md5(f"{self.seed}|{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def window_multiplier(self, t: float) -> float:
        """Product of explicit surge windows covering instant *t*."""
        factor = 1.0
        for start, end, multiplier in self.surges:
            if start <= t < end:
                factor *= multiplier
        return factor

    def generate(self) -> list[Arrival]:
        """The full arrival trace, sorted by (time, tenant), indexed."""
        raw: list[tuple[float, str, int, float]] = []
        buckets = int(math.ceil(self.horizon / self.bucket))
        for bi in range(buckets):
            t0 = bi * self.bucket
            width = min(self.bucket, self.horizon - t0)
            mid = t0 + width / 2.0
            chaos_mult = 1.0
            if self.chaos is not None:
                self.chaos.step()
                chaos_mult = self.chaos.traffic_multiplier()
            bucket_mult = self.window_multiplier(mid) * chaos_mult
            for tenant in self.tenants:
                lam = tenant.rate_at(mid) * bucket_mult * width
                count = _poisson(self._roll(f"count|{tenant.name}|{bi}"), lam)
                for k in range(count):
                    offset = self._roll(f"offset|{tenant.name}|{bi}|{k}")
                    raw.append(
                        (t0 + offset * width, tenant.name, tenant.tier, bucket_mult)
                    )
        raw.sort(key=lambda item: (item[0], item[1]))
        return [
            Arrival(time=t, tenant=name, tier=tier, index=i, multiplier=mult)
            for i, (t, name, tier, mult) in enumerate(raw)
        ]

    def describe(self) -> dict:
        offered = {t.name: t.offered_rate for t in self.tenants}
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "bucket": self.bucket,
            "tenants": len(self.tenants),
            "users": sum(t.users for t in self.tenants),
            "offered_rate": sum(offered.values()),
            "offered_by_tenant": offered,
            "surge_windows": list(self.surges),
        }
