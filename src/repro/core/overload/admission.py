"""QoS-tiered admission: token buckets, weighted-fair queues, deadlines.

The PR-5 fleet admitted work FIFO: whoever arrived first got the slot,
so one flooding tenant starves everyone behind it.  This module replaces
that with the classic serving-stack admission pipeline, kept fully
deterministic so seeded runs stay byte-identical:

* **Per-tenant token buckets** (:class:`TokenBucket`) enforce each
  tenant's contracted rate at the front door.  Refill is a pure function
  of the arrival timestamp, so bucket state is a function of the arrival
  trace alone.

* **Weighted-fair tier queues**.  Accepted arrivals queue per QoS tier;
  free slots drain the queues by start-time fair queuing — each entry is
  tagged with a virtual finish time ``max(vtime, tier's last tag) +
  1/weight`` at enqueue, and :meth:`AdmissionController.pop` always
  takes the smallest ``(tag, tier, seq)``.  Over time each backlogged
  tier receives slots in proportion to its weight; ties break by tier
  number, then FIFO — no randomness anywhere.

* **Queue deadlines**.  A tier may bound how long an entry waits
  (``max_queue_wait``); :meth:`AdmissionController.expire` sweeps
  entries whose deadline has passed so the scheduler can move them to
  the dead-letter queue instead of running hopelessly-stale work.

:class:`FifoAdmission` implements the same gate interface with plain
FIFO + bounded backlog semantics — the PR-5 behavior, kept as the
benchmark ablation ("what if we had shipped no overload control?").
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class TokenBucket:
    """Deterministic token bucket: refill is a function of timestamps.

    Calls may arrive with non-monotonic timestamps (the fleet processes
    completion events and arrival events in deterministic *order*, not
    time order); refill only ever moves forward, so replaying the same
    call sequence replays the same verdicts.
    """

    rate: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0: {self.rate}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1: {self.burst}")
        self.tokens = self.burst
        self.last: float | None = None

    def try_take(self, at: float) -> bool:
        """Take one token at instant *at*; False when the bucket is dry."""
        if self.last is None:
            self.last = at
        elapsed = max(0.0, at - self.last)
        self.last = max(self.last, at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TierPolicy:
    """Admission parameters for one QoS tier.

    ``weight`` sets the tier's fair share of freed slots; ``rate`` /
    ``burst`` bound each tenant of the tier (None = uncontracted);
    ``max_queue_wait`` expires entries that wait longer (into the DLQ);
    ``sheddable`` marks the tier the brownout controller may drop
    outright at its highest level.
    """

    weight: float = 1.0
    rate: float | None = None
    burst: float = 1.0
    max_queue_wait: float | None = None
    sheddable: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0: {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0: {self.rate}")
        if self.max_queue_wait is not None and self.max_queue_wait < 0:
            raise ValueError(
                f"max_queue_wait must be >= 0: {self.max_queue_wait}"
            )


@dataclass
class _Queued:
    """One queued admission item plus its fair-queuing tag."""

    tag: float
    tier: int
    seq: int
    item: Any
    tenant: str
    arrival: float
    deadline: float | None

    def sort_key(self) -> tuple[float, int, int]:
        return (self.tag, self.tier, self.seq)


class AdmissionController:
    """Tiered admission gate: rate limit, fair queues, queue deadlines.

    The scheduler drives it with three calls: :meth:`offer` on each
    arrival (verdict: queued, or a typed rejection reason),
    :meth:`expire` at each scheduling instant (stale entries out), and
    :meth:`pop` while slots are free (next entry by weighted fairness).
    """

    #: Typed verdicts (also the ``FleetPlanResult.rejection_reason`` values).
    QUEUED = "queued"
    RATE_LIMITED = "rate_limited"
    BACKLOG_FULL = "backlog_full"

    def __init__(
        self,
        tiers: Mapping[int, TierPolicy] | None = None,
        default_policy: TierPolicy | None = None,
        max_backlog: int | None = None,
    ) -> None:
        if max_backlog is not None and max_backlog < 0:
            raise ValueError(f"max_backlog must be >= 0: {max_backlog}")
        self._tiers = dict(tiers or {})
        self._default_policy = default_policy or TierPolicy()
        self._max_backlog = max_backlog
        self._heap: list[tuple[tuple[float, int, int], _Queued]] = []
        self._expired_marks: set[int] = set()
        self._buckets: dict[tuple[str, int], TokenBucket] = {}
        self._vtime = 0.0
        self._last_tag: dict[int, float] = {}
        self._seq = 0
        self._depth = 0

    def policy_for(self, tier: int) -> TierPolicy:
        return self._tiers.get(tier, self._default_policy)

    def sheddable(self, tier: int) -> bool:
        return self.policy_for(tier).sheddable

    def depth(self) -> int:
        return self._depth

    def offer(self, item: Any, tenant: str, tier: int, at: float) -> str:
        """Admit one arrival to the queues; returns a typed verdict."""
        policy = self.policy_for(tier)
        if policy.rate is not None:
            bucket = self._buckets.get((tenant, tier))
            if bucket is None:
                bucket = TokenBucket(rate=policy.rate, burst=policy.burst)
                self._buckets[(tenant, tier)] = bucket
            if not bucket.try_take(at):
                return self.RATE_LIMITED
        if self._max_backlog is not None and self._depth >= self._max_backlog:
            return self.BACKLOG_FULL
        self._seq += 1
        tag = max(self._vtime, self._last_tag.get(tier, 0.0)) + 1.0 / policy.weight
        self._last_tag[tier] = tag
        deadline = (
            at + policy.max_queue_wait
            if policy.max_queue_wait is not None
            else None
        )
        entry = _Queued(
            tag=tag,
            tier=tier,
            seq=self._seq,
            item=item,
            tenant=tenant,
            arrival=at,
            deadline=deadline,
        )
        heapq.heappush(self._heap, (entry.sort_key(), entry))
        self._depth += 1
        return self.QUEUED

    def expire(self, at: float) -> list[tuple[Any, str, int, float]]:
        """Remove entries whose queue deadline passed before *at*.

        Returns ``(item, tenant, tier, arrival)`` tuples in deadline
        order (ties by enqueue order) — deterministic DLQ input.
        """
        stale = [
            entry
            for _, entry in self._heap
            if entry.seq not in self._expired_marks
            and entry.deadline is not None
            and entry.deadline < at
        ]
        stale.sort(key=lambda e: (e.deadline, e.seq))
        for entry in stale:
            self._expired_marks.add(entry.seq)
            self._depth -= 1
        return [(e.item, e.tenant, e.tier, e.arrival) for e in stale]

    def pop(self, at: float) -> tuple[Any, str, int, float] | None:
        """Next entry by weighted fairness, or None when queues are empty.

        Returns ``(item, tenant, tier, arrival)``; advances virtual time
        to the popped entry's tag so subsequently-enqueued entries queue
        behind work already granted.
        """
        while self._heap:
            _, entry = heapq.heappop(self._heap)
            if entry.seq in self._expired_marks:
                self._expired_marks.discard(entry.seq)
                continue
            self._depth -= 1
            if entry.tag > self._vtime:
                self._vtime = entry.tag
            return (entry.item, entry.tenant, entry.tier, entry.arrival)
        return None

    def describe(self) -> dict[str, Any]:
        by_tier: dict[int, int] = {}
        for _, entry in self._heap:
            if entry.seq not in self._expired_marks:
                by_tier[entry.tier] = by_tier.get(entry.tier, 0) + 1
        return {
            "depth": self._depth,
            "by_tier": {k: by_tier[k] for k in sorted(by_tier)},
            "tenant_buckets": len(self._buckets),
        }


class FifoAdmission:
    """The PR-5 gate: one FIFO backlog, bounded, no tiers, no deadlines.

    Same interface as :class:`AdmissionController`, so the open-loop
    scheduler can run the naive ablation `bench_overload.py` measures
    against.  Everything that is not a full backlog is queued; nothing
    rate-limits, expires, or sheds.
    """

    QUEUED = AdmissionController.QUEUED
    BACKLOG_FULL = AdmissionController.BACKLOG_FULL

    def __init__(self, max_backlog: int | None = None) -> None:
        if max_backlog is not None and max_backlog < 0:
            raise ValueError(f"max_backlog must be >= 0: {max_backlog}")
        self._max_backlog = max_backlog
        self._queue: deque[tuple[Any, str, int, float]] = deque()

    def policy_for(self, tier: int) -> TierPolicy:
        return TierPolicy()

    def sheddable(self, tier: int) -> bool:
        return False

    def depth(self) -> int:
        return len(self._queue)

    def offer(self, item: Any, tenant: str, tier: int, at: float) -> str:
        if self._max_backlog is not None and len(self._queue) >= self._max_backlog:
            return self.BACKLOG_FULL
        self._queue.append((item, tenant, tier, at))
        return self.QUEUED

    def expire(self, at: float) -> list[tuple[Any, str, int, float]]:
        return []

    def pop(self, at: float) -> tuple[Any, str, int, float] | None:
        if not self._queue:
            return None
        return self._queue.popleft()

    def describe(self) -> dict[str, Any]:
        return {"depth": len(self._queue), "by_tier": {}, "tenant_buckets": 0}
