"""Renderers: turning stream payloads into user-facing output (Section V-B).

"Simple data types (e.g., strings) in streams use straightforward
renderers, while complex data like JSON employs interactive renderers
enabling browsing.  Agents can also generate UI forms ... specified
declaratively and displayed using UI renderers."

This module is that rendering layer, headless: each renderer turns a
payload into text a console/web front end would display.  Declarative form
specs render with their fields and wire a *submit tag*; submitting a form
publishes an event message carrying that tag (the event-stream round trip
of Figure 9).
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from ..streams import Message, StreamStore


class Renderer:
    """Base renderer: subclasses declare what they render and how."""

    def can_render(self, payload: Any) -> bool:
        raise NotImplementedError

    def render(self, payload: Any) -> str:
        raise NotImplementedError


class TextRenderer(Renderer):
    """Strings and scalars: rendered as-is."""

    def can_render(self, payload: Any) -> bool:
        return isinstance(payload, (str, int, float, bool)) or payload is None

    def render(self, payload: Any) -> str:
        return "" if payload is None else str(payload)


class FormRenderer(Renderer):
    """Declarative UI form specs (``{"type": "form", "fields": [...]}``)."""

    def can_render(self, payload: Any) -> bool:
        return isinstance(payload, Mapping) and payload.get("type") == "form"

    def render(self, payload: Any) -> str:
        lines = [f"┌─ {payload.get('title', 'Form')} ─"]
        for field in payload.get("fields", []):
            value = field.get("value")
            rendered_value = "" if value is None else str(value)
            lines.append(f"│ {field.get('label', field.get('name')):<16} [{rendered_value}]")
        lines.append(f"└─ submit -> tag {payload.get('submit_tag', 'SUBMIT')}")
        return "\n".join(lines)


class RowsRenderer(Renderer):
    """Row sets (lists of flat dicts): rendered as a fixed-width table."""

    def can_render(self, payload: Any) -> bool:
        return (
            isinstance(payload, Sequence)
            and not isinstance(payload, (str, bytes))
            and len(payload) > 0
            and all(isinstance(row, Mapping) for row in payload)
        )

    def render(self, payload: Any) -> str:
        rows = list(payload)
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(str(key))
        widths = {
            c: max(len(c), *(len(str(row.get(c, ""))) for row in rows)) for c in columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        divider = "  ".join("-" * widths[c] for c in columns)
        body = [
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
            for row in rows
        ]
        return "\n".join([header, divider, *body])


class ChartRenderer(Renderer):
    """Two-column (label, number) row sets: rendered as a bar chart.

    The Figure-8 conversation shows visualizations alongside text; this is
    the console stand-in for aggregate query results like
    ``SELECT status, COUNT(*) ... GROUP BY status``.
    """

    MAX_BARS = 12
    BAR_WIDTH = 30

    def can_render(self, payload: Any) -> bool:
        if not (
            isinstance(payload, Sequence)
            and not isinstance(payload, (str, bytes))
            and 0 < len(payload) <= self.MAX_BARS
            and all(isinstance(row, Mapping) for row in payload)
        ):
            return False
        keys = list(payload[0].keys())
        if len(keys) != 2:
            return False
        label_key, value_key = keys
        return all(
            list(row.keys()) == keys
            and isinstance(row[value_key], (int, float))
            and not isinstance(row[value_key], bool)
            and row[value_key] >= 0
            for row in payload
        )

    def render(self, payload: Any) -> str:
        label_key, value_key = list(payload[0].keys())
        top = max(row[value_key] for row in payload) or 1
        width = max(len(str(row[label_key])) for row in payload)
        lines = []
        for row in payload:
            bar = "█" * max(1, int(round(self.BAR_WIDTH * row[value_key] / top)))
            lines.append(f"{str(row[label_key]).ljust(width)}  {bar} {row[value_key]}")
        return "\n".join(lines)


class JsonRenderer(Renderer):
    """Everything JSON-serializable: pretty-printed for browsing."""

    def can_render(self, payload: Any) -> bool:
        try:
            json.dumps(payload)
        except (TypeError, ValueError):
            return False
        return True

    def render(self, payload: Any) -> str:
        return json.dumps(payload, indent=2, default=str)


class RendererRegistry:
    """Ordered renderer chain: first renderer that accepts a payload wins."""

    def __init__(self, renderers: Sequence[Renderer] | None = None) -> None:
        if renderers is None:
            renderers = (
                TextRenderer(),
                FormRenderer(),
                ChartRenderer(),
                RowsRenderer(),
                JsonRenderer(),
            )
        self._renderers = list(renderers)

    def register(self, renderer: Renderer, first: bool = True) -> None:
        if first:
            self._renderers.insert(0, renderer)
        else:
            self._renderers.append(renderer)

    def render(self, payload: Any) -> str:
        for renderer in self._renderers:
            if renderer.can_render(payload):
                return renderer.render(payload)
        return repr(payload)

    def render_message(self, message: Message) -> str:
        """Render a stream message with a small provenance header."""
        body = self.render(message.payload)
        return f"[{message.producer or 'system'}]\n{body}"


def submit_form(
    store: StreamStore,
    stream_id: str,
    form: Mapping[str, Any],
    values: Mapping[str, Any],
    producer: str = "user",
) -> Message:
    """Publish a form submission as an event message.

    The event carries the form's ``submit_tag`` so agents listening on the
    accompanying event stream react (Section V-E's form round trip).
    """
    submitted = {
        field["name"]: values.get(field["name"], field.get("value"))
        for field in form.get("fields", [])
    }
    return store.publish_data(
        stream_id,
        {"type": "form_submission", "form": form.get("title", ""), "values": submitted},
        tags=(form.get("submit_tag", "SUBMIT"), "UI_EVENT"),
        producer=producer,
    )
