"""The blueprint core: agents, registries, sessions, planners, budget,
optimizer, coordinator, deployment, and the :class:`Blueprint` runtime."""

from .agent import Agent, FunctionAgent
from .budget import Budget, Charge, Projection
from .context import AgentContext
from .coordinator import NodeFailure, PlanRun, TaskCoordinator
from .deployment import Cluster, Container, ResourceProfile, Supervisor
from .recovery import (
    CompensationRegistry,
    EffectTable,
    RecoveredPlan,
    RecoveryManager,
    WriteAheadJournal,
    idempotency_key,
)
from .resilience import (
    BreakerBoard,
    ChaosController,
    ChaosSpec,
    CircuitBreaker,
    DeadLetterQueue,
    KillSwitch,
    RetryPolicy,
)
from .factory import AgentFactory
from .guards import ModeratorAgent, ReflectionAgent, VerifierAgent
from .rendering import RendererRegistry, submit_form
from .params import Parameter
from .plan import Binding, DataPlan, Op, OperatorChoice, TaskNode, TaskPlan
from .planners import (
    DataPlanner,
    StepSpec,
    TaskPlanner,
    TaskPlannerAgent,
    TaskTemplate,
)
from .optimizer import CostModel, PlanOptimizer
from .qos import QoSSpec
from .registries import AgentRegistry, DataRegistry
from .runtime import Blueprint
from .session import Scope, Session, SessionManager
from .triggering import InputGate

__all__ = [
    "Agent",
    "FunctionAgent",
    "Budget",
    "Charge",
    "Projection",
    "AgentContext",
    "NodeFailure",
    "PlanRun",
    "TaskCoordinator",
    "BreakerBoard",
    "ChaosController",
    "ChaosSpec",
    "CircuitBreaker",
    "CompensationRegistry",
    "DeadLetterQueue",
    "EffectTable",
    "KillSwitch",
    "RecoveredPlan",
    "RecoveryManager",
    "RetryPolicy",
    "WriteAheadJournal",
    "idempotency_key",
    "Cluster",
    "Container",
    "ResourceProfile",
    "Supervisor",
    "AgentFactory",
    "ModeratorAgent",
    "ReflectionAgent",
    "VerifierAgent",
    "RendererRegistry",
    "submit_form",
    "Parameter",
    "Binding",
    "DataPlan",
    "Op",
    "OperatorChoice",
    "TaskNode",
    "TaskPlan",
    "DataPlanner",
    "StepSpec",
    "TaskPlanner",
    "TaskPlannerAgent",
    "TaskTemplate",
    "CostModel",
    "PlanOptimizer",
    "QoSSpec",
    "AgentRegistry",
    "DataRegistry",
    "Blueprint",
    "Scope",
    "Session",
    "SessionManager",
    "InputGate",
]
