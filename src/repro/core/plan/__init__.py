"""Plan structures: generic DAGs, task plans (Fig. 6), data plans (Fig. 7)."""

from .dag import Dag
from .data_plan import DataOperator, DataPlan, Op, OperatorChoice
from .task_plan import Binding, TaskNode, TaskPlan

__all__ = [
    "Dag",
    "DataOperator",
    "DataPlan",
    "Op",
    "OperatorChoice",
    "Binding",
    "TaskNode",
    "TaskPlan",
]
