"""Directed-acyclic-graph machinery shared by task and data plans."""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

from ...errors import PlanError


class Dag:
    """A small DAG over hashable node ids with validation and toposort."""

    def __init__(self) -> None:
        self._nodes: list[Hashable] = []
        self._edges: set[tuple[Hashable, Hashable]] = set()
        self._lock = threading.Lock()

    def add_node(self, node_id: Hashable) -> None:
        with self._lock:
            if node_id in self._nodes:
                raise PlanError(f"duplicate node: {node_id!r}")
            self._nodes.append(node_id)

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        with self._lock:
            for node_id in (source, target):
                if node_id not in self._nodes:
                    raise PlanError(f"edge references unknown node: {node_id!r}")
            if source == target:
                raise PlanError(f"self-loop on node: {source!r}")
            self._edges.add((source, target))

    def nodes(self) -> list[Hashable]:
        with self._lock:
            return list(self._nodes)

    def edges(self) -> list[tuple[Hashable, Hashable]]:
        with self._lock:
            return sorted(self._edges, key=repr)

    def predecessors(self, node_id: Hashable) -> list[Hashable]:
        with self._lock:
            return [s for s, t in self._edges if t == node_id]

    def successors(self, node_id: Hashable) -> list[Hashable]:
        with self._lock:
            return [t for s, t in self._edges if s == node_id]

    def roots(self) -> list[Hashable]:
        with self._lock:
            targets = {t for _, t in self._edges}
            return [n for n in self._nodes if n not in targets]

    def leaves(self) -> list[Hashable]:
        with self._lock:
            sources = {s for s, _ in self._edges}
            return [n for n in self._nodes if n not in sources]

    def topological_order(self) -> list[Hashable]:
        """Kahn's algorithm; raises :class:`PlanError` on cycles.

        Ties resolve in insertion order, so plans execute deterministically.
        """
        with self._lock:
            nodes = list(self._nodes)
            edges = set(self._edges)
        in_degree = {node: 0 for node in nodes}
        for _, target in edges:
            in_degree[target] += 1
        ready = [node for node in nodes if in_degree[node] == 0]
        order: list[Hashable] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for source, target in sorted(edges, key=repr):
                if source != node:
                    continue
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    ready.append(target)
            edges = {(s, t) for s, t in edges if s != node}
        if len(order) != len(nodes):
            leftover = sorted(set(nodes) - set(order), key=repr)
            raise PlanError(f"plan contains a cycle through: {leftover}")
        return order

    def validate(self) -> None:
        """Raise on structural problems (currently: cycles)."""
        self.topological_order()

    def waves(self) -> list[list[Hashable]]:
        """Dependency waves: antichains of logically-concurrent nodes.

        Wave *i* holds the nodes whose longest incoming path has *i*
        edges, so every predecessor sits in an earlier wave.  Within a
        wave, ids sort by ``repr`` — the node-id tiebreak that keeps wave
        execution (and journal) order deterministic.
        """
        from ..scheduler.waves import compute_waves

        with self._lock:
            nodes = list(self._nodes)
            edges = sorted(self._edges, key=repr)
        return [list(wave) for wave in compute_waves(nodes, edges).waves]

    def longest_path_length(self, weights: dict[Hashable, float] | None = None) -> float:
        """Critical-path length (node-weighted); used for latency estimates."""
        order = self.topological_order()
        weights = weights or {node: 1.0 for node in order}
        best: dict[Hashable, float] = {}
        for node in order:
            incoming = [best[p] for p in self.predecessors(node)]
            best[node] = weights.get(node, 1.0) + (max(incoming) if incoming else 0.0)
        return max(best.values(), default=0.0)

    @classmethod
    def from_edges(
        cls, nodes: Iterable[Hashable], edges: Iterable[tuple[Hashable, Hashable]]
    ) -> "Dag":
        dag = cls()
        for node in nodes:
            dag.add_node(node)
        for source, target in edges:
            dag.add_edge(source, target)
        return dag
