"""Data plans: operator DAGs over heterogeneous sources (Figure 7).

The data planner decomposes a retrieval/transformation task into operators
— "discover, select, join, query, extract, summarize, etc." (Section V-G)
— plus the new operators the paper calls out beyond relational algebra:
``Q2NL`` (turn a query fragment into a natural-language knowledge request)
and ``LLM_CALL`` (use a model as a data source).

Each operator may carry *alternatives* — candidate (source, model)
configurations with differing cost/latency/quality — which is what the
optimizer chooses among.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import PlanError
from .dag import Dag


class Op(enum.Enum):
    """Operator vocabulary of the data planner."""

    DISCOVER = "discover"        # registry search for a source
    Q2NL = "q2nl"                # query fragment -> NL knowledge request
    LLM_CALL = "llm_call"        # model as a data source
    TAXONOMY = "taxonomy"        # expand a concept via a graph source
    NL2Q = "nl2q"                # NL -> executable query text
    SQL = "sql"                  # run SQL against a relational source
    DOC_FIND = "doc_find"        # filter a document collection
    GRAPH_QUERY = "graph_query"  # traverse a graph source
    KV_GET = "kv_get"            # fetch from a key-value source
    SELECT = "select"            # filter rows by predicate params
    PROJECT = "project"          # keep columns
    JOIN = "join"                # join two row sets
    UNION = "union"              # concatenate row sets
    EXTRACT = "extract"          # structured extraction from text
    SUMMARIZE = "summarize"      # condense rows/text
    VERIFY = "verify"            # filter LLM answers against a trusted source
    VECTOR_SEARCH = "vector_search"  # embedding retrieval over a collection
    RANK = "rank"                # order rows by a scoring field
    LIMIT = "limit"              # truncate rows


@dataclass(frozen=True)
class OperatorChoice:
    """One way to execute an operator (the optimizer's decision unit)."""

    source: str | None = None  # data-registry entry name
    model: str | None = None   # model-catalog name (LLM-backed operators)
    note: str = ""

    def describe(self) -> str:
        parts = []
        if self.source:
            parts.append(f"source={self.source}")
        if self.model:
            parts.append(f"model={self.model}")
        if self.note:
            parts.append(self.note)
        return ", ".join(parts) or "default"


@dataclass
class DataOperator:
    """One node in a data plan."""

    op_id: str
    op: Op
    params: dict[str, Any] = field(default_factory=dict)
    inputs: tuple[str, ...] = ()
    choices: tuple[OperatorChoice, ...] = ()
    chosen: OperatorChoice | None = None

    def choice(self) -> OperatorChoice:
        """The configuration to execute: chosen by the optimizer, else the
        first alternative, else an empty default."""
        if self.chosen is not None:
            return self.chosen
        if self.choices:
            return self.choices[0]
        return OperatorChoice()

    def describe(self) -> str:
        input_text = ",".join(self.inputs) if self.inputs else "-"
        return (
            f"{self.op_id}: {self.op.value}({self.params}) "
            f"<- [{input_text}] via {self.choice().describe()}"
        )


class DataPlan:
    """An executable DAG of :class:`DataOperator`."""

    def __init__(self, plan_id: str, goal: str = "", no_cache: bool = False) -> None:
        self.plan_id = plan_id
        self.goal = goal
        #: Per-plan LLM-cache override (mirrors ``TaskPlan.no_cache``).
        self.no_cache = no_cache
        self._operators: dict[str, DataOperator] = {}
        self._dag = Dag()

    def add(self, operator: DataOperator) -> DataOperator:
        if operator.op_id in self._operators:
            raise PlanError(f"duplicate operator: {operator.op_id!r}")
        for upstream in operator.inputs:
            if upstream not in self._operators:
                raise PlanError(
                    f"operator {operator.op_id!r} depends on unknown {upstream!r}"
                )
        self._operators[operator.op_id] = operator
        self._dag.add_node(operator.op_id)
        for upstream in operator.inputs:
            self._dag.add_edge(upstream, operator.op_id)
        return operator

    def add_op(
        self,
        op_id: str,
        op: Op,
        params: Mapping[str, Any] | None = None,
        inputs: tuple[str, ...] = (),
        choices: tuple[OperatorChoice, ...] = (),
    ) -> DataOperator:
        return self.add(
            DataOperator(op_id, op, dict(params or {}), inputs, choices)
        )

    def operator(self, op_id: str) -> DataOperator:
        if op_id not in self._operators:
            raise PlanError(f"unknown operator: {op_id!r}")
        return self._operators[op_id]

    def operators(self) -> list[DataOperator]:
        return [self._operators[oid] for oid in self._dag.nodes()]

    def order(self) -> list[DataOperator]:
        return [self._operators[oid] for oid in self._dag.topological_order()]

    def waves(self) -> list[list[DataOperator]]:
        """Operators grouped into dependency waves (see :meth:`Dag.waves`)."""
        return [
            [self._operators[oid] for oid in wave] for wave in self._dag.waves()
        ]

    def edges(self) -> list[tuple[str, str]]:
        return self._dag.edges()  # type: ignore[return-value]

    def leaves(self) -> list[DataOperator]:
        return [self._operators[oid] for oid in self._dag.leaves()]

    def validate(self) -> None:
        self._dag.validate()

    def critical_path(self, weights: Mapping[str, float]) -> float:
        """Longest-path length with per-operator *weights* (e.g. latency)."""
        return self._dag.longest_path_length(dict(weights))

    def __len__(self) -> int:
        return len(self._operators)

    def render(self) -> str:
        """Readable rendering matching Figure 7's shape."""
        lines = [f"DataPlan {self.plan_id}: {self.goal}"]
        lines.extend(f"  {operator.describe()}" for operator in self.order())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization (data plans travel over streams like task plans)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {
            "plan_id": self.plan_id,
            "goal": self.goal,
            "no_cache": self.no_cache,
            "operators": [
                {
                    "op_id": operator.op_id,
                    "op": operator.op.value,
                    "params": dict(operator.params),
                    "inputs": list(operator.inputs),
                    "choices": [
                        {"source": c.source, "model": c.model, "note": c.note}
                        for c in operator.choices
                    ],
                    "chosen": (
                        {
                            "source": operator.chosen.source,
                            "model": operator.chosen.model,
                            "note": operator.chosen.note,
                        }
                        if operator.chosen is not None
                        else None
                    ),
                }
                for operator in self.order()
            ],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "DataPlan":
        plan = cls(
            payload["plan_id"],
            payload.get("goal", ""),
            no_cache=bool(payload.get("no_cache", False)),
        )
        for spec in payload["operators"]:
            operator = plan.add_op(
                spec["op_id"],
                Op(spec["op"]),
                params=spec.get("params", {}),
                inputs=tuple(spec.get("inputs", ())),
                choices=tuple(
                    OperatorChoice(**choice) for choice in spec.get("choices", ())
                ),
            )
            if spec.get("chosen") is not None:
                operator.chosen = OperatorChoice(**spec["chosen"])
        return plan
