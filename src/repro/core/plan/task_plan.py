"""Task plans: DAGs of agent invocations (Figure 6).

"A task plan structured as directed acyclic graphs (DAGs) connecting agent
input and outputs ... Each node within these DAGs represents a sub-task
assigned to a specific agent" (Section V-F).

A :class:`TaskNode` names the agent and *binds* each input parameter to a
value, a stream, or another node's output — optionally through a data-plan
transform (``PROFILER.CRITERIA <- USER.TEXT`` needs an extract step; the
coordinator delegates that to the data planner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import PlanError
from .dag import Dag


@dataclass(frozen=True)
class Binding:
    """How one input parameter of a plan node gets its value.

    Exactly one of the source fields is set:

    * ``value`` — a constant baked into the plan,
    * ``stream`` — the latest data payload on a stream (e.g. user text),
    * ``node``/``param`` — the named output of an upstream node.

    ``transform`` optionally names a data-plan transformation applied to
    the source value before it reaches the agent (``extract:criteria``).
    """

    value: Any = None
    stream: str | None = None
    node: str | None = None
    param: str | None = None
    transform: str | None = None

    def __post_init__(self) -> None:
        sources = [
            self.stream is not None,
            self.node is not None,
            self.value is not None,
        ]
        if sum(sources) > 1:
            raise PlanError("a binding takes exactly one source (value/stream/node)")
        if (self.node is None) != (self.param is None):
            raise PlanError("node bindings need both node and param")

    @classmethod
    def const(cls, value: Any, transform: str | None = None) -> "Binding":
        return cls(value=value, transform=transform)

    @classmethod
    def from_stream(cls, stream: str, transform: str | None = None) -> "Binding":
        return cls(stream=stream, transform=transform)

    @classmethod
    def from_node(cls, node: str, param: str, transform: str | None = None) -> "Binding":
        return cls(node=node, param=param, transform=transform)

    def describe(self) -> str:
        if self.stream is not None:
            source = f"stream({self.stream})"
        elif self.node is not None:
            source = f"{self.node}.{self.param}"
        else:
            source = repr(self.value)
        if self.transform:
            return f"{self.transform}({source})"
        return source


@dataclass(frozen=True)
class TaskNode:
    """One sub-task: an agent invocation with bound inputs.

    Resilience annotations (all optional) let a plan degrade gracefully
    instead of failing:

    * ``deadline`` — maximum simulated seconds this node may spend; the
      coordinator aborts a node whose modeled latency exceeds its slice.
    * ``fallback_agent`` — routed to when the primary agent exhausts its
      retries or its circuit breaker is open.
    * ``model`` / ``fallback_model`` — LLM tier hints threaded into the
      (fallback) agent's ``complete`` calls, so a fallback can also mean
      "same agent logic, cheaper model".
    * ``optional`` — a non-essential enrichment node the brownout
      controller may prune under overload.  Its outputs must only feed
      *non-required* downstream parameters: pruning drops the node and
      every binding that referenced it.
    """

    node_id: str
    agent: str
    bindings: Mapping[str, Binding] = field(default_factory=dict)
    description: str = ""
    deadline: float | None = None
    fallback_agent: str | None = None
    model: str | None = None
    fallback_model: str | None = None
    optional: bool = False

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise PlanError(f"node {self.node_id!r} deadline must be > 0: {self.deadline}")

    def upstream_nodes(self) -> list[str]:
        return [b.node for b in self.bindings.values() if b.node is not None]


class TaskPlan:
    """An executable DAG of :class:`TaskNode`."""

    def __init__(self, plan_id: str, goal: str = "", no_cache: bool = False) -> None:
        self.plan_id = plan_id
        self.goal = goal
        #: Per-plan LLM-cache override: plans that must exercise the real
        #: model path every time (chaos/determinism suites, verification
        #: reruns) set this so an enabled cache never short-circuits them.
        self.no_cache = no_cache
        self._nodes: dict[str, TaskNode] = {}
        self._dag = Dag()

    def add(self, node: TaskNode) -> TaskNode:
        if node.node_id in self._nodes:
            raise PlanError(f"duplicate plan node: {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._dag.add_node(node.node_id)
        for upstream in node.upstream_nodes():
            if upstream not in self._nodes:
                raise PlanError(
                    f"node {node.node_id!r} binds unknown upstream node {upstream!r}"
                )
            self._dag.add_edge(upstream, node.node_id)
        return node

    def add_step(
        self,
        node_id: str,
        agent: str,
        bindings: Mapping[str, Binding] | None = None,
        description: str = "",
        deadline: float | None = None,
        fallback_agent: str | None = None,
        model: str | None = None,
        fallback_model: str | None = None,
        optional: bool = False,
    ) -> TaskNode:
        return self.add(
            TaskNode(
                node_id,
                agent,
                dict(bindings or {}),
                description,
                deadline=deadline,
                fallback_agent=fallback_agent,
                model=model,
                fallback_model=fallback_model,
                optional=optional,
            )
        )

    def node(self, node_id: str) -> TaskNode:
        if node_id not in self._nodes:
            raise PlanError(f"unknown plan node: {node_id!r}")
        return self._nodes[node_id]

    def nodes(self) -> list[TaskNode]:
        return [self._nodes[nid] for nid in self._dag.nodes()]

    def edges(self) -> list[tuple[str, str]]:
        return self._dag.edges()  # type: ignore[return-value]

    def order(self) -> list[TaskNode]:
        """Nodes in executable (topological) order."""
        return [self._nodes[nid] for nid in self._dag.topological_order()]

    def waves(self) -> list[list[TaskNode]]:
        """Nodes grouped into dependency waves (see :meth:`Dag.waves`)."""
        return [
            [self._nodes[nid] for nid in wave] for wave in self._dag.waves()
        ]

    def validate(self, agent_names: set[str] | None = None) -> None:
        """Structural validation; optionally check agents exist."""
        self._dag.validate()
        if agent_names is not None:
            missing = [n.agent for n in self.nodes() if n.agent not in agent_names]
            if missing:
                raise PlanError(f"plan references unknown agents: {sorted(set(missing))}")

    def __len__(self) -> int:
        return len(self._nodes)

    def derived(
        self,
        model_map: Mapping[str, str] | None = None,
        drop_optional: bool = False,
    ) -> "TaskPlan":
        """A degraded copy of this plan (same id, goal, and cache policy).

        *model_map* rewrites each node's explicit ``model`` /
        ``fallback_model`` hints (unmapped names pass through) — the
        brownout controller's model-tier downshift.  With *drop_optional*,
        nodes marked ``optional`` are pruned along with every binding
        that referenced them; by the :class:`TaskNode` contract those
        bindings only fed non-required parameters, so the remaining DAG
        stays executable.  With neither option the copy is structurally
        identical.
        """
        model_map = dict(model_map or {})
        plan = TaskPlan(self.plan_id, self.goal, no_cache=self.no_cache)
        dropped = (
            {n.node_id for n in self.nodes() if n.optional}
            if drop_optional
            else set()
        )
        for node in self.order():
            if node.node_id in dropped:
                continue
            bindings = {
                param: binding
                for param, binding in node.bindings.items()
                if binding.node is None or binding.node not in dropped
            }
            plan.add_step(
                node.node_id,
                node.agent,
                bindings,
                node.description,
                deadline=node.deadline,
                fallback_agent=node.fallback_agent,
                model=model_map.get(node.model, node.model),
                fallback_model=model_map.get(
                    node.fallback_model, node.fallback_model
                ),
                optional=node.optional,
            )
        return plan

    def render(self) -> str:
        """Readable rendering matching Figure 6's shape."""
        lines = [f"TaskPlan {self.plan_id}: {self.goal}"]
        for node in self.order():
            bound = ", ".join(
                f"{param}<-{binding.describe()}" for param, binding in node.bindings.items()
            )
            lines.append(f"  {node.node_id}: EXECUTE {node.agent}({bound})")
        return "\n".join(lines)

    def to_payload(self) -> dict[str, Any]:
        """Serializable form published onto a stream for the coordinator."""
        return {
            "plan_id": self.plan_id,
            "goal": self.goal,
            "no_cache": self.no_cache,
            "nodes": [
                {
                    "node_id": node.node_id,
                    "agent": node.agent,
                    "description": node.description,
                    "deadline": node.deadline,
                    "fallback_agent": node.fallback_agent,
                    "model": node.model,
                    "fallback_model": node.fallback_model,
                    "optional": node.optional,
                    "bindings": {
                        param: {
                            "value": binding.value,
                            "stream": binding.stream,
                            "node": binding.node,
                            "param": binding.param,
                            "transform": binding.transform,
                        }
                        for param, binding in node.bindings.items()
                    },
                }
                for node in self.order()
            ],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TaskPlan":
        plan = cls(
            payload["plan_id"],
            payload.get("goal", ""),
            no_cache=bool(payload.get("no_cache", False)),
        )
        for node_payload in payload["nodes"]:
            bindings = {
                param: Binding(**spec)
                for param, spec in node_payload.get("bindings", {}).items()
            }
            plan.add_step(
                node_payload["node_id"],
                node_payload["agent"],
                bindings,
                node_payload.get("description", ""),
                deadline=node_payload.get("deadline"),
                fallback_agent=node_payload.get("fallback_agent"),
                model=node_payload.get("model"),
                fallback_model=node_payload.get("fallback_model"),
                optional=bool(node_payload.get("optional", False)),
            )
        return plan
