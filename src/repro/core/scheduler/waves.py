"""Dependency-wave partitioning of plan DAGs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ...errors import PlanError


@dataclass(frozen=True)
class WaveSchedule:
    """The wave decomposition of one DAG.

    Attributes:
        waves: node ids grouped by dependency depth; within a wave, ids
            are sorted (by ``repr`` for mixed types) so execution — and
            therefore journal — order is deterministic.
    """

    waves: tuple[tuple[Hashable, ...], ...] = field(default_factory=tuple)

    @property
    def wave_count(self) -> int:
        return len(self.waves)

    @property
    def node_count(self) -> int:
        return sum(len(wave) for wave in self.waves)

    @property
    def max_width(self) -> int:
        """The widest wave: the plan's peak logical concurrency."""
        return max((len(wave) for wave in self.waves), default=0)

    @property
    def parallel_nodes(self) -> int:
        """Nodes that share a wave with at least one other node."""
        return sum(len(wave) for wave in self.waves if len(wave) > 1)

    def wave_of(self, node_id: Hashable) -> int:
        for index, wave in enumerate(self.waves):
            if node_id in wave:
                return index
        raise PlanError(f"node {node_id!r} is not in this schedule")

    def describe(self) -> str:
        lines = [
            f"waves={self.wave_count} nodes={self.node_count} "
            f"max_width={self.max_width}"
        ]
        for index, wave in enumerate(self.waves):
            lines.append(f"  w{index}: {', '.join(str(n) for n in wave)}")
        return "\n".join(lines)


def compute_waves(
    nodes: list[Hashable], edges: list[tuple[Hashable, Hashable]]
) -> WaveSchedule:
    """Partition a DAG into dependency waves.

    A node's wave index is the length of its longest incoming path, so
    wave *i* can only depend on waves ``< i`` — each wave is an antichain
    whose members are logically concurrent.  Within a wave, node ids sort
    by ``repr`` (the node-id tiebreak that keeps journal order
    deterministic regardless of plan insertion order).

    Raises :class:`~repro.errors.PlanError` on cycles.
    """
    predecessors: dict[Hashable, list[Hashable]] = {node: [] for node in nodes}
    successors: dict[Hashable, list[Hashable]] = {node: [] for node in nodes}
    in_degree: dict[Hashable, int] = {node: 0 for node in nodes}
    for source, target in edges:
        if source not in in_degree or target not in in_degree:
            raise PlanError(f"edge references unknown node: {(source, target)!r}")
        predecessors[target].append(source)
        successors[source].append(target)
        in_degree[target] += 1

    depth: dict[Hashable, int] = {}
    frontier = [node for node in nodes if in_degree[node] == 0]
    remaining = dict(in_degree)
    placed = 0
    while frontier:
        next_frontier: list[Hashable] = []
        for node in frontier:
            incoming = [depth[p] for p in predecessors[node]]
            depth[node] = (max(incoming) + 1) if incoming else 0
            placed += 1
            for target in successors[node]:
                remaining[target] -= 1
                if remaining[target] == 0:
                    next_frontier.append(target)
        frontier = next_frontier
    if placed != len(nodes):
        leftover = sorted(set(nodes) - set(depth), key=repr)
        raise PlanError(f"plan contains a cycle through: {leftover}")

    if not depth:
        return WaveSchedule(waves=())
    waves: list[list[Hashable]] = [[] for _ in range(max(depth.values()) + 1)]
    for node in nodes:
        waves[depth[node]].append(node)
    return WaveSchedule(
        waves=tuple(tuple(sorted(wave, key=repr)) for wave in waves)
    )
