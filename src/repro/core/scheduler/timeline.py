"""Critical-path time accounting over a shared :class:`SimClock`.

The runtime's components (LLM clients, budgets, retry backoff) advance
the *shared* simulated clock as work executes.  Running a wave's nodes
one after another would therefore charge the plan the **sum** of their
latencies.  A :class:`VirtualTimeline` makes that same single-threaded
execution account like concurrent execution:

* :meth:`open` a *branch* at the node's ready time — the clock rebases
  there, so everything the node does (LLM latency, budget charges,
  backoff sleeps, span/message stamps) happens in branch-local time;
* :meth:`close` records the branch's end and returns it, so downstream
  nodes can compute their own ready times (``max`` over predecessors);
* :meth:`commit` restores global monotonicity with one
  ``advance_to(max(branch ends))`` — the plan's **critical path**.

All node-latency accounting thus flows through a single ``advance_to``
at commit rather than interleaved read-modify-writes on the clock, which
is also what makes the accounting safe to reason about: ``SimClock.now``
is a lock-free read, not a synchronization point.
"""

from __future__ import annotations

import threading

from ...clock import SimClock


class VirtualTimeline:
    """Branch-local simulated time for logically-concurrent execution.

    Example — two 1-second branches cost 1 second, not 2:
        >>> clock = SimClock()
        >>> timeline = VirtualTimeline(clock)
        >>> for _ in range(2):
        ...     _ = timeline.open(ready_at=timeline.origin)
        ...     _ = clock.advance(1.0)
        ...     _ = timeline.close()
        >>> timeline.commit()
        1.0
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        #: Simulated time the timeline was created at (the plan start).
        self.origin = clock.now()
        self._horizon = self.origin
        self._branch_open = False
        self._branch_owner: str | None = None
        #: Per-owner critical paths: a timeline shared by a fleet of
        #: plans tracks each plan's own horizon alongside the global one.
        self._owner_horizons: dict[str, float] = {}
        # Guards horizon merges: the thread backend records branch ends
        # from worker threads (see :meth:`record`).
        self._merge_lock = threading.Lock()

    @property
    def horizon(self) -> float:
        """Latest branch end seen so far (the running critical path)."""
        return self._horizon

    def elapsed(self) -> float:
        """Critical-path seconds accounted so far."""
        return self._horizon - self.origin

    def horizon_of(self, owner: str) -> float:
        """Latest branch end recorded for *owner* (its critical path).

        Owners that never opened a branch sit at the timeline origin.
        """
        return self._owner_horizons.get(owner, self.origin)

    def owners(self) -> list[str]:
        """Every owner that has opened a branch, sorted."""
        return sorted(self._owner_horizons)

    def open(self, ready_at: float, owner: str | None = None) -> float:
        """Start a branch at *ready_at* (clamped to the plan origin).

        Branches do not nest: plan nodes are the unit of concurrency, and
        any sub-plans a node runs belong to that node's branch.  *owner*
        attributes the branch to one plan when several share the timeline
        (fleet execution); its ends accrue to :meth:`horizon_of` as well
        as the global horizon.
        """
        if self._branch_open:
            raise RuntimeError("a timeline branch is already open")
        start = max(float(ready_at), self.origin)
        self._clock.rebase(start)
        self._branch_open = True
        self._branch_owner = owner
        return start

    def close(self) -> float:
        """End the open branch; returns its branch-local end time."""
        if not self._branch_open:
            raise RuntimeError("no timeline branch is open")
        end = self._clock.now()
        owner = self._branch_owner
        self._branch_open = False
        self._branch_owner = None
        return self.record(end, owner=owner)

    def record(self, end: float, owner: str | None = None) -> float:
        """Merge a finished branch's *end* into the horizons; returns it.

        The thread backend's entry point: workers run their branches on a
        clock overlay (no :meth:`open`/:meth:`close` pairing, which would
        serialize on the shared rebase) and merge each end here.  Safe
        under concurrent callers — merges are locked, and the horizon only
        ever ratchets upward.
        """
        if not self._clock.threaded:
            # Serial fast path: a never-threaded clock means every
            # record() comes from the single driving thread.
            if end > self._horizon:
                self._horizon = end
            if owner is not None and end > self._owner_horizons.get(
                owner, self.origin
            ):
                self._owner_horizons[owner] = end
            return end
        with self._merge_lock:
            if end > self._horizon:
                self._horizon = end
            if owner is not None and end > self._owner_horizons.get(
                owner, self.origin
            ):
                self._owner_horizons[owner] = end
        return end

    def commit(self) -> float:
        """Advance the shared clock to the critical path and return it.

        Idempotent, and safe to call with a branch still open (a chaos
        kill mid-node): the branch is closed first so its partial time is
        never lost, then the clock lands at ``max(branch ends)``.
        """
        if self._branch_open:
            self.close()
        return self._clock.advance_to(self._horizon)
