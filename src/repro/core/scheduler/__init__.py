"""Wave-based parallel scheduling for plan DAGs.

The paper's coordinator "optimizes plans for quality and cost", and its
QoS machinery treats latency as a first-class objective — yet a DAG with
two independent branches executed node-after-node pays the *sum* of the
branch latencies instead of the *max*.  This package closes that gap for
the simulated runtime:

* :func:`compute_waves` partitions a plan DAG into dependency *waves*
  (antichains): wave *i* holds exactly the nodes whose longest incoming
  path has *i* edges, so every node's predecessors sit in earlier waves.
* :class:`VirtualTimeline` accounts the simulated time of a wave's nodes
  as logically concurrent *branches* over the shared
  :class:`~repro.clock.SimClock`: each branch replays from its ready time
  (``max`` over predecessor end times), and the timeline commits the
  critical path — ``advance_to(max(branch ends))`` — rather than letting
  branch latencies sum onto the clock.

Execution stays single-threaded and deterministic: waves run in order,
nodes within a wave run in node-id order (the journal-order tiebreak),
and two runs of the same seed produce byte-identical traces and
journals.  Only the *accounting* is concurrent, which is exactly what a
simulated-latency runtime needs from parallelism.
"""

from .timeline import VirtualTimeline
from .waves import WaveSchedule, compute_waves

__all__ = ["VirtualTimeline", "WaveSchedule", "compute_waves"]
